"""Setuptools shim so `python setup.py develop` works offline.

The offline environment lacks the `wheel` package that pip's PEP 660
editable-install path requires; `setup.py develop` does not need it.
Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
