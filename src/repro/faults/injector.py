"""The fault injector: arms a :class:`FaultPlan` against a live network.

The injector resolves the plan's named targets (elements, switches,
link endpoints) against a built :class:`LiveSecNetwork`, schedules
every fault on the simulator clock, and measures the controller's
recovery from the outside:

* ``faults.injected{kind}`` -- injections performed;
* ``faults.affected_sessions`` -- sessions steered through an element
  at the moment the controller declared it offline;
* ``faults.recovered_sessions`` / ``faults.failed_open_sessions`` /
  ``faults.blocked_sessions`` / ``faults.torn_down_sessions`` --
  failover outcomes for those sessions;
* ``recovery.time_to_detect_s`` -- injection until the controller's
  ELEMENT_OFFLINE event (liveness expiry latency);
* ``recovery.time_to_recover_s`` -- injection until each affected
  session's FLOW_FAILOVER resolution.

Both histograms run on the *simulator* clock, so they measure the
modelled detection/recovery latency, not host wall time.  Affected
sessions are counted synchronously inside the ELEMENT_OFFLINE log
emission -- i.e. after the registry expired the element but before the
controller runs failover -- which is the only instant the "sessions at
risk" set is well defined.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.core.events import EventKind, NetworkEvent
from repro.faults.plan import (
    AppCrash,
    ChannelChaos,
    ElementCrash,
    ElementHang,
    ElementSlowReport,
    FaultPlan,
    LinkFlap,
    ShardCrash,
    SwitchCompromise,
    SwitchDisconnect,
)
from repro.openflow.channel import ChannelFaults


class FaultTargetError(ValueError):
    """A plan names an element/switch/link the network does not have."""


class FaultInjector:
    """Schedules a plan's faults and scores the controller's recovery."""

    def __init__(self, net, plan: FaultPlan):
        self.net = net
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.armed = False
        # Crash bookkeeping for detection/recovery latency, keyed by
        # element MAC: when the fault went in, when it was detected.
        self._injected_at: Dict[str, float] = {}
        self._detected_at: Dict[str, float] = {}
        self._fault_kind: Dict[str, str] = {}  # element MAC -> fault kind
        # Compromised-switch bookkeeping, keyed by dpid: conviction is
        # a PATH_VIOLATION, recovery a quarantine-attributed failover.
        self._switch_injected_at: Dict[int, float] = {}
        self._switch_detected_at: Dict[int, float] = {}
        # Shard-crash bookkeeping, keyed by shard id: detection is the
        # coordinator's SHARD_DOWN, recovery the last SHARD_REHOME of
        # the dead shard's datapaths.
        self._shard_injected_at: Dict[int, float] = {}
        self._shard_detected_at: Dict[int, float] = {}
        self._shard_pending_dpids: Dict[int, set] = {}
        # App-crash bookkeeping, keyed by app name: detection is the
        # watchdog's ``crash-detected`` lifecycle record, recovery its
        # ``restarted`` one.
        self._app_injected_at: Dict[str, float] = {}
        self._app_detected_at: Dict[str, float] = {}
        # Raw sim-clock samples per fault kind, for the per-fault
        # TTD/TTR table the chaos CLI renders.
        self._ttd_samples: Dict[str, List[float]] = {}
        self._ttr_samples: Dict[str, List[float]] = {}
        # A sharded deployment exposes every shard's controller plus a
        # fabric-level registry; a classic network just its one
        # controller.  Recovery scoring subscribes to all of them.
        self._controllers = list(getattr(net, "controllers", None)
                                 or [net.controller])
        self._coordinator = getattr(net, "coordinator", None)
        registry = (net.metrics if self._coordinator is not None
                    else net.controller.metrics)
        self._injected = {
            kind: registry.counter(
                "faults.injected", "Faults injected by the chaos harness",
                kind=kind,
            )
            for kind in (
                "element-crash", "element-hang", "element-slow-report",
                "element-restart", "switch-disconnect", "switch-reconnect",
                "link-flap", "channel-chaos", "switch-compromise",
                "switch-restore", "shard-crash", "shard-restart",
                "app-crash",
            )
        }
        self._affected = registry.counter(
            "faults.affected_sessions",
            "Sessions steered through an element when it went offline",
        )
        self._outcomes = {
            outcome: registry.counter(
                "faults." + name,
                f"Affected sessions whose failover ended {outcome!r}",
            )
            for outcome, name in (
                ("recovered", "recovered_sessions"),
                ("fail-open", "failed_open_sessions"),
                ("fail-closed", "blocked_sessions"),
                ("torn-down", "torn_down_sessions"),
            )
        }
        sim_clock = lambda: net.sim.now  # noqa: E731
        self._time_to_detect = registry.histogram(
            "recovery.time_to_detect_s",
            "Element crash until the controller's ELEMENT_OFFLINE",
            clock=sim_clock,
        )
        self._time_to_recover = registry.histogram(
            "recovery.time_to_recover_s",
            "Element crash until each affected session's failover",
            clock=sim_clock,
        )
        self._acct_time_to_detect = registry.histogram(
            "accountability.time_to_detect_s",
            "Switch compromise until its PATH_VIOLATION conviction",
            clock=sim_clock,
        )
        self._acct_time_to_recover = registry.histogram(
            "accountability.time_to_recover_s",
            "Switch compromise until each session's quarantine failover",
            clock=sim_clock,
        )
        self._shard_time_to_detect = registry.histogram(
            "recovery.shard_time_to_detect_s",
            "Shard crash until the coordinator's SHARD_DOWN",
            clock=sim_clock,
        )
        self._shard_time_to_recover = registry.histogram(
            "recovery.shard_time_to_recover_s",
            "Shard crash until its last switch re-homed",
            clock=sim_clock,
        )
        self._app_time_to_detect = registry.histogram(
            "recovery.app_time_to_detect_s",
            "App crash until the watchdog's crash-detected record",
            clock=sim_clock,
        )
        self._app_time_to_recover = registry.histogram(
            "recovery.app_time_to_recover_s",
            "App crash until the watchdog revived it",
            clock=sim_clock,
        )
        for controller in self._controllers:
            controller.log.subscribe(self._on_event)
        if self._coordinator is not None:
            self._coordinator.log.subscribe(self._on_event)

    # ------------------------------------------------------------------
    # Target resolution

    def _element(self, name: str):
        for element in self.net.elements:
            if element.name == name:
                return element
        raise FaultTargetError(f"no element named {name!r}")

    def _switch(self, name: str):
        for switch in self.net.topology.all_openflow_switches():
            if switch.name == name:
                return switch
        raise FaultTargetError(f"no switch named {name!r}")

    def _channel(self, switch_name: str):
        switch = self._switch(switch_name)
        channel = self.net.channels.get(switch.dpid)
        if channel is None:
            raise FaultTargetError(f"switch {switch_name!r} has no channel")
        return channel

    def _channels(self, selector: str) -> List:
        if selector == "*":
            return [self.net.channels[d] for d in sorted(self.net.channels)]
        return [self._channel(selector)]

    def _node(self, name: str):
        for pool in (
            self.net.topology.all_openflow_switches(),
            self.net.topology.legacy,
            self.net.topology.hosts,
            self.net.elements,
        ):
            for node in pool:
                if node.name == name:
                    return node
        raise FaultTargetError(f"no node named {name!r}")

    def _shard_member(self, shard: int):
        if self._coordinator is None:
            raise FaultTargetError(
                "shard faults need a sharded deployment (got a"
                " single-controller network)"
            )
        member = self._coordinator.member(shard)
        if member is None:
            raise FaultTargetError(f"no shard {shard}")
        return member

    def _app_controller(self, fault: AppCrash):
        """The controller hosting the fault's app (a shard member's
        when ``fault.shard`` names one), with the app name validated
        now so a bad plan fails at arm time."""
        if fault.shard is not None:
            controller = self._shard_member(fault.shard).controller
        else:
            controller = self.net.controller
        try:
            controller.app(fault.app)
        except KeyError:
            raise FaultTargetError(f"no app named {fault.app!r}")
        return controller

    def _link(self, name_a: str, name_b: str):
        node_a = self._node(name_a)
        node_b = self._node(name_b)
        for port in node_a.ports.values():
            link = port.link
            if link is None:
                continue
            if link.other_end(port).node is node_b:
                return link
        raise FaultTargetError(f"no link between {name_a!r} and {name_b!r}")

    # ------------------------------------------------------------------
    # Arming

    def arm(self) -> None:
        """Resolve every target and schedule the plan's faults.

        Targets are resolved *now* (missing ones raise immediately,
        not mid-run); per-fault RNGs are derived from the plan seed in
        list order, so determinism does not depend on firing order.
        """
        if self.armed:
            raise RuntimeError("plan already armed")
        self.armed = True
        sim = self.net.sim
        for fault in self.plan:
            if isinstance(fault, ElementCrash):
                element = self._element(fault.element)
                sim.schedule_at(fault.at_s, self._crash_element,
                                element, fault.restart_at_s)
            elif isinstance(fault, ElementHang):
                element = self._element(fault.element)
                sim.schedule_at(fault.at_s, self._hang_element,
                                element, fault.duration_s)
            elif isinstance(fault, ElementSlowReport):
                element = self._element(fault.element)
                restore = (
                    fault.restore_interval_s
                    if fault.restore_interval_s is not None
                    else element.report_interval_s
                )
                sim.schedule_at(fault.at_s, self._slow_element,
                                element, fault.interval_s)
                if fault.restore_at_s is not None:
                    sim.schedule_at(fault.restore_at_s, self._slow_element,
                                    element, restore)
            elif isinstance(fault, SwitchDisconnect):
                channel = self._channel(fault.switch)
                sim.schedule_at(fault.at_s, self._disconnect_switch, channel)
                if fault.reconnect_at_s is not None:
                    sim.schedule_at(fault.reconnect_at_s,
                                    self._reconnect_switch, channel)
            elif isinstance(fault, LinkFlap):
                link = self._link(fault.node_a, fault.node_b)
                sim.schedule_at(fault.at_s, self._flap_link,
                                link, fault, fault.down_s)
            elif isinstance(fault, ChannelChaos):
                channels = self._channels(fault.switch)
                impairments = [
                    ChannelFaults(
                        rng=random.Random(self.rng.randrange(2 ** 32)),
                        drop_rate=fault.drop_rate,
                        duplicate_rate=fault.duplicate_rate,
                        extra_delay_s=fault.extra_delay_s,
                        directions=fault.directions,
                    )
                    for _ in channels
                ]
                sim.schedule_at(fault.at_s, self._impair_channels,
                                channels, impairments, fault)
                if fault.until_s is not None:
                    sim.schedule_at(fault.until_s, self._clear_channels,
                                    channels, impairments)
            elif isinstance(fault, ShardCrash):
                member = self._shard_member(fault.shard)
                sim.schedule_at(fault.at_s, self._crash_shard,
                                member, fault.restart_at_s)
            elif isinstance(fault, AppCrash):
                controller = self._app_controller(fault)
                # The watchdog is opt-in (an always-on scan would
                # perturb schedules that never crash apps); a plan that
                # crashes apps arms it so recovery can be scored.
                controller.start_app_watchdog()
                sim.schedule_at(fault.at_s, self._crash_app,
                                controller, fault)
            elif isinstance(fault, SwitchCompromise):
                switch = self._switch(fault.switch)
                sim.schedule_at(fault.at_s, self._compromise_switch,
                                switch, fault)
                if fault.restore_at_s is not None:
                    sim.schedule_at(fault.restore_at_s,
                                    self._restore_switch, switch)
            else:  # pragma: no cover - plan builders prevent this
                raise TypeError(f"unknown fault {fault!r}")

    # ------------------------------------------------------------------
    # Fault actions

    def _mark(self, kind: str, log=None, **data) -> None:
        # Faults change forwarding behavior out from under any
        # fast-forwarded flows; drop back to packet fidelity first.
        fluid = getattr(self.net.sim, "fluid", None)
        if fluid is not None:
            fluid.materialize_all("fault")
        self._injected[kind].inc()
        if log is None:
            log = self.net.controller.log
        log.emit(
            self.net.sim.now, EventKind.FAULT_INJECTED, fault=kind, **data
        )

    def _crash_element(self, element, restart_at_s: Optional[float]) -> None:
        element.fail()
        self._injected_at[element.mac] = self.net.sim.now
        self._fault_kind[element.mac] = "element-crash"
        self._mark("element-crash", element=element.name)
        if restart_at_s is not None:
            self.net.sim.schedule_at(restart_at_s,
                                     self._restart_element, element)

    def _restart_element(self, element) -> None:
        element.restart()
        self._injected_at.pop(element.mac, None)
        self._detected_at.pop(element.mac, None)
        self._mark("element-restart", element=element.name)

    def _hang_element(self, element, duration_s: float) -> None:
        element.hang(duration_s)
        self._injected_at[element.mac] = self.net.sim.now
        self._fault_kind[element.mac] = "element-hang"
        self._mark("element-hang", element=element.name,
                   duration_s=duration_s)

    def _slow_element(self, element, interval_s: float) -> None:
        element.set_report_interval(interval_s)
        self._injected_at.setdefault(element.mac, self.net.sim.now)
        self._fault_kind.setdefault(element.mac, "element-slow-report")
        self._mark("element-slow-report", element=element.name,
                   interval_s=interval_s)

    def _disconnect_switch(self, channel) -> None:
        channel.disconnect()
        self._mark("switch-disconnect", dpid=channel.switch.dpid)

    def _reconnect_switch(self, channel) -> None:
        channel.connect()
        self._mark("switch-reconnect", dpid=channel.switch.dpid)

    def _flap_link(self, link, fault, down_s: float) -> None:
        link.set_up(False)
        self._mark("link-flap", node_a=fault.node_a, node_b=fault.node_b,
                   down_s=down_s)
        self.net.sim.schedule(down_s, link.set_up, True)

    def _impair_channels(self, channels, impairments, fault) -> None:
        for channel, impairment in zip(channels, impairments):
            channel.inject_faults(impairment)
        self._mark("channel-chaos", switch=fault.switch,
                   drop_rate=fault.drop_rate,
                   duplicate_rate=fault.duplicate_rate)

    def _clear_channels(self, channels, impairments) -> None:
        for channel, impairment in zip(channels, impairments):
            # Clear only if our impairment is still the active one.
            if channel.faults is impairment:
                channel.inject_faults(None)

    def _crash_shard(self, member, restart_at_s: Optional[float]) -> None:
        member.fail()
        shard = member.shard_id
        self._shard_injected_at[shard] = self.net.sim.now
        self._shard_pending_dpids[shard] = set(
            self._coordinator.shard_map.owned_by(shard)
        )
        self._mark("shard-crash", log=self._coordinator.log, shard=shard)
        if restart_at_s is not None:
            self.net.sim.schedule_at(restart_at_s,
                                     self._restart_shard, member)

    def _restart_shard(self, member) -> None:
        member.restart()
        shard = member.shard_id
        self._shard_injected_at.pop(shard, None)
        self._shard_detected_at.pop(shard, None)
        self._shard_pending_dpids.pop(shard, None)
        self._mark("shard-restart", log=self._coordinator.log, shard=shard)

    def _crash_app(self, controller, fault: AppCrash) -> None:
        controller.crash_app(fault.app)
        self._app_injected_at[fault.app] = self.net.sim.now
        data = {"app": fault.app}
        if fault.shard is not None:
            data["shard"] = fault.shard
        self._mark("app-crash", log=controller.log, **data)

    def _compromise_switch(self, switch, fault) -> None:
        switch.compromise(fault.variant, port=fault.port)
        self._switch_injected_at[switch.dpid] = self.net.sim.now
        self._mark("switch-compromise", dpid=switch.dpid,
                   variant=fault.variant)

    def _restore_switch(self, switch) -> None:
        switch.restore_integrity()
        self._mark("switch-restore", dpid=switch.dpid)

    # ------------------------------------------------------------------
    # Recovery scoring (event-log subscriber)

    def _sample(self, table: Dict[str, List[float]],
                kind: str, value: float) -> None:
        table.setdefault(kind, []).append(value)

    def _on_event(self, event: NetworkEvent) -> None:
        if event.kind == EventKind.ELEMENT_OFFLINE:
            mac = event.data.get("mac")
            injected = self._injected_at.get(mac)
            if injected is None:
                return
            if len(self._controllers) > 1 and mac in self._detected_at:
                # Sharded: borrower shards re-log the death a sync
                # round later (remote_element_down); only the origin's
                # first detection is the TTD sample.
                return
            self._detected_at[mac] = event.time
            self._time_to_detect.observe(event.time - injected)
            self._sample(
                self._ttd_samples,
                self._fault_kind.get(mac, "element-crash"),
                event.time - injected,
            )
            at_risk = sum(
                1
                for controller in self._controllers
                for session in controller.sessions.sessions_via_element(mac)
                if not session.blocked
            )
            self._affected.inc(at_risk)
        elif event.kind == EventKind.FLOW_FAILOVER:
            dead = event.data.get("dead_element")
            outcome = event.data.get("outcome")
            counter = self._outcomes.get(outcome)
            if counter is not None:
                counter.inc()
            injected = self._injected_at.get(dead)
            if injected is not None:
                self._time_to_recover.observe(event.time - injected)
                self._sample(
                    self._ttr_samples,
                    self._fault_kind.get(dead, "element-crash"),
                    event.time - injected,
                )
            # A quarantine-attributed failover recovers a session off a
            # compromised switch: score it against that injection.
            cause = event.data.get("cause", "")
            if isinstance(cause, str) and cause.startswith("quarantine"):
                record = None
                for controller in self._controllers:
                    record = controller.nib.host_by_mac(dead)
                    if record is not None:
                        break
                since = (
                    self._switch_injected_at.get(record.dpid)
                    if record is not None else None
                )
                if since is not None:
                    self._acct_time_to_recover.observe(event.time - since)
                    self._sample(self._ttr_samples, "switch-compromise",
                                 event.time - since)
        elif event.kind == EventKind.PATH_VIOLATION:
            dpid = event.data.get("dpid")
            injected = self._switch_injected_at.get(dpid)
            if injected is None or dpid in self._switch_detected_at:
                return
            self._switch_detected_at[dpid] = event.time
            self._acct_time_to_detect.observe(event.time - injected)
            self._sample(self._ttd_samples, "switch-compromise",
                         event.time - injected)
        elif event.kind == EventKind.APP_LIFECYCLE:
            app = event.data.get("app")
            injected = self._app_injected_at.get(app)
            if injected is None:
                return
            action = event.data.get("action")
            if (action == "crash-detected"
                    and app not in self._app_detected_at):
                self._app_detected_at[app] = event.time
                self._app_time_to_detect.observe(event.time - injected)
                self._sample(self._ttd_samples, "app-crash",
                             event.time - injected)
            elif action == "restarted":
                self._app_time_to_recover.observe(event.time - injected)
                self._sample(self._ttr_samples, "app-crash",
                             event.time - injected)
                self._app_injected_at.pop(app, None)
                self._app_detected_at.pop(app, None)
        elif event.kind == EventKind.SHARD_DOWN:
            shard = event.data.get("shard")
            injected = self._shard_injected_at.get(shard)
            if injected is None or shard in self._shard_detected_at:
                return
            self._shard_detected_at[shard] = event.time
            self._shard_time_to_detect.observe(event.time - injected)
            self._sample(self._ttd_samples, "shard-crash",
                         event.time - injected)
        elif event.kind == EventKind.SHARD_REHOME:
            shard = event.data.get("shard")
            pending = self._shard_pending_dpids.get(shard)
            if not pending:
                return
            pending.discard(event.data.get("dpid"))
            if pending:
                return
            # Every datapath of the dead shard has a new owner: the
            # fabric has recovered from this injection.
            injected = self._shard_injected_at.get(shard)
            if injected is not None:
                self._shard_time_to_recover.observe(event.time - injected)
                self._sample(self._ttr_samples, "shard-crash",
                             event.time - injected)

    # ------------------------------------------------------------------
    # Results

    @staticmethod
    def _stats(samples: List[float]) -> dict:
        return {
            "count": len(samples),
            "min": min(samples),
            "mean": sum(samples) / len(samples),
            "max": max(samples),
        }

    def per_fault_latency(self) -> dict:
        """Per-fault-kind detection/recovery latency samples (the
        TTD/TTR table the chaos CLI renders)."""
        kinds = sorted(set(self._ttd_samples) | set(self._ttr_samples))
        table = {}
        for kind in kinds:
            row = {}
            if self._ttd_samples.get(kind):
                row["time_to_detect_s"] = self._stats(
                    self._ttd_samples[kind]
                )
            if self._ttr_samples.get(kind):
                row["time_to_recover_s"] = self._stats(
                    self._ttr_samples[kind]
                )
            table[kind] = row
        return table

    def summary(self) -> dict:
        """Injection and recovery totals (the chaos verdict)."""
        affected = int(self._affected.value)
        resolved = sum(int(c.value) for c in self._outcomes.values())
        return {
            "seed": self.plan.seed,
            "faults_planned": len(self.plan),
            "injected": {
                kind: int(counter.value)
                for kind, counter in self._injected.items()
                if counter.value
            },
            "affected_sessions": affected,
            "recovered_sessions": int(self._outcomes["recovered"].value),
            "failed_open_sessions": int(self._outcomes["fail-open"].value),
            "blocked_sessions": int(self._outcomes["fail-closed"].value),
            "torn_down_sessions": int(self._outcomes["torn-down"].value),
            "unrecovered_sessions": max(0, affected - resolved),
            "per_fault": self.per_fault_latency(),
        }
