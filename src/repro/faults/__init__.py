"""Deterministic fault injection for chaos-testing the controller.

``FaultPlan`` declares seeded, clock-scheduled faults;
``FaultInjector`` arms a plan against a built network and scores the
controller's recovery; ``run_chaos_scenario`` is the canned end-to-end
scenario behind ``python -m repro chaos`` and ``make chaos-smoke``.
"""

from repro.faults.injector import FaultInjector, FaultTargetError
from repro.faults.plan import FaultPlan
from repro.faults.scenarios import (
    ChaosReport,
    run_chaos_scenario,
    run_compromised_switch_scenario,
    run_shard_failover_scenario,
)

__all__ = [
    "ChaosReport",
    "FaultInjector",
    "FaultPlan",
    "FaultTargetError",
    "run_chaos_scenario",
    "run_compromised_switch_scenario",
    "run_shard_failover_scenario",
]
