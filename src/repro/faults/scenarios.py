"""Canned chaos scenarios: a seeded fault plan over a known deployment.

:func:`run_chaos_scenario` is what ``python -m repro chaos``, the
chaos benchmark, and ``make chaos-smoke`` all drive.  It builds the
standard steered deployment (linear topology, an IDS chain policy, a
small IDS fleet), starts long-running UDP sessions, crashes one or all
elements mid-run, and reports how the controller's failure-recovery
machinery fared -- including the determinism digest two same-seed runs
must agree on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.deployment import build_livesec_network, build_sharded_network
from repro.core.policy import (
    FailMode,
    FlowSelector,
    Policy,
    PolicyAction,
    PolicyTable,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.workloads import CbrUdpFlow

GATEWAY_IP = "10.255.255.254"
CRASH_AT_S = 5.0


@dataclass
class ChaosReport:
    """The outcome of one seeded chaos run."""

    seed: int
    fail_mode: str
    crash: str
    duration_s: float
    injected: Dict[str, int]
    affected_sessions: int
    recovered_sessions: int
    failed_open_sessions: int
    blocked_sessions: int
    torn_down_sessions: int
    unrecovered_sessions: int
    time_to_detect_s: Dict[str, float]
    time_to_recover_s: Dict[str, float]
    install_retries: int
    install_failures: int
    events: int
    event_digest: str
    event_lines: List[str] = field(default_factory=list, repr=False)
    # Per-fault-kind TTD/TTR latency samples (min/mean/max/count).
    per_fault: Dict[str, dict] = field(default_factory=dict)
    # Compromised-switch runs: the variant, the datapaths convicted and
    # quarantined, and how many path violations were raised.
    variant: Optional[str] = None
    quarantined_dpids: List[int] = field(default_factory=list)
    path_violations: int = 0
    # Sharded runs: fabric size and what the shard protocol did.
    shards: int = 1
    rehomed_switches: int = 0
    handoff_sessions: int = 0
    roam_survived: Optional[bool] = None
    flows_surviving: Optional[str] = None

    def to_dict(self) -> dict:
        data = {
            key: getattr(self, key)
            for key in (
                "seed", "fail_mode", "crash", "duration_s", "injected",
                "affected_sessions", "recovered_sessions",
                "failed_open_sessions", "blocked_sessions",
                "torn_down_sessions", "unrecovered_sessions",
                "time_to_detect_s", "time_to_recover_s",
                "install_retries", "install_failures",
                "events", "event_digest", "per_fault",
            )
        }
        if self.variant is not None:
            data["variant"] = self.variant
            data["quarantined_dpids"] = self.quarantined_dpids
            data["path_violations"] = self.path_violations
        if self.shards > 1:
            data["shards"] = self.shards
            data["rehomed_switches"] = self.rehomed_switches
            data["handoff_sessions"] = self.handoff_sessions
            if self.roam_survived is not None:
                data["roam_survived"] = self.roam_survived
            if self.flows_surviving is not None:
                data["flows_surviving"] = self.flows_surviving
        return data

    def render_text(self) -> str:
        lines = [
            f"chaos run: seed={self.seed} fail_mode={self.fail_mode}"
            f" crash={self.crash} duration={self.duration_s:g}s",
            f"  faults injected : {self.injected}",
            f"  sessions        : affected={self.affected_sessions}"
            f" recovered={self.recovered_sessions}"
            f" fail-open={self.failed_open_sessions}"
            f" blocked={self.blocked_sessions}"
            f" torn-down={self.torn_down_sessions}"
            f" unrecovered={self.unrecovered_sessions}",
        ]
        if self.time_to_detect_s:
            lines.append(
                "  time-to-detect  : "
                f"mean={self.time_to_detect_s['mean']:.3f}s"
                f" max={self.time_to_detect_s['max']:.3f}s"
                f" (n={self.time_to_detect_s['count']:g})"
            )
        if self.time_to_recover_s:
            lines.append(
                "  time-to-recover : "
                f"mean={self.time_to_recover_s['mean']:.3f}s"
                f" max={self.time_to_recover_s['max']:.3f}s"
                f" (n={self.time_to_recover_s['count']:g})"
            )
        if self.variant is not None:
            lines.append(
                f"  accountability  : variant={self.variant}"
                f" violations={self.path_violations}"
                f" quarantined={self.quarantined_dpids}"
            )
        if self.shards > 1:
            shard_line = (
                f"  shard fabric    : shards={self.shards}"
                f" rehomed={self.rehomed_switches}"
                f" handoffs={self.handoff_sessions}"
            )
            if self.roam_survived is not None:
                shard_line += f" roam-survived={self.roam_survived}"
            if self.flows_surviving is not None:
                shard_line += f" flows-after-crash={self.flows_surviving}"
            lines.append(shard_line)
        if self.per_fault:
            lines.append("  per-fault latency (sim seconds):")
            lines.append(
                "    {:<22} {:>24} {:>24}".format(
                    "fault", "time-to-detect", "time-to-recover"
                )
            )
            for kind in sorted(self.per_fault):
                row = self.per_fault[kind]
                lines.append("    {:<22} {:>24} {:>24}".format(
                    kind,
                    _stats_cell(row.get("time_to_detect_s")),
                    _stats_cell(row.get("time_to_recover_s")),
                ))
        lines.append(
            f"  installs        : retries={self.install_retries}"
            f" failures={self.install_failures}"
        )
        lines.append(
            f"  event log       : {self.events} events,"
            f" digest {self.event_digest[:16]}"
        )
        return "\n".join(lines)


def _stats_cell(stats: Optional[dict]) -> str:
    if not stats:
        return "-"
    return (
        f"mean={stats['mean']:.3f} max={stats['max']:.3f}"
        f" (n={stats['count']})"
    )


def _hist_summary(snapshot, name: str) -> Dict[str, float]:
    metric = snapshot.get(name)
    if metric is None or metric.count == 0:
        return {}
    return {
        "count": float(metric.count),
        "mean": metric.sum / metric.count,
        "min": metric.min,
        "max": metric.max,
    }


def _report_inputs(net, record_jsonl: Optional[str]):
    """``(snapshot, counters, event_lines, digest)`` for scoring a run.

    Classic networks read the one controller; sharded deployments sum
    the per-shard controller counters, join the shard logs (prefixed,
    shard order) with the coordinator's, and use the fabric's combined
    digest.  The recovery/fault histograms live on the injector's
    registry either way (fabric-level when sharded).  ``record_jsonl``
    saves shard 0's log -- the replay tool reads one log at a time.
    """
    coordinator = getattr(net, "coordinator", None)
    if coordinator is None:
        snapshot = net.controller.metrics.snapshot()
        counters = dict(snapshot.counters())
        lines = [str(event) for event in net.controller.log.all()]
        digest = net.controller.log.digest()
    else:
        snapshot = net.metrics.snapshot()
        counters = dict(snapshot.counters())
        for controller in net.controllers:
            for name, value in controller.metrics.snapshot().counters().items():
                counters[name] = counters.get(name, 0) + value
        lines = []
        for member in net.members:
            lines.extend(
                f"shard{member.shard_id} {event}"
                for event in member.controller.log.all()
            )
        lines.extend(f"fabric {event}" for event in coordinator.log.all())
        digest = net.event_digest()
    if record_jsonl is not None:
        net.controller.log.save(record_jsonl)
    return snapshot, counters, lines, digest


def chaos_policy_table(fail_mode: str) -> PolicyTable:
    """The scenario's policy: everything to the gateway rides an IDS
    chain, with the requested fail mode."""
    table = PolicyTable()
    table.begin(source="chaos").add(Policy(
        name="chaos-ids",
        selector=FlowSelector(dst_ip=GATEWAY_IP),
        action=PolicyAction.CHAIN,
        service_chain=("ids",),
        fail_mode=FailMode(fail_mode),
    )).commit()
    return table


def run_chaos_scenario(
    seed: int = 0,
    fail_mode: str = "open",
    crash: str = "one",
    duration_s: float = 12.0,
    num_elements: int = 3,
    num_hosts: int = 4,
    channel_drop_rate: float = 0.0,
    plan: Optional[FaultPlan] = None,
    record_jsonl: Optional[str] = None,
    shards: int = 1,
) -> ChaosReport:
    """Build, fault, run, and score one chaos scenario.

    ``crash='one'`` kills a single IDS at t=5s with healthy peers left
    (every affected session must fail over); ``crash='all'`` kills the
    whole fleet (the policy's fail mode decides what happens).  A
    custom ``plan`` overrides the built-in crash schedule entirely.
    ``record_jsonl`` saves the run's event log as JSON Lines, ready
    for ``python -m repro replay``.

    ``shards > 1`` runs the same scenario on a sharded control plane:
    the elements land on different shards' switches, so ``crash='one'``
    forces the dead element's owner to fail sessions over onto replicas
    it only knows through the federated directory.
    """
    if fail_mode not in ("open", "closed"):
        raise ValueError(f"fail_mode must be open|closed (got {fail_mode})")
    if crash not in ("one", "all"):
        raise ValueError(f"crash must be one|all (got {crash})")
    if shards < 1:
        raise ValueError(f"shards must be >= 1 (got {shards})")
    if shards > 1:
        num_as = max(3, shards)
        net = build_sharded_network(
            num_shards=shards,
            topology="linear",
            policies=lambda: chaos_policy_table(fail_mode),
            elements=[("ids", num_elements)],
            num_as=num_as,
            hosts_per_as=max(1, (num_hosts + num_as - 1) // num_as),
            element_timeout_s=1.5,
            dispatcher="polling",
        )
    else:
        net = build_livesec_network(
            topology="linear",
            policies=chaos_policy_table(fail_mode),
            elements=[("ids", num_elements)],
            num_as=3,
            hosts_per_as=max(1, (num_hosts + 2) // 3),
            element_timeout_s=1.5,
            dispatcher="polling",
        )
    if plan is None:
        plan = FaultPlan(seed=seed)
        targets = (
            [net.elements[0].name] if crash == "one"
            else [element.name for element in net.elements]
        )
        for name in targets:
            plan.element_crash(CRASH_AT_S, name)
        if channel_drop_rate > 0:
            plan.channel_chaos(
                2.0, "*", drop_rate=channel_drop_rate,
                until_s=duration_s - 1.0,
            )
    injector = FaultInjector(net, plan)
    injector.arm()
    net.start()
    hosts = [h for h in net.topology.hosts if h is not net.topology.gateway]
    for host in hosts[:num_hosts]:
        flow = CbrUdpFlow(
            net.sim, host, GATEWAY_IP,
            rate_bps=2e6, duration_s=duration_s,
        )
        flow.start()
    net.run(duration_s)

    summary = injector.summary()
    snapshot, counters, event_lines, digest = _report_inputs(
        net, record_jsonl
    )
    return ChaosReport(
        seed=plan.seed,
        fail_mode=fail_mode,
        crash=crash,
        duration_s=duration_s,
        injected=summary["injected"],
        affected_sessions=summary["affected_sessions"],
        recovered_sessions=summary["recovered_sessions"],
        failed_open_sessions=summary["failed_open_sessions"],
        blocked_sessions=summary["blocked_sessions"],
        torn_down_sessions=summary["torn_down_sessions"],
        unrecovered_sessions=summary["unrecovered_sessions"],
        time_to_detect_s=_hist_summary(snapshot, "recovery.time_to_detect_s"),
        time_to_recover_s=_hist_summary(
            snapshot, "recovery.time_to_recover_s"
        ),
        install_retries=int(counters.get("controller.install_retries", 0)),
        install_failures=int(counters.get("controller.install_failures", 0)),
        events=len(event_lines),
        event_digest=digest,
        event_lines=event_lines,
        per_fault=summary["per_fault"],
        shards=shards,
        rehomed_switches=int(
            counters.get("sharding.rehomed_switches", 0)
        ),
        handoff_sessions=int(
            counters.get("sharding.handoff_sessions", 0)
        ),
    )


COMPROMISE_AT_S = 5.0


def _core_uplink_port(topology, switch) -> int:
    """The switch's port into the legacy core (misroute divert target)."""
    for number in sorted(switch.ports):
        port = switch.ports[number]
        if port.link is None:
            continue
        peer = port.peer()
        if peer is not None and any(
            peer.node is legacy for legacy in topology.legacy
        ):
            return number
    raise ValueError(f"{switch.name} has no core uplink")


def run_compromised_switch_scenario(
    seed: int = 0,
    variant: str = "skip-waypoint",
    duration_s: float = 12.0,
    num_elements: int = 3,
    record_jsonl: Optional[str] = None,
) -> ChaosReport:
    """A compromised data plane under forwarding accountability.

    The deployment is the standard steered linear network with
    accountability enabled: every session's forward path carries an
    SDNsec-style proof chain.  At t=5s the middle AS switch -- host to
    the fleet's second IDS, but none of the traffic sources -- turns
    adversarial in one of three ways:

    * ``skip-waypoint``: it bypasses its local element (inspection
      evasion) -- caught by the egress proof, whose mark chain is one
      stamp short exactly at the compromised dpid;
    * ``misroute``: it diverts tagged frames out its core uplink --
      caught when the off-path frame punts at another switch still
      carrying its tag;
    * ``tag-strip``: it strips proof state entirely -- caught by the
      absence audit when its sessions' proofs go silent while paths
      avoiding the switch stay healthy.

    Detection raises PATH_VIOLATION, quarantines the dpid, and the
    controller re-steers the affected sessions onto replicas homed on
    honest switches; the per-fault TTD/TTR table scores the loop.
    """
    net = build_livesec_network(
        topology="linear",
        policies=chaos_policy_table("open"),
        elements=[("ids", num_elements)],
        num_as=3,
        hosts_per_as=2,
        element_timeout_s=1.5,
        dispatcher="polling",
        accountability=True,
    )
    compromised = net.topology.as_switches[1]
    port = None
    if variant == "misroute":
        port = _core_uplink_port(net.topology, compromised)
    plan = FaultPlan(seed=seed).switch_compromise(
        COMPROMISE_AT_S, compromised.name, variant=variant, port=port,
    )
    injector = FaultInjector(net, plan)
    injector.arm()
    net.start()
    # Traffic only from hosts *not* attached to the compromised switch:
    # it sits on the inspection path purely as an element's home, so a
    # conviction is attributable to forwarding misbehavior alone.
    hosts = [
        host for host in net.topology.hosts
        if host is not net.topology.gateway
        and not host.name.startswith("h2_")
    ]
    for host in hosts:
        CbrUdpFlow(
            net.sim, host, GATEWAY_IP,
            rate_bps=2e6, duration_s=duration_s,
        ).start()
    net.run(duration_s)

    summary = injector.summary()
    snapshot = net.controller.metrics.snapshot()
    counters = snapshot.counters()
    event_lines = [str(event) for event in net.controller.log.all()]
    digest = net.controller.log.digest()
    if record_jsonl is not None:
        net.controller.log.save(record_jsonl)
    return ChaosReport(
        seed=plan.seed,
        fail_mode="open",
        crash="compromise",
        duration_s=duration_s,
        injected=summary["injected"],
        affected_sessions=summary["affected_sessions"],
        recovered_sessions=summary["recovered_sessions"],
        failed_open_sessions=summary["failed_open_sessions"],
        blocked_sessions=summary["blocked_sessions"],
        torn_down_sessions=summary["torn_down_sessions"],
        unrecovered_sessions=summary["unrecovered_sessions"],
        time_to_detect_s=_hist_summary(
            snapshot, "accountability.time_to_detect_s"
        ),
        time_to_recover_s=_hist_summary(
            snapshot, "accountability.time_to_recover_s"
        ),
        install_retries=int(counters.get("controller.install_retries", 0)),
        install_failures=int(counters.get("controller.install_failures", 0)),
        events=len(event_lines),
        event_digest=digest,
        event_lines=event_lines,
        per_fault=summary["per_fault"],
        variant=variant,
        quarantined_dpids=sorted(net.controller.quarantined_dpids),
        path_violations=int(counters.get("accountability.violations", 0)),
    )


ROAM_AT_S = 4.5
SHARD_CRASH_AT_S = 6.0


def run_shard_failover_scenario(
    seed: int = 0,
    duration_s: float = 12.0,
    k: int = 4,
    record_jsonl: Optional[str] = None,
) -> ChaosReport:
    """The shard fabric under its two defining stresses, in one run.

    A k-ary fat tree partitioned per-pod across ``k`` controller
    shards, one IDS per pod, every host streaming UDP through the IDS
    chain toward the gateway (pod 0).  Then:

    * at t=4.5s the last pod's host roams onto a pod-0 edge switch --
      a cross-shard HOST_MOVE, so its established session must ride
      the handoff protocol (state serialized to shard 0, ingress rules
      re-installed there, same session id);
    * at t=6s shard 1 crashes.  The coordinator's liveness scan must
      declare it down and re-home its datapaths onto the survivors,
      while the crashed shard's established sessions keep forwarding
      on data-plane state the whole time.

    The report scores both: ``roam_survived`` is the handoff verdict,
    ``flows_surviving`` counts the crashed pod's flows still delivering
    bytes to the gateway after the crash, and the shard TTD/TTR
    histograms land in the usual detect/recover columns.
    """
    if k < 2 or k % 2:
        raise ValueError(f"k must be even and >= 2 (got {k})")
    net = build_sharded_network(
        num_shards=k,
        topology="fattree",
        k=k,
        hosts_per_edge=1,
        policies=lambda: chaos_policy_table("open"),
        element_timeout_s=1.5,
        dispatcher="polling",
    )
    # One IDS per pod, homed on the pod's first edge OvS: every shard
    # owns a replica, so re-steering after the crash stays local while
    # the directory still federates the full fleet.
    for shard in range(k):
        dpid = net.shard_map.owned_by(shard)[0]
        switch = next(
            s for s in net.topology.as_switches if s.dpid == dpid
        )
        net.add_element("ids", switch)
    crashed_shard = 1
    plan = FaultPlan(seed=seed).shard_crash(SHARD_CRASH_AT_S, crashed_shard)
    injector = FaultInjector(net, plan)
    injector.arm()
    net.start()

    gateway = net.topology.gateway
    hosts = [h for h in net.topology.hosts if h is not gateway]
    flows = {
        host.name: CbrUdpFlow(
            net.sim, host, GATEWAY_IP,
            rate_bps=2e6, duration_s=duration_s,
        ).start()
        for host in hosts
    }

    # Bytes the gateway has seen per crashed-pod flow, sampled just
    # after the crash: survival means the count keeps growing.
    crashed_dpids = set(net.shard_map.owned_by(crashed_shard))
    crashed_flows = {
        name: flow for name, flow in flows.items()
        if net.topology.attachments[name].switch.dpid in crashed_dpids
    }
    at_crash: Dict[int, int] = {}

    def _sample_goodput() -> None:
        for flow in crashed_flows.values():
            at_crash[flow.flow_id] = gateway.received_bits(flow.flow_id)

    net.sim.schedule_at(SHARD_CRASH_AT_S + 0.05, _sample_goodput)

    # Cross-pod roam: the last edge switch's host moves onto pod 0's
    # second edge switch (dpid 2) -- different shard, so the session
    # must hand off.
    roamer_name = f"h{k * k // 2}_1"
    roamer = net.topology.host_by_name(roamer_name)
    net.sim.run(until=ROAM_AT_S)
    old_owner = net.member_of(net.topology.attachments[roamer_name]
                              .switch.dpid)
    roam_session_ids = {
        session.session_id
        for session in old_owner.controller.sessions.sessions_of_user(
            roamer.mac
        )
    }
    destination = next(s for s in net.topology.as_switches if s.dpid == 2)
    net.topology.move_host(roamer_name, destination)
    roamer.announce()
    net.sim.run(until=max(duration_s, SHARD_CRASH_AT_S + 4.0))

    new_owner = net.member_of(2)
    adopted_ids = {
        session.session_id
        for session in new_owner.controller.sessions.sessions_of_user(
            roamer.mac
        )
        if not session.blocked
    }
    roam_survived = bool(roam_session_ids & adopted_ids)
    survivors = sum(
        1 for flow in crashed_flows.values()
        if gateway.received_bits(flow.flow_id)
        > at_crash.get(flow.flow_id, 0)
    )

    summary = injector.summary()
    snapshot, counters, event_lines, digest = _report_inputs(
        net, record_jsonl
    )
    return ChaosReport(
        seed=plan.seed,
        fail_mode="open",
        crash="shard",
        duration_s=duration_s,
        injected=summary["injected"],
        affected_sessions=summary["affected_sessions"],
        recovered_sessions=summary["recovered_sessions"],
        failed_open_sessions=summary["failed_open_sessions"],
        blocked_sessions=summary["blocked_sessions"],
        torn_down_sessions=summary["torn_down_sessions"],
        unrecovered_sessions=summary["unrecovered_sessions"],
        time_to_detect_s=_hist_summary(
            snapshot, "recovery.shard_time_to_detect_s"
        ),
        time_to_recover_s=_hist_summary(
            snapshot, "recovery.shard_time_to_recover_s"
        ),
        install_retries=int(counters.get("controller.install_retries", 0)),
        install_failures=int(counters.get("controller.install_failures", 0)),
        events=len(event_lines),
        event_digest=digest,
        event_lines=event_lines,
        per_fault=summary["per_fault"],
        shards=k,
        rehomed_switches=int(
            counters.get("sharding.rehomed_switches", 0)
        ),
        handoff_sessions=int(
            counters.get("sharding.handoff_sessions", 0)
        ),
        roam_survived=roam_survived,
        flows_surviving=f"{survivors}/{len(crashed_flows)}",
    )
