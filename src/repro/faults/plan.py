"""Declarative fault plans for deterministic chaos runs.

A :class:`FaultPlan` is a seeded, ordered list of fault descriptors,
each pinned to a simulator-clock instant.  Plans are pure data: they
name their targets (elements, switches, link endpoints) and carry no
object references, so the same plan can be re-armed against a freshly
built network and -- because every random draw descends from the
plan's seed -- two same-seed runs replay identically, event for event.

Faults model what the paper's deployment actually suffers from
(Section V: VM-based service elements, OpenFlow switches, a legacy
fabric):

* ``element_crash`` -- the VM dies (daemon stops, frames dropped);
  optionally reboots later.
* ``element_hang`` -- the VM freezes for a while, then resumes and
  re-certifies by itself.
* ``element_slow_report`` -- the daemon's online-message cadence is
  stretched (possibly past the controller's liveness timeout).
* ``switch_disconnect`` -- the secure channel drops (controller sees
  a switch leave); optionally reconnects later.
* ``link_flap`` -- a physical link goes down and comes back.
* ``channel_chaos`` -- the secure channel starts dropping / delaying /
  duplicating individual OpenFlow messages, driven by a seeded RNG.
* ``switch_compromise`` -- the data plane itself turns adversarial:
  the switch skips its waypoint, misroutes tagged frames out a chosen
  port, or strips path tags (the SDNsec threat model); only the
  forwarding-accountability proofs can convict it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.openflow.switch import COMPROMISE_VARIANTS

VALID_DIRECTIONS = ("to_switch", "to_controller")


@dataclass(frozen=True)
class ElementCrash:
    at_s: float
    element: str  # element name
    restart_at_s: Optional[float] = None

    kind = "element-crash"


@dataclass(frozen=True)
class ElementHang:
    at_s: float
    element: str
    duration_s: float

    kind = "element-hang"


@dataclass(frozen=True)
class ElementSlowReport:
    at_s: float
    element: str
    interval_s: float  # the stretched report interval
    restore_at_s: Optional[float] = None
    restore_interval_s: Optional[float] = None  # default: prior interval

    kind = "element-slow-report"


@dataclass(frozen=True)
class SwitchDisconnect:
    at_s: float
    switch: str  # switch name
    reconnect_at_s: Optional[float] = None

    kind = "switch-disconnect"


@dataclass(frozen=True)
class LinkFlap:
    at_s: float
    node_a: str  # names of the link's two endpoints
    node_b: str
    down_s: float

    kind = "link-flap"


@dataclass(frozen=True)
class ChannelChaos:
    at_s: float
    switch: str  # switch name, or "*" for every channel
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    extra_delay_s: float = 0.0
    until_s: Optional[float] = None  # impairment cleared at this time
    directions: Tuple[str, ...] = VALID_DIRECTIONS

    kind = "channel-chaos"


@dataclass(frozen=True)
class ShardCrash:
    """A whole controller shard dies (sharded deployments only): its
    secure channels drop and it stops answering the coordinator's sync
    rounds, so its switches re-home onto the survivors."""

    at_s: float
    shard: int
    restart_at_s: Optional[float] = None

    kind = "shard-crash"


@dataclass(frozen=True)
class AppCrash:
    """A controller app crashes in place: its bus subscriptions and
    periodic timers vanish silently (no lifecycle event -- a real
    crash announces nothing).  The controller's app watchdog, armed
    automatically when a plan carries this fault, detects the crashed
    state on its next scan and revives the app from its recorded
    config; detection and recovery are scored as TTD/TTR like element
    and shard faults."""

    at_s: float
    app: str  # app name, e.g. "steering"
    shard: Optional[int] = None  # sharded runs: which member's app

    kind = "app-crash"


@dataclass(frozen=True)
class SwitchCompromise:
    at_s: float
    switch: str  # switch name
    variant: str = "skip-waypoint"
    port: Optional[int] = None  # misroute: divert tagged frames here
    restore_at_s: Optional[float] = None  # firmware reflash / replacement

    kind = "switch-compromise"


@dataclass
class FaultPlan:
    """An ordered, seeded schedule of faults.

    Builder methods validate and append, returning ``self`` so plans
    read as a chain::

        plan = (FaultPlan(seed=7)
                .element_crash(5.0, "ids-1")
                .channel_chaos(2.0, "*", drop_rate=0.1, until_s=8.0))
    """

    seed: int = 0
    faults: List[object] = field(default_factory=list)

    def _add(self, fault) -> "FaultPlan":
        if fault.at_s < 0:
            raise ValueError(f"fault time must be >= 0 (got {fault.at_s})")
        self.faults.append(fault)
        return self

    def element_crash(
        self, at_s: float, element: str,
        restart_at_s: Optional[float] = None,
    ) -> "FaultPlan":
        if restart_at_s is not None and restart_at_s <= at_s:
            raise ValueError("restart must come after the crash")
        return self._add(ElementCrash(at_s, element, restart_at_s))

    def element_hang(
        self, at_s: float, element: str, duration_s: float
    ) -> "FaultPlan":
        if duration_s <= 0:
            raise ValueError(f"hang duration must be positive ({duration_s})")
        return self._add(ElementHang(at_s, element, duration_s))

    def element_slow_report(
        self, at_s: float, element: str, interval_s: float,
        restore_at_s: Optional[float] = None,
        restore_interval_s: Optional[float] = None,
    ) -> "FaultPlan":
        if interval_s <= 0:
            raise ValueError(f"interval must be positive ({interval_s})")
        if restore_at_s is not None and restore_at_s <= at_s:
            raise ValueError("restore must come after the slowdown")
        return self._add(ElementSlowReport(
            at_s, element, interval_s, restore_at_s, restore_interval_s
        ))

    def switch_disconnect(
        self, at_s: float, switch: str,
        reconnect_at_s: Optional[float] = None,
    ) -> "FaultPlan":
        if reconnect_at_s is not None and reconnect_at_s <= at_s:
            raise ValueError("reconnect must come after the disconnect")
        return self._add(SwitchDisconnect(at_s, switch, reconnect_at_s))

    def link_flap(
        self, at_s: float, node_a: str, node_b: str, down_s: float
    ) -> "FaultPlan":
        if down_s <= 0:
            raise ValueError(f"down time must be positive ({down_s})")
        return self._add(LinkFlap(at_s, node_a, node_b, down_s))

    def channel_chaos(
        self, at_s: float, switch: str = "*",
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        extra_delay_s: float = 0.0,
        until_s: Optional[float] = None,
        directions: Tuple[str, ...] = VALID_DIRECTIONS,
    ) -> "FaultPlan":
        for rate in (drop_rate, duplicate_rate):
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"rates must be in [0, 1) (got {rate})")
        if extra_delay_s < 0:
            raise ValueError(f"delay must be >= 0 (got {extra_delay_s})")
        if until_s is not None and until_s <= at_s:
            raise ValueError("until must come after the start")
        bad = set(directions) - set(VALID_DIRECTIONS)
        if bad:
            raise ValueError(f"unknown directions {sorted(bad)}")
        return self._add(ChannelChaos(
            at_s, switch, drop_rate, duplicate_rate, extra_delay_s,
            until_s, tuple(directions),
        ))

    def shard_crash(
        self, at_s: float, shard: int,
        restart_at_s: Optional[float] = None,
    ) -> "FaultPlan":
        if shard < 0:
            raise ValueError(f"shard id must be >= 0 (got {shard})")
        if restart_at_s is not None and restart_at_s <= at_s:
            raise ValueError("restart must come after the crash")
        return self._add(ShardCrash(at_s, shard, restart_at_s))

    def app_crash(
        self, at_s: float, app: str, shard: Optional[int] = None,
    ) -> "FaultPlan":
        if not app:
            raise ValueError("app name must be non-empty")
        if shard is not None and shard < 0:
            raise ValueError(f"shard id must be >= 0 (got {shard})")
        return self._add(AppCrash(at_s, app, shard))

    def switch_compromise(
        self, at_s: float, switch: str,
        variant: str = "skip-waypoint",
        port: Optional[int] = None,
        restore_at_s: Optional[float] = None,
    ) -> "FaultPlan":
        if variant not in COMPROMISE_VARIANTS:
            raise ValueError(
                f"unknown compromise variant {variant!r};"
                f" choose from {COMPROMISE_VARIANTS}"
            )
        if variant == "misroute" and port is None:
            raise ValueError("misroute needs the divert port")
        if restore_at_s is not None and restore_at_s <= at_s:
            raise ValueError("restore must come after the compromise")
        return self._add(SwitchCompromise(
            at_s, switch, variant, port, restore_at_s
        ))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def describe(self) -> List[str]:
        """Human-readable one-liners, in schedule order."""
        return [
            f"t={fault.at_s:g}s {fault.kind} {fault}"
            for fault in sorted(self.faults, key=lambda f: f.at_s)
        ]
