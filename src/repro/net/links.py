"""Capacity-limited duplex links.

A link models the three properties the evaluation depends on:

* **serialization delay** -- ``size * 8 / bandwidth`` per frame, so a
  100 Mbps access port really saturates at 100 Mbps (experiment E1),
* **propagation delay** -- a fixed one-way latency, so the +10 % latency
  overhead of the extra AS hop is measurable (experiment E5),
* **drop-tail queueing** -- bounded per-direction queues, so overload
  shows up as loss rather than infinite buffering.

Each direction is independent (full duplex).  Per-direction byte
counters feed the link-utilization view of the visualization layer.

The drop-tail queue models the transmit buffer: a frame occupies a
slot from enqueue until its *serialization* finishes, not until it has
also propagated to the far end -- propagation happens on the wire, not
in the buffer.  Occupancy is therefore derived from the queue of
serialization-completion times, pruned lazily against ``now``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, TYPE_CHECKING

from repro.net.packet import Ethernet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.node import Port
    from repro.net.simulator import Simulator


class _Direction:
    """Transmission state for one direction of a duplex link."""

    __slots__ = (
        "next_free",
        "pending_done",
        "tx_packets",
        "tx_bytes",
        "dropped",
        "busy_time",
    )

    def __init__(self) -> None:
        self.next_free = 0.0
        # Serialization-completion times of queued frames, ascending
        # (next_free is monotone).  A slot frees when its frame is
        # fully on the wire -- before propagation completes.
        self.pending_done: Deque[float] = deque()
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped = 0
        self.busy_time = 0.0

    def occupancy(self, now: float) -> int:
        """Frames still in the transmit buffer at ``now``."""
        pending = self.pending_done
        while pending and pending[0] <= now:
            pending.popleft()
        return len(pending)


class HopPlan:
    """One hop's precomputed fluid-advance accounting.

    Built once per suspension by :meth:`Link.fluid_plan`; applied per
    analytic advance by :func:`fluid_apply`.  ``end_offset_s`` is when
    a frame emitted at ``t`` finishes *serializing* on this hop
    (arrival at the far end minus propagation) -- it advances the
    direction's ``next_free`` clock so a packet-level frame arriving
    right after a fast-forward (a new flow's first punt, a
    materialized resume) waits behind the analytic traffic exactly as
    it would have behind the real frames.  ``medium`` is the shared
    radio for wireless hops (None on wired links).
    """

    __slots__ = (
        "link", "direction", "from_port", "to_port", "medium",
        "busy_per_packet_s", "end_offset_s",
    )


def fluid_apply(
    plans: Iterable[HopPlan], packets: int, packet_size: int, last_t: float
) -> None:
    """Account ``packets`` analytically advanced frames on every hop.

    One call per flow-advance (the kernel's hottest path): the loop
    body is plain counter arithmetic over the precomputed plans.
    ``last_t`` is the emission time of the final synthesized frame.
    """
    if packets <= 0:
        return
    total = packets * packet_size
    for plan in plans:
        direction = plan.direction
        direction.tx_packets += packets
        direction.tx_bytes += total
        direction.busy_time += packets * plan.busy_per_packet_s
        end = last_t + plan.end_offset_s
        if end > direction.next_free:
            direction.next_free = end
        port = plan.from_port
        port.tx_packets += packets
        port.tx_bytes += total
        port = plan.to_port
        port.rx_packets += packets
        port.rx_bytes += total
        medium = plan.medium
        if medium is not None:
            # The shared radio's airtime and serialization clock
            # advance too, so real frames sent right after a
            # fast-forward contend with the synthesized airtime.
            medium.busy_time += packets * plan.busy_per_packet_s
            medium.frames += packets
            if end > medium.next_free:
                medium.next_free = end


class Link:
    """A duplex point-to-point link between two ports.

    Use :func:`repro.net.node.connect` rather than constructing
    directly -- it allocates ports and wires both ends.
    """

    def __init__(
        self,
        sim: "Simulator",
        end_a: "Port",
        end_b: "Port",
        bandwidth_bps: float,
        delay_s: float,
        queue_packets: int,
    ):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive (got {bandwidth_bps})")
        if delay_s < 0:
            raise ValueError(f"delay must be non-negative (got {delay_s})")
        self.sim = sim
        self.end_a = end_a
        self.end_b = end_b
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.queue_packets = queue_packets
        self.up = True
        self._directions: Dict[int, _Direction] = {
            id(end_a): _Direction(),
            id(end_b): _Direction(),
        }

    def other_end(self, port: "Port") -> "Port":
        if port is self.end_a:
            return self.end_b
        if port is self.end_b:
            return self.end_a
        raise ValueError(f"{port} is not an end of {self}")

    def transmit(self, from_port: "Port", frame: Ethernet) -> bool:
        """Serialize ``frame`` out of ``from_port`` toward the peer.

        Returns False when the frame is dropped (link down or the
        direction's queue is full).
        """
        if not self.up:
            from_port.tx_drops += 1
            return False
        direction = self._directions[id(from_port)]
        now = self.sim.now
        if direction.occupancy(now) >= self.queue_packets:
            direction.dropped += 1
            from_port.tx_drops += 1
            return False

        tx_time = frame.size * 8.0 / self.bandwidth_bps
        start = max(now, direction.next_free)
        done = start + tx_time
        direction.next_free = done
        direction.pending_done.append(done)
        direction.busy_time += tx_time
        direction.tx_packets += 1
        direction.tx_bytes += frame.size
        from_port.tx_packets += 1
        from_port.tx_bytes += frame.size

        to_port = self.other_end(from_port)
        self.sim.schedule_at(
            done + self.delay_s, self._deliver, frame, from_port, to_port
        )
        return True

    def _deliver(self, frame: Ethernet, from_port: "Port", to_port: "Port") -> None:
        # The queue slot was released when serialization finished (see
        # _Direction.occupancy); delivery only hands the frame over.
        if not self.up or not to_port.enabled:
            return
        to_port.rx_packets += 1
        to_port.rx_bytes += frame.size
        to_port.node.receive(frame, to_port.number)

    def fluid_plan(
        self, from_port: "Port", packet_size: int, arrival_offset_s: float
    ) -> "HopPlan":
        """Precompute this hop's analytic accounting for the fluid
        fast-forward kernel.

        ``arrival_offset_s`` is when a frame emitted at ``t`` arrives
        at the far end; the plan holds everything :func:`fluid_apply`
        needs so the per-advance hot loop is pure arithmetic.  The plan
        keeps link, port and utilization counters identical to what the
        packet path would have accumulated -- same fields, no events.
        Queue occupancy is untouched: fluid mode only runs while the
        traversed links have headroom, so analytic traffic never
        queues.
        """
        plan = HopPlan()
        plan.link = self
        plan.direction = self._directions[id(from_port)]
        plan.from_port = from_port
        plan.to_port = self.other_end(from_port)
        plan.medium = None
        plan.busy_per_packet_s = packet_size * 8.0 / self.bandwidth_bps
        plan.end_offset_s = arrival_offset_s - self.delay_s
        return plan

    def stats(self, from_port: "Port") -> dict:
        """Counters for the direction transmitting out of ``from_port``."""
        direction = self._directions[id(from_port)]
        return {
            "tx_packets": direction.tx_packets,
            "tx_bytes": direction.tx_bytes,
            "dropped": direction.dropped,
            "busy_time": direction.busy_time,
            "queued": direction.occupancy(self.sim.now),
        }

    def utilization(self, from_port: "Port", window_start: float) -> float:
        """Fraction of capacity used since ``window_start``.

        Computed from accumulated busy time; callers snapshot
        ``stats()['busy_time']`` at window boundaries for windowed
        readings.
        """
        elapsed = self.sim.now - window_start
        if elapsed <= 0:
            return 0.0
        busy = self._directions[id(from_port)].busy_time
        return min(1.0, busy / elapsed)

    def set_up(self, up: bool) -> None:
        """Administratively raise or fail the link (fault injection)."""
        changed = self.up != up
        self.up = up
        if changed:
            fluid = getattr(self.sim, "fluid", None)
            if fluid is not None:
                # Suspended flows may traverse this link (a failure
                # invalidates their paths) or a restored link may
                # change legacy forwarding: resume packet fidelity.
                fluid.materialize_all("link-admin")

    def __repr__(self) -> str:
        return (
            f"<Link {self.end_a.node.name}:{self.end_a.number}"
            f"<->{self.end_b.node.name}:{self.end_b.number}"
            f" {self.bandwidth_bps / 1e6:.0f}Mbps>"
        )
