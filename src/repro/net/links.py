"""Capacity-limited duplex links.

A link models the three properties the evaluation depends on:

* **serialization delay** -- ``size * 8 / bandwidth`` per frame, so a
  100 Mbps access port really saturates at 100 Mbps (experiment E1),
* **propagation delay** -- a fixed one-way latency, so the +10 % latency
  overhead of the extra AS hop is measurable (experiment E5),
* **drop-tail queueing** -- bounded per-direction queues, so overload
  shows up as loss rather than infinite buffering.

Each direction is independent (full duplex).  Per-direction byte
counters feed the link-utilization view of the visualization layer.
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from repro.net.packet import Ethernet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.node import Port
    from repro.net.simulator import Simulator


class _Direction:
    """Transmission state for one direction of a duplex link."""

    __slots__ = (
        "next_free",
        "queued",
        "tx_packets",
        "tx_bytes",
        "dropped",
        "busy_time",
    )

    def __init__(self) -> None:
        self.next_free = 0.0
        self.queued = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped = 0
        self.busy_time = 0.0


class Link:
    """A duplex point-to-point link between two ports.

    Use :func:`repro.net.node.connect` rather than constructing
    directly -- it allocates ports and wires both ends.
    """

    def __init__(
        self,
        sim: "Simulator",
        end_a: "Port",
        end_b: "Port",
        bandwidth_bps: float,
        delay_s: float,
        queue_packets: int,
    ):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive (got {bandwidth_bps})")
        if delay_s < 0:
            raise ValueError(f"delay must be non-negative (got {delay_s})")
        self.sim = sim
        self.end_a = end_a
        self.end_b = end_b
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.queue_packets = queue_packets
        self.up = True
        self._directions: Dict[int, _Direction] = {
            id(end_a): _Direction(),
            id(end_b): _Direction(),
        }

    def other_end(self, port: "Port") -> "Port":
        if port is self.end_a:
            return self.end_b
        if port is self.end_b:
            return self.end_a
        raise ValueError(f"{port} is not an end of {self}")

    def transmit(self, from_port: "Port", frame: Ethernet) -> bool:
        """Serialize ``frame`` out of ``from_port`` toward the peer.

        Returns False when the frame is dropped (link down or the
        direction's queue is full).
        """
        if not self.up:
            from_port.tx_drops += 1
            return False
        direction = self._directions[id(from_port)]
        if direction.queued >= self.queue_packets:
            direction.dropped += 1
            from_port.tx_drops += 1
            return False

        now = self.sim.now
        tx_time = frame.size * 8.0 / self.bandwidth_bps
        start = max(now, direction.next_free)
        done = start + tx_time
        direction.next_free = done
        direction.queued += 1
        direction.busy_time += tx_time
        direction.tx_packets += 1
        direction.tx_bytes += frame.size
        from_port.tx_packets += 1
        from_port.tx_bytes += frame.size

        to_port = self.other_end(from_port)
        self.sim.schedule_at(
            done + self.delay_s, self._deliver, frame, from_port, to_port
        )
        return True

    def _deliver(self, frame: Ethernet, from_port: "Port", to_port: "Port") -> None:
        self._directions[id(from_port)].queued -= 1
        if not self.up or not to_port.enabled:
            return
        to_port.rx_packets += 1
        to_port.rx_bytes += frame.size
        to_port.node.receive(frame, to_port.number)

    def stats(self, from_port: "Port") -> dict:
        """Counters for the direction transmitting out of ``from_port``."""
        direction = self._directions[id(from_port)]
        return {
            "tx_packets": direction.tx_packets,
            "tx_bytes": direction.tx_bytes,
            "dropped": direction.dropped,
            "busy_time": direction.busy_time,
            "queued": direction.queued,
        }

    def utilization(self, from_port: "Port", window_start: float) -> float:
        """Fraction of capacity used since ``window_start``.

        Computed from accumulated busy time; callers snapshot
        ``stats()['busy_time']`` at window boundaries for windowed
        readings.
        """
        elapsed = self.sim.now - window_start
        if elapsed <= 0:
            return 0.0
        busy = self._directions[id(from_port)].busy_time
        return min(1.0, busy / elapsed)

    def set_up(self, up: bool) -> None:
        """Administratively raise or fail the link (fault injection)."""
        self.up = up

    def __repr__(self) -> str:
        return (
            f"<Link {self.end_a.node.name}:{self.end_a.number}"
            f"<->{self.end_b.node.name}:{self.end_b.number}"
            f" {self.bandwidth_bps / 1e6:.0f}Mbps>"
        )
