"""Packet model: Ethernet frames and the protocols LiveSec cares about.

The model is deliberately faithful to what the LiveSec controller
inspects: layer-2 addresses and EtherType, VLAN tags, the IPv4 header,
TCP/UDP ports, and the first payload bytes (used by the l7-filter style
protocol-identification elements and by the service-element UDP message
channel).  Packets carry an explicit wire ``size`` in bytes so links can
compute serialization delay; payload *content* is a plain ``bytes``
object that need not match ``size`` (benches use large frames with
small representative payloads).

The paper's "9-tuple" (Section III.C.3) is
``(vlan, dl_src, dl_dst, dl_type, nw_src, nw_dst, nw_proto, tp_src,
tp_dst)`` and is extracted by :func:`extract_nine_tuple`.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import NamedTuple, Optional, Union

# EtherTypes
ETH_TYPE_IP = 0x0800
ETH_TYPE_ARP = 0x0806
ETH_TYPE_LLDP = 0x88CC

# IP protocol numbers
IP_PROTO_ICMP = 1
IP_PROTO_TCP = 6
IP_PROTO_UDP = 17

BROADCAST_MAC = "ff:ff:ff:ff:ff:ff"

# Chassis MACs (LLDP/BPDU sources) live in a locally-administered range
# disjoint from host MACs, so control frames flooded through the legacy
# fabric can never poison its MAC learning of host locations.
SWITCH_MAC_BASE = 0x0200_0000_0000

# Nominal header overheads used for default frame sizing (bytes).
ETH_HEADER_BYTES = 18  # 14 + 4 FCS
IP_HEADER_BYTES = 20
TCP_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8

_packet_ids = itertools.count(1)


def mac_address(index: int) -> str:
    """Deterministic MAC address for host/switch number ``index``.

    >>> mac_address(1)
    '00:00:00:00:00:01'
    >>> mac_address(256)
    '00:00:00:00:01:00'
    """
    if not 0 <= index < 2 ** 48:
        raise ValueError(f"MAC index out of range: {index}")
    raw = f"{index:012x}"
    return ":".join(raw[i : i + 2] for i in range(0, 12, 2))


def ip_address(index: int, base: str = "10.0.0.0") -> str:
    """Deterministic IPv4 address ``base + index``.

    >>> ip_address(1)
    '10.0.0.1'
    >>> ip_address(300)
    '10.0.1.44'
    """
    parts = [int(p) for p in base.split(".")]
    value = (parts[0] << 24 | parts[1] << 16 | parts[2] << 8 | parts[3]) + index
    if value >= 2 ** 32:
        raise ValueError(f"IP index out of range: {index}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass
class Lldp:
    """Link Layer Discovery Protocol payload used for topology discovery."""

    chassis_id: int  # datapath id of the emitting switch
    port_id: int  # emitting port number


@dataclass
class Arp:
    """ARP request/reply payload."""

    opcode: int  # 1 = request, 2 = reply
    sender_mac: str
    sender_ip: str
    target_mac: str
    target_ip: str

    REQUEST = 1
    REPLY = 2

    @property
    def is_request(self) -> bool:
        return self.opcode == self.REQUEST


@dataclass
class Dhcp:
    """A minimal DHCP exchange payload (DISCOVER/OFFER/REQUEST/ACK)."""

    opcode: str  # "discover" | "offer" | "request" | "ack"
    client_mac: str
    offered_ip: Optional[str] = None


@dataclass
class Icmp:
    """ICMP echo payload, used by the latency evaluation (Section V.B.3)."""

    kind: str  # "echo-request" | "echo-reply"
    ident: int = 0
    seq: int = 0


@dataclass
class Tcp:
    """TCP segment.  ``payload`` holds the first bytes the L7 classifier sees."""

    sport: int
    dport: int
    flags: str = ""  # e.g. "S", "SA", "F", "R", "" for plain data
    seq: int = 0
    payload: bytes = b""
    ack_seq: Optional[int] = None  # cumulative ACK (None = not an ACK)


@dataclass
class Udp:
    """UDP datagram."""

    sport: int
    dport: int
    payload: bytes = b""


@dataclass
class IPv4:
    """IPv4 packet."""

    src: str
    dst: str
    proto: int
    ttl: int = 64
    tos: int = 0
    payload: Union[Tcp, Udp, Icmp, None] = None


@dataclass
class Ethernet:
    """An Ethernet frame: the unit every node and link handles.

    ``size`` is the wire size in bytes used for serialization delay and
    throughput accounting.  ``flow_id`` optionally tags the frame with
    the workload flow that emitted it, which the analysis layer uses to
    attribute delivered bytes without re-parsing headers.
    """

    src: str
    dst: str
    ethertype: int
    payload: Union[IPv4, Arp, Lldp, Dhcp, None] = None
    vlan: Optional[int] = None
    size: int = 64
    flow_id: Optional[int] = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    created_at: Optional[float] = None
    # Forwarding-accountability tag (SDNsec-style): the ingress switch
    # pushes a per-session path descriptor, every switch on the path
    # appends a keyed mark, the egress strips it and reports the chain.
    # ``None`` for untagged traffic; an immutable PathTag otherwise
    # (stamping replaces the object, so clones may share it safely).
    path_tag: Optional[object] = None

    def clone(self) -> "Ethernet":
        """Deep copy with a fresh packet id (used when flooding).

        Hand-rolled rather than ``dataclasses.replace``: cloning is on
        the per-packet fast path of every flood and multi-port output.
        """
        return Ethernet(
            src=self.src,
            dst=self.dst,
            ethertype=self.ethertype,
            payload=_clone_payload(self.payload) if self.payload else None,
            vlan=self.vlan,
            size=self.size,
            flow_id=self.flow_id,
            created_at=self.created_at,
            path_tag=self.path_tag,
        )

    @property
    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST_MAC

    def ip(self) -> Optional[IPv4]:
        """The IPv4 payload, or None if this is not an IP frame."""
        if self.ethertype == ETH_TYPE_IP and isinstance(self.payload, IPv4):
            return self.payload
        return None

    def transport(self) -> Union[Tcp, Udp, Icmp, None]:
        ip = self.ip()
        return ip.payload if ip is not None else None

    def app_payload(self) -> bytes:
        """The first application bytes of the frame (empty if none)."""
        segment = self.transport()
        if isinstance(segment, (Tcp, Udp)):
            return segment.payload
        return b""

    def __repr__(self) -> str:
        proto = type(self.payload).__name__ if self.payload is not None else "raw"
        return (
            f"<Ethernet#{self.packet_id} {self.src}->{self.dst}"
            f" {proto} {self.size}B>"
        )


def _clone_payload(payload):
    # IPv4/TCP/UDP dominate the fast path; copy them by hand and fall
    # back to dataclasses.replace for the rare control payloads.
    if isinstance(payload, IPv4):
        return IPv4(
            src=payload.src,
            dst=payload.dst,
            proto=payload.proto,
            ttl=payload.ttl,
            tos=payload.tos,
            payload=_clone_payload(payload.payload) if payload.payload else None,
        )
    if isinstance(payload, Tcp):
        return Tcp(
            sport=payload.sport,
            dport=payload.dport,
            flags=payload.flags,
            seq=payload.seq,
            payload=payload.payload,
            ack_seq=payload.ack_seq,
        )
    if isinstance(payload, Udp):
        return Udp(
            sport=payload.sport, dport=payload.dport, payload=payload.payload
        )
    clone = dataclasses.replace(payload)
    inner = getattr(payload, "payload", None)
    if dataclasses.is_dataclass(inner) and not isinstance(inner, type):
        clone.payload = _clone_payload(inner)
    return clone


class FlowNineTuple(NamedTuple):
    """The paper's 9-tuple flow identity (Section III.C.3)."""

    vlan: Optional[int]
    dl_src: str
    dl_dst: str
    dl_type: int
    nw_src: Optional[str]
    nw_dst: Optional[str]
    nw_proto: Optional[int]
    tp_src: Optional[int]
    tp_dst: Optional[int]

    def reversed(self) -> "FlowNineTuple":
        """The 9-tuple of the reply direction of the same session."""
        return FlowNineTuple(
            vlan=self.vlan,
            dl_src=self.dl_dst,
            dl_dst=self.dl_src,
            dl_type=self.dl_type,
            nw_src=self.nw_dst,
            nw_dst=self.nw_src,
            nw_proto=self.nw_proto,
            tp_src=self.tp_dst,
            tp_dst=self.tp_src,
        )


def extract_nine_tuple(frame: Ethernet) -> FlowNineTuple:
    """Extract the 9-tuple flow identity from a frame.

    Non-IP frames yield wildcarded (None) network/transport fields; IP
    frames without TCP/UDP yield wildcarded port fields.
    """
    nw_src = nw_dst = None
    nw_proto = None
    tp_src = tp_dst = None
    ip = frame.ip()
    if ip is not None:
        nw_src, nw_dst, nw_proto = ip.src, ip.dst, ip.proto
        segment = ip.payload
        if isinstance(segment, (Tcp, Udp)):
            tp_src, tp_dst = segment.sport, segment.dport
    return FlowNineTuple(
        vlan=frame.vlan,
        dl_src=frame.src,
        dl_dst=frame.dst,
        dl_type=frame.ethertype,
        nw_src=nw_src,
        nw_dst=nw_dst,
        nw_proto=nw_proto,
        tp_src=tp_src,
        tp_dst=tp_dst,
    )


def make_udp(
    src_mac: str,
    dst_mac: str,
    src_ip: str,
    dst_ip: str,
    sport: int,
    dport: int,
    payload: bytes = b"",
    size: Optional[int] = None,
    vlan: Optional[int] = None,
) -> Ethernet:
    """Convenience constructor for a UDP-over-IP Ethernet frame."""
    wire = size if size is not None else (
        ETH_HEADER_BYTES + IP_HEADER_BYTES + UDP_HEADER_BYTES + len(payload)
    )
    return Ethernet(
        src=src_mac,
        dst=dst_mac,
        ethertype=ETH_TYPE_IP,
        vlan=vlan,
        size=wire,
        payload=IPv4(
            src=src_ip,
            dst=dst_ip,
            proto=IP_PROTO_UDP,
            payload=Udp(sport=sport, dport=dport, payload=payload),
        ),
    )


def make_tcp(
    src_mac: str,
    dst_mac: str,
    src_ip: str,
    dst_ip: str,
    sport: int,
    dport: int,
    payload: bytes = b"",
    flags: str = "",
    size: Optional[int] = None,
    vlan: Optional[int] = None,
) -> Ethernet:
    """Convenience constructor for a TCP-over-IP Ethernet frame."""
    wire = size if size is not None else (
        ETH_HEADER_BYTES + IP_HEADER_BYTES + TCP_HEADER_BYTES + len(payload)
    )
    return Ethernet(
        src=src_mac,
        dst=dst_mac,
        ethertype=ETH_TYPE_IP,
        vlan=vlan,
        size=wire,
        payload=IPv4(
            src=src_ip,
            dst=dst_ip,
            proto=IP_PROTO_TCP,
            payload=Tcp(sport=sport, dport=dport, flags=flags, payload=payload),
        ),
    )


def make_arp_request(sender_mac: str, sender_ip: str, target_ip: str) -> Ethernet:
    """An ARP who-has broadcast frame."""
    return Ethernet(
        src=sender_mac,
        dst=BROADCAST_MAC,
        ethertype=ETH_TYPE_ARP,
        size=64,
        payload=Arp(
            opcode=Arp.REQUEST,
            sender_mac=sender_mac,
            sender_ip=sender_ip,
            target_mac=BROADCAST_MAC,
            target_ip=target_ip,
        ),
    )


def make_arp_reply(
    sender_mac: str, sender_ip: str, target_mac: str, target_ip: str
) -> Ethernet:
    """A unicast ARP is-at reply frame."""
    return Ethernet(
        src=sender_mac,
        dst=target_mac,
        ethertype=ETH_TYPE_ARP,
        size=64,
        payload=Arp(
            opcode=Arp.REPLY,
            sender_mac=sender_mac,
            sender_ip=sender_ip,
            target_mac=target_mac,
            target_ip=target_ip,
        ),
    )


def make_icmp_echo(
    src_mac: str,
    dst_mac: str,
    src_ip: str,
    dst_ip: str,
    kind: str = "echo-request",
    ident: int = 0,
    seq: int = 0,
    size: int = 98,
) -> Ethernet:
    """An ICMP echo frame (the evaluation pings with the default 98B)."""
    return Ethernet(
        src=src_mac,
        dst=dst_mac,
        ethertype=ETH_TYPE_IP,
        size=size,
        payload=IPv4(
            src=src_ip,
            dst=dst_ip,
            proto=IP_PROTO_ICMP,
            payload=Icmp(kind=kind, ident=ident, seq=seq),
        ),
    )


def make_lldp(chassis_id: int, port_id: int) -> Ethernet:
    """An LLDP advertisement frame sent out of switch ``chassis_id``."""
    return Ethernet(
        src=mac_address(SWITCH_MAC_BASE + chassis_id),
        dst="01:80:c2:00:00:0e",
        ethertype=ETH_TYPE_LLDP,
        size=64,
        payload=Lldp(chassis_id=chassis_id, port_id=port_id),
    )
