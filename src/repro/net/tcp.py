"""A compact reliable transport over the simulated network.

The paper's throughput evaluation uses real HTTP-over-TCP flows; the
paced generators in :mod:`repro.workloads.flows` reproduce their load
shape, but say nothing about how *loss* behaves.  This module adds a
small but honest TCP: three-way handshake, byte sequence numbers,
cumulative ACKs, AIMD congestion control (slow start + congestion
avoidance, halving on loss), retransmission timeouts with exponential
backoff, and FIN teardown.  It is enough to show LiveSec's steering
and blocking interacting with a real transport -- retransmissions
recover from overloaded-element drops, and a controller block stalls a
connection permanently.

Simplifications vs a kernel TCP: no SACK, no fast-retransmit dup-ACK
threshold tuning (a simple 3-dup-ACK rule is implemented), no window
scaling, no delayed ACKs, receive window assumed ample.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional

from repro.net import packet as pkt
from repro.net.host import Host
from repro.net.packet import Ethernet, IP_PROTO_TCP, Tcp

MSS = 1400  # payload bytes per segment
HEADERS = pkt.ETH_HEADER_BYTES + pkt.IP_HEADER_BYTES + pkt.TCP_HEADER_BYTES
INITIAL_RTO_S = 0.2
MAX_RTO_S = 5.0
INITIAL_CWND = 2 * MSS
DUP_ACK_THRESHOLD = 3

_ephemeral = itertools.count(40000)


class TcpConnection:
    """One endpoint of a reliable byte-stream connection."""

    # Connection states.
    CLOSED = "closed"
    SYN_SENT = "syn-sent"
    SYN_RECEIVED = "syn-received"
    ESTABLISHED = "established"
    FIN_SENT = "fin-sent"

    def __init__(
        self,
        host: Host,
        peer_ip: str,
        local_port: int,
        peer_port: int,
        on_receive: Optional[Callable[[bytes], None]] = None,
        on_established: Optional[Callable[["TcpConnection"], None]] = None,
        on_close: Optional[Callable[["TcpConnection"], None]] = None,
        register: bool = True,
    ):
        self.host = host
        self.sim = host.sim
        self.peer_ip = peer_ip
        self.local_port = local_port
        self.peer_port = peer_port
        self.on_receive = on_receive
        self.on_established = on_established
        self.on_close = on_close
        self.state = self.CLOSED
        # Send side.
        self._send_buffer = b""
        self._unacked = b""  # in-flight bytes kept for retransmission
        self._snd_una = 0  # first unacked byte
        self._snd_nxt = 0  # next byte to send
        self.cwnd = INITIAL_CWND
        self.ssthresh = 64 * MSS
        self._rto = INITIAL_RTO_S
        self._rto_timer = None
        self._dup_acks = 0
        self._fin_queued = False
        # Receive side.
        self._rcv_nxt = 0
        self._out_of_order: Dict[int, bytes] = {}
        # Stats.
        self.bytes_sent = 0
        self.bytes_acked = 0
        self.bytes_received = 0
        self.retransmissions = 0
        self.established_at: Optional[float] = None
        if register:
            self._register()

    # ------------------------------------------------------------------
    # Public API

    @classmethod
    def connect(
        cls,
        host: Host,
        peer_ip: str,
        peer_port: int,
        local_port: Optional[int] = None,
        on_receive: Optional[Callable[[bytes], None]] = None,
        on_established: Optional[Callable[["TcpConnection"], None]] = None,
        on_close: Optional[Callable[["TcpConnection"], None]] = None,
    ) -> "TcpConnection":
        """Open a client connection (sends the SYN immediately)."""
        conn = cls(
            host, peer_ip,
            local_port if local_port is not None else next(_ephemeral),
            peer_port,
            on_receive=on_receive,
            on_established=on_established,
            on_close=on_close,
        )
        conn.state = cls.SYN_SENT
        conn._fluid_block()
        conn._emit(flags="S")
        conn._arm_rto()
        return conn

    def send(self, data: bytes) -> None:
        """Queue application bytes for reliable delivery."""
        if self.state not in (self.ESTABLISHED, self.SYN_SENT,
                              self.SYN_RECEIVED):
            raise RuntimeError(f"cannot send in state {self.state}")
        self._send_buffer += data
        self._pump()

    def close(self) -> None:
        """Finish sending queued data, then FIN."""
        self._fin_queued = True
        self._pump()

    @property
    def unacked_bytes(self) -> int:
        return self._snd_nxt - self._snd_una

    # ------------------------------------------------------------------
    # Wiring

    def _register(self) -> None:
        self.host.on_app(IP_PROTO_TCP, self.local_port, self._on_frame)

    def _emit(self, flags: str = "", payload: bytes = b"",
              seq: Optional[int] = None, ack: bool = True) -> None:
        segment_seq = self._snd_nxt if seq is None else seq
        frame = pkt.make_tcp(
            self.host.mac, pkt.BROADCAST_MAC, self.host.ip, self.peer_ip,
            self.local_port, self.peer_port,
            payload=payload,
            flags=flags,
            size=HEADERS + len(payload),
        )
        segment = frame.transport()
        segment.seq = segment_seq
        # Cumulative ACK piggybacks on everything after the handshake.
        if ack and self.state in (self.ESTABLISHED, self.SYN_RECEIVED,
                                  self.FIN_SENT):
            segment.flags = (segment.flags + "A") if "A" not in segment.flags \
                else segment.flags
            segment.ack_seq = self._rcv_nxt  # type: ignore[attr-defined]
        frame.created_at = self.sim.now
        self.host.resolve_and_send(frame, self.peer_ip)

    # ------------------------------------------------------------------
    # Send machinery

    def _pump(self) -> None:
        """Send whatever the congestion window currently allows."""
        if self.state != self.ESTABLISHED:
            return
        while self._send_buffer and self.unacked_bytes < self.cwnd:
            chunk = self._send_buffer[:MSS]
            self._send_buffer = self._send_buffer[len(chunk):]
            self._unacked += chunk
            self._emit(payload=chunk)
            self._snd_nxt += len(chunk)
            self.bytes_sent += len(chunk)
        if (
            self._fin_queued
            and not self._send_buffer
            and self.unacked_bytes == 0
            and self.state == self.ESTABLISHED
        ):
            self.state = self.FIN_SENT
            self._emit(flags="F", seq=self._snd_nxt)
            self._snd_nxt += 1  # FIN consumes a sequence number
        if self.unacked_bytes > 0:
            self._arm_rto()

    def _arm_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
        self._rto_timer = self.sim.schedule(self._rto, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_timer = None
        if self.state == self.CLOSED:
            return
        if self.state == self.SYN_SENT:
            self._emit(flags="S", seq=0, ack=False)
            self.retransmissions += 1
        elif self.unacked_bytes > 0 or self.state == self.FIN_SENT:
            self._retransmit_head()
            # Loss signal: multiplicative decrease, restart slow start.
            self.ssthresh = max(2 * MSS, self.cwnd // 2)
            self.cwnd = INITIAL_CWND
        else:
            return
        self._rto = min(self._rto * 2, MAX_RTO_S)
        self._arm_rto()

    def _retransmit_head(self) -> None:
        """Resend the first unacknowledged segment."""
        self.retransmissions += 1
        if self.state == self.FIN_SENT and self._snd_una == self._snd_nxt - 1:
            self._emit(flags="F", seq=self._snd_una)
            return
        self._emit(payload=self._unacked[:MSS], seq=self._snd_una)

    # ------------------------------------------------------------------
    # Receive machinery

    def _on_frame(self, host: Host, frame: Ethernet) -> None:
        segment = frame.transport()
        if not isinstance(segment, Tcp) or segment.sport != self.peer_port:
            return
        ip = frame.ip()
        if ip is None or ip.src != self.peer_ip:
            return
        flags = segment.flags
        if "S" in flags and "A" in flags:
            self._on_syn_ack()
            return
        if "S" in flags:
            self._on_syn()
            return
        if "F" in flags:
            self._on_fin(segment)
            return
        if "A" in flags or segment.payload:
            self._on_data_or_ack(segment)

    def _on_syn(self) -> None:
        """Server side: a SYN arrived (listener dispatches to us)."""
        if self.state in (self.CLOSED, self.SYN_RECEIVED):
            if self.state == self.CLOSED:
                self._fluid_block()
            self.state = self.SYN_RECEIVED
            self._emit(flags="SA", seq=0, ack=False)

    def _on_syn_ack(self) -> None:
        if self.state == self.SYN_SENT:
            self._become_established()
            self._emit(flags="A", seq=0)
            self._pump()

    def _become_established(self) -> None:
        self.state = self.ESTABLISHED
        self.established_at = self.sim.now
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None
        self._rto = INITIAL_RTO_S
        if self.on_established is not None:
            self.on_established(self)

    def _on_data_or_ack(self, segment: Tcp) -> None:
        if self.state == self.SYN_RECEIVED:
            # The handshake ACK completes establishment server-side.
            self._become_established()
        ack_seq = getattr(segment, "ack_seq", None)
        if ack_seq is not None:
            self._process_ack(ack_seq)
        if segment.payload:
            self._process_data(segment.seq, segment.payload)

    def _process_ack(self, ack_seq: int) -> None:
        if ack_seq > self._snd_una:
            newly = ack_seq - self._snd_una
            self._unacked = self._unacked[newly:]
            self._snd_una = ack_seq
            self.bytes_acked += newly
            self._dup_acks = 0
            self._rto = INITIAL_RTO_S
            # AIMD growth.
            if self.cwnd < self.ssthresh:
                self.cwnd += min(newly, MSS)  # slow start
            else:
                self.cwnd += MSS * MSS // self.cwnd  # congestion avoidance
            if self.unacked_bytes == 0 and self._rto_timer is not None:
                self._rto_timer.cancel()
                self._rto_timer = None
            elif self.unacked_bytes > 0:
                self._arm_rto()
            self._pump()
        elif ack_seq == self._snd_una and self.unacked_bytes > 0:
            self._dup_acks += 1
            if self._dup_acks == DUP_ACK_THRESHOLD:
                # Fast retransmit + multiplicative decrease.
                self._retransmit_head()
                self.ssthresh = max(2 * MSS, self.cwnd // 2)
                self.cwnd = self.ssthresh
                self._dup_acks = 0

    def _process_data(self, seq: int, payload: bytes) -> None:
        if seq > self._rcv_nxt:
            self._out_of_order[seq] = payload
            self._emit(flags="A", seq=self._snd_nxt)  # dup ACK
            return
        if seq + len(payload) <= self._rcv_nxt:
            self._emit(flags="A", seq=self._snd_nxt)  # stale retransmit
            return
        # Deliver the new part, then any queued continuation.
        fresh = payload[self._rcv_nxt - seq:]
        self._deliver(fresh)
        while self._rcv_nxt in self._out_of_order:
            self._deliver(self._out_of_order.pop(self._rcv_nxt))
        self._emit(flags="A", seq=self._snd_nxt)

    def _deliver(self, data: bytes) -> None:
        self._rcv_nxt += len(data)
        self.bytes_received += len(data)
        if self.on_receive is not None:
            self.on_receive(data)

    def _on_fin(self, segment: Tcp) -> None:
        ack_seq = getattr(segment, "ack_seq", None)
        if ack_seq is not None:
            self._process_ack(ack_seq)
        if self.state == self.FIN_SENT:
            self._teardown()
            return
        # Passive close: ACK the FIN and close.
        self._rcv_nxt = segment.seq + 1
        self._emit(flags="FA", seq=self._snd_nxt)
        self._teardown()

    def _teardown(self) -> None:
        if self.state == self.CLOSED:
            return
        self.state = self.CLOSED
        self._fluid_unblock()
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None
        if self.on_close is not None:
            self.on_close(self)

    def _fluid_block(self) -> None:
        """TCP's RTO/ack timing is stateful per packet: a live
        connection pins the whole simulation at packet fidelity."""
        fluid = getattr(self.host.sim, "fluid", None)
        if fluid is not None:
            fluid.tcp_opened(self)

    def _fluid_unblock(self) -> None:
        fluid = getattr(self.host.sim, "fluid", None)
        if fluid is not None:
            fluid.tcp_closed(self)


class TcpListener:
    """A passive endpoint accepting connections on one port."""

    def __init__(
        self,
        host: Host,
        port: int,
        on_connection: Optional[Callable[[TcpConnection], None]] = None,
        on_receive: Optional[Callable[[TcpConnection, bytes], None]] = None,
    ):
        self.host = host
        self.port = port
        self.on_connection = on_connection
        self.on_receive = on_receive
        self.connections: Dict[tuple, TcpConnection] = {}
        host.on_app(IP_PROTO_TCP, port, self._dispatch)

    def _dispatch(self, host: Host, frame: Ethernet) -> None:
        ip = frame.ip()
        segment = frame.transport()
        if ip is None or not isinstance(segment, Tcp):
            return
        key = (ip.src, segment.sport)
        conn = self.connections.get(key)
        if conn is None:
            if "S" not in segment.flags or "A" in segment.flags:
                return  # no connection and not a SYN: ignore
            conn = TcpConnection(
                self.host, ip.src,
                local_port=self.port, peer_port=segment.sport,
                register=False,
            )
            if self.on_receive is not None:
                handler = self.on_receive

                def bound(data: bytes, conn=conn) -> None:
                    handler(conn, data)

                conn.on_receive = bound
            self.connections[key] = conn
            if self.on_connection is not None:
                conn.on_established = lambda c: self.on_connection(c)
        conn._on_frame(host, frame)

    def close(self) -> None:
        for conn in list(self.connections.values()):
            conn.close()
