"""A fat-tree Legacy-Switching fabric (Section III.B).

For networks "of large scale, e.g., with tens of thousands of hosts",
the paper prescribes a scalable layer-2 fabric for the
Legacy-Switching layer and names PortLand and VL2 as candidates.  This
module builds the classic k-ary fat tree those systems run on --
(k/2)^2 core switches, k pods of k/2 aggregation + k/2 edge switches --
out of the ECMP-capable legacy switches, so the Access-Switching layer
gets the "uniform high-bandwidth networking" property the paper asks
for while remaining completely transparent to LiveSec.

Loop handling: within the fat tree, the ECMP switches keep parallel
uplinks active (hash-spread per flow) and pin broadcasts to a single
deterministic tree (lowest-port member of each group + STP for the
rest), which is the moral equivalent of PortLand's fabric-manager-
installed multipath with a broadcast-free core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.net.ecmp import EcmpLegacySwitch
from repro.net.node import connect
from repro.net.simulator import Simulator

GIGABIT = 1e9
FABRIC_DELAY_S = 20e-6


@dataclass
class FatTree:
    """A built k-ary fat tree of legacy switches."""

    k: int
    core: List[EcmpLegacySwitch] = field(default_factory=list)
    aggregation: List[List[EcmpLegacySwitch]] = field(default_factory=list)
    edge: List[List[EcmpLegacySwitch]] = field(default_factory=list)

    def all_switches(self) -> List[EcmpLegacySwitch]:
        switches = list(self.core)
        for pod in range(self.k):
            switches.extend(self.aggregation[pod])
            switches.extend(self.edge[pod])
        return switches

    def edge_switches(self) -> List[EcmpLegacySwitch]:
        """The attachment points for AS switches (one list, pod order)."""
        return [switch for pod in self.edge for switch in pod]

    @property
    def host_ports_per_edge(self) -> int:
        return self.k // 2


def build_fat_tree(
    sim: Simulator,
    k: int = 4,
    link_bandwidth_bps: float = GIGABIT,
    bridge_id_base: int = 1000,
) -> FatTree:
    """Build a k-ary fat tree (k even, >= 2).

    Wiring follows the standard construction: edge switch ``e`` in a
    pod uplinks to every aggregation switch of its pod; aggregation
    switch ``a`` of each pod uplinks to core group ``a`` (the cores
    ``a*(k/2) .. a*(k/2)+k/2-1``).  All inter-switch parallelism is
    declared as ECMP port groups per (switch, destination-tier) pair.
    """
    if k < 2 or k % 2:
        raise ValueError(f"k must be even and >= 2 (got {k})")
    half = k // 2
    tree = FatTree(k=k)
    next_bridge = bridge_id_base

    def new_switch(name: str) -> EcmpLegacySwitch:
        nonlocal next_bridge
        switch = EcmpLegacySwitch(sim, name, bridge_id=next_bridge)
        next_bridge += 1
        return switch

    tree.core = [new_switch(f"core{i + 1}") for i in range(half * half)]
    for pod in range(k):
        tree.aggregation.append(
            [new_switch(f"agg{pod + 1}_{i + 1}") for i in range(half)]
        )
        tree.edge.append(
            [new_switch(f"edge{pod + 1}_{i + 1}") for i in range(half)]
        )

    for pod in range(k):
        # Edge <-> aggregation: full bipartite within the pod.
        for edge_switch in tree.edge[pod]:
            uplink_ports = []
            for agg_switch in tree.aggregation[pod]:
                edge_port = edge_switch.next_free_port().number
                agg_port = agg_switch.next_free_port().number
                connect(sim, edge_switch, agg_switch,
                        bandwidth_bps=link_bandwidth_bps,
                        delay_s=FABRIC_DELAY_S,
                        port_a=edge_port, port_b=agg_port)
                uplink_ports.append(edge_port)
            if len(uplink_ports) >= 2:
                edge_switch.add_ecmp_group(uplink_ports)
        # Aggregation <-> core.
        for agg_index, agg_switch in enumerate(tree.aggregation[pod]):
            uplink_ports = []
            for core_offset in range(half):
                core_switch = tree.core[agg_index * half + core_offset]
                agg_port = agg_switch.next_free_port().number
                core_port = core_switch.next_free_port().number
                connect(sim, agg_switch, core_switch,
                        bandwidth_bps=link_bandwidth_bps,
                        delay_s=FABRIC_DELAY_S,
                        port_a=agg_port, port_b=core_port)
                uplink_ports.append(agg_port)
            if len(uplink_ports) >= 2:
                agg_switch.add_ecmp_group(uplink_ports)
    return tree


def fat_tree_topology(
    sim: Simulator,
    k: int = 4,
    hosts_per_edge: int = 1,
    access_bandwidth_bps: float = 100e6,
    with_gateway: bool = True,
):
    """A LiveSec topology over a fat-tree legacy fabric.

    One AS switch (OvS) hangs off every edge switch, with
    ``hosts_per_edge`` user hosts behind each; the gateway attaches to
    the first AS switch.  Returns a
    :class:`repro.net.topologies.Topology` (the fat tree's switches are
    exposed through ``topology.legacy``).
    """
    from repro.net.topologies import GIGABIT as TOPO_GIGABIT, Topology

    tree = build_fat_tree(sim, k=k)
    topo = Topology(sim)
    topo.legacy.extend(tree.all_switches())
    for index, edge_switch in enumerate(tree.edge_switches()):
        ovs = topo.add_as_switch(f"ovs{index + 1}", dpid=index + 1)
        connect(sim, ovs, edge_switch, bandwidth_bps=TOPO_GIGABIT,
                delay_s=FABRIC_DELAY_S)
        for h in range(hosts_per_edge):
            topo.add_host(
                f"h{index + 1}_{h + 1}", ovs,
                bandwidth_bps=access_bandwidth_bps,
            )
    if with_gateway:
        topo.gateway = topo.add_host(
            "gateway", topo.as_switches[0], bandwidth_bps=TOPO_GIGABIT,
            ip="10.255.255.254",
        )
    return topo
