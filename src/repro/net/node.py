"""Node and port abstractions.

Every device in the simulation -- host, legacy switch, OpenFlow switch,
Wi-Fi AP, service element -- is a :class:`Node` with numbered
:class:`Port` objects.  A :class:`repro.net.links.Link` attaches two
ports; sending out a port hands the frame to the link, which models
serialization and propagation before delivering it to the peer node's
:meth:`Node.receive`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, TYPE_CHECKING

from repro.net.packet import Ethernet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.links import Link
    from repro.net.simulator import Simulator


class Port:
    """One attachment point of a node.  At most one link per port."""

    def __init__(self, node: "Node", number: int):
        self.node = node
        self.number = number
        self.link: Optional["Link"] = None
        self.enabled = True
        # Counters maintained by the link layer.
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_drops = 0

    @property
    def is_attached(self) -> bool:
        return self.link is not None

    def peer(self) -> Optional["Port"]:
        """The port at the far end of the attached link, if any."""
        if self.link is None:
            return None
        return self.link.other_end(self)

    def __repr__(self) -> str:
        return f"<Port {self.node.name}:{self.number}>"


class Node:
    """Base class for all simulated devices."""

    def __init__(self, sim: "Simulator", name: str):
        self.sim = sim
        self.name = name
        self.ports: Dict[int, Port] = {}

    def port(self, number: int) -> Port:
        """The port with the given number, creating it on first use."""
        if number not in self.ports:
            self.ports[number] = Port(self, number)
        return self.ports[number]

    def next_free_port(self) -> Port:
        """Allocate the lowest-numbered port without a link."""
        number = 1
        while number in self.ports and self.ports[number].is_attached:
            number += 1
        return self.port(number)

    def attached_ports(self) -> Iterable[Port]:
        """Ports that have a link, in port-number order."""
        return [p for _, p in sorted(self.ports.items()) if p.is_attached]

    def send(self, frame: Ethernet, out_port: int) -> bool:
        """Transmit ``frame`` from ``out_port``.

        Returns False when the port has no link or is disabled (the
        frame is silently discarded, as real hardware would).
        """
        port = self.ports.get(out_port)
        if port is None or port.link is None or not port.enabled:
            return False
        port.link.transmit(port, frame)
        return True

    def flood(self, frame: Ethernet, in_port: Optional[int] = None) -> int:
        """Send a copy of ``frame`` out of every attached port except
        ``in_port``.  Returns the number of copies sent."""
        sent = 0
        for port in self.attached_ports():
            if in_port is not None and port.number == in_port:
                continue
            if not port.enabled:
                continue
            self.send(frame.clone(), port.number)
            sent += 1
        return sent

    def receive(self, frame: Ethernet, in_port: int) -> None:
        """Handle a frame arriving on ``in_port``.  Subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


def connect(
    sim: "Simulator",
    node_a: Node,
    node_b: Node,
    bandwidth_bps: float = 1e9,
    delay_s: float = 50e-6,
    queue_packets: int = 1000,
    port_a: Optional[int] = None,
    port_b: Optional[int] = None,
) -> "Link":
    """Wire two nodes together with a duplex link and return it.

    Ports are auto-allocated unless given explicitly.  The defaults
    model a Gigabit Ethernet cable with 50 microseconds of one-way
    latency, matching the building fabric of the deployment.
    """
    from repro.net.links import Link

    end_a = node_a.port(port_a) if port_a is not None else node_a.next_free_port()
    end_b = node_b.port(port_b) if port_b is not None else node_b.next_free_port()
    if end_a.is_attached or end_b.is_attached:
        raise ValueError(f"port already wired: {end_a} or {end_b}")
    link = Link(sim, end_a, end_b, bandwidth_bps, delay_s, queue_packets)
    end_a.link = link
    end_b.link = link
    return link
