"""Packet-level discrete-event network simulator.

This package is the substrate the LiveSec reproduction runs on.  It
replaces the paper's physical testbed (Gigabit Ethernet fabric, Open
vSwitch servers, OpenWrt Wi-Fi APs) with a deterministic simulation:

* :mod:`repro.net.simulator` -- the discrete-event kernel,
* :mod:`repro.net.packet` -- Ethernet/ARP/IP/TCP/UDP/LLDP packet model,
* :mod:`repro.net.node` -- the port/node abstraction,
* :mod:`repro.net.links` -- capacity-limited duplex links with queues,
* :mod:`repro.net.host` -- end hosts with an ARP stack and flow sockets,
* :mod:`repro.net.legacy` -- legacy L2 learning switches with STP,
* :mod:`repro.net.wifi` -- the OF Wi-Fi access-point model,
* :mod:`repro.net.topologies` -- topology builders, including the
  FIT-building deployment of the paper's Figure 6.
"""

from repro.net.simulator import Simulator
from repro.net.packet import (
    Arp,
    Dhcp,
    Ethernet,
    Icmp,
    IPv4,
    Lldp,
    Tcp,
    Udp,
    FlowNineTuple,
    extract_nine_tuple,
)
from repro.net.node import Node, Port
from repro.net.links import Link
from repro.net.host import Host
from repro.net.legacy import LegacySwitch
from repro.net.wifi import WifiAccessPoint

__all__ = [
    "Simulator",
    "Arp",
    "Dhcp",
    "Ethernet",
    "Icmp",
    "IPv4",
    "Lldp",
    "Tcp",
    "Udp",
    "FlowNineTuple",
    "extract_nine_tuple",
    "Node",
    "Port",
    "Link",
    "Host",
    "LegacySwitch",
    "WifiAccessPoint",
]
