"""Topology builders.

These assemble the *physical* substrate -- legacy switches, AS switches
(OvS), OF Wi-Fi APs, hosts, gateway -- and record where every host
attaches.  Wiring the LiveSec controller, secure channels and service
elements on top is done by :mod:`repro.core.deployment`, keeping this
package free of control-plane dependencies.

``fit_building`` reproduces the deployment of the paper's Section V.A
and Figure 6: a redundant Gigabit core of two 24-port legacy switches,
10 OvS in two wiring closets, 20 OF Wi-Fi APs in meeting rooms, wired
and wireless users, and a gateway to the Internet, with ≥100 Mbps
access per user.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.host import Host
from repro.net.legacy import LegacySwitch
from repro.net.node import Node, connect
from repro.net.packet import ip_address, mac_address
from repro.net.simulator import Simulator
from repro.net.wifi import WifiAccessPoint
from repro.openflow.switch import OpenFlowSwitch

GIGABIT = 1e9
FAST_ETHERNET = 100e6
CORE_LINK_DELAY_S = 50e-6
ACCESS_LINK_DELAY_S = 20e-6


class AddressAllocator:
    """Deterministic MAC/IP allocation for hosts and switches.

    Host indices start at 1; switch chassis MACs use a disjoint high
    range so a dpid never collides with a host MAC.
    """

    SWITCH_BASE = 0x0200_0000_0000

    def __init__(self) -> None:
        self._next_host = 1

    def host_addresses(self) -> Tuple[str, str]:
        index = self._next_host
        self._next_host += 1
        return mac_address(index), ip_address(index)


@dataclass
class Attachment:
    """Where a host is plugged in: which AS switch, which port."""

    host: Host
    switch: Node
    switch_port: int


@dataclass
class Topology:
    """The physical network: nodes, plus the host attachment map."""

    sim: Simulator
    legacy: List[LegacySwitch] = field(default_factory=list)
    as_switches: List[OpenFlowSwitch] = field(default_factory=list)
    aps: List[WifiAccessPoint] = field(default_factory=list)
    hosts: List[Host] = field(default_factory=list)
    gateway: Optional[Host] = None
    attachments: Dict[str, Attachment] = field(default_factory=dict)
    allocator: AddressAllocator = field(default_factory=AddressAllocator)
    _dpids: Dict[str, int] = field(default_factory=dict)

    def all_openflow_switches(self) -> List[OpenFlowSwitch]:
        """Every OpenFlow datapath: AS switches plus Wi-Fi APs."""
        return list(self.as_switches) + list(self.aps)

    def host_by_name(self, name: str) -> Host:
        for host in self.hosts:
            if host.name == name:
                return host
        raise KeyError(name)

    # ------------------------------------------------------------------
    # Construction helpers

    def add_legacy_switch(self, name: str, bridge_id: int) -> LegacySwitch:
        switch = LegacySwitch(self.sim, name, bridge_id)
        self.legacy.append(switch)
        return switch

    def add_as_switch(self, name: str, dpid: int,
                      forwarding_delay_s: float = 25e-6) -> OpenFlowSwitch:
        if dpid in self._dpids.values():
            raise ValueError(f"duplicate dpid {dpid}")
        switch = OpenFlowSwitch(self.sim, name, dpid,
                                forwarding_delay_s=forwarding_delay_s)
        self.as_switches.append(switch)
        self._dpids[name] = dpid
        return switch

    def add_ap(self, name: str, dpid: int,
               air_bandwidth_bps: float = 43e6) -> WifiAccessPoint:
        if dpid in self._dpids.values():
            raise ValueError(f"duplicate dpid {dpid}")
        ap = WifiAccessPoint(self.sim, name, dpid,
                             air_bandwidth_bps=air_bandwidth_bps)
        self.aps.append(ap)
        self._dpids[name] = dpid
        return ap

    def add_host(
        self,
        name: str,
        attach_to: Node,
        bandwidth_bps: float = FAST_ETHERNET,
        wireless: bool = False,
        mac: Optional[str] = None,
        ip: Optional[str] = None,
    ) -> Host:
        """Create a host and wire it to an AS switch or AP."""
        if mac is None or ip is None:
            auto_mac, auto_ip = self.allocator.host_addresses()
            mac = mac or auto_mac
            ip = ip or auto_ip
        host = Host(self.sim, name, mac, ip, wireless=wireless)
        if isinstance(attach_to, WifiAccessPoint) and wireless:
            link = attach_to.attach_station(host)
            switch_port = link.end_a.number
        else:
            switch_port = attach_to.next_free_port().number
            host_port = host.next_free_port().number
            connect(
                self.sim,
                attach_to,
                host,
                bandwidth_bps=bandwidth_bps,
                delay_s=ACCESS_LINK_DELAY_S,
                port_a=switch_port,
                port_b=host_port,
            )
        self.hosts.append(host)
        self.attachments[host.name] = Attachment(host, attach_to, switch_port)
        return host

    def wire_core(self, as_switch: Node, core: LegacySwitch,
                  bandwidth_bps: float = GIGABIT) -> None:
        """Uplink an AS switch (or AP) into the legacy core."""
        connect(self.sim, as_switch, core, bandwidth_bps=bandwidth_bps,
                delay_s=CORE_LINK_DELAY_S)

    def move_host(
        self,
        name: str,
        new_switch: Node,
        bandwidth_bps: float = FAST_ETHERNET,
    ) -> Host:
        """Physically re-attach a host (VM migration, Section III.D.1):
        the old access link is unplugged at both ends and a fresh one
        wired to ``new_switch``.  The host must ``announce()`` from the
        new location before the control plane notices the move."""
        attachment = self.attachments[name]
        host = attachment.host
        old_port = attachment.switch.ports[attachment.switch_port]
        host_port = old_port.peer()
        old_port.link = None
        if host_port is not None:
            host_port.link = None
        switch_port = new_switch.next_free_port().number
        connect(
            self.sim,
            new_switch,
            host,
            bandwidth_bps=bandwidth_bps,
            delay_s=ACCESS_LINK_DELAY_S,
            port_a=switch_port,
            port_b=(host_port.number if host_port is not None
                    else host.next_free_port().number),
        )
        self.attachments[name] = Attachment(host, new_switch, switch_port)
        return host


# ---------------------------------------------------------------------------
# Canned topologies


def linear(
    sim: Simulator,
    num_as: int = 2,
    hosts_per_as: int = 1,
    access_bandwidth_bps: float = FAST_ETHERNET,
    core_bandwidth_bps: float = GIGABIT,
    gateway_bandwidth_bps: float = GIGABIT,
    with_gateway: bool = True,
) -> Topology:
    """The smallest interesting LiveSec network: one legacy core switch,
    ``num_as`` OvS, hosts behind each, and an optional gateway on the
    last OvS.  Used heavily by the tests.

    Throughput benches raise ``core_bandwidth_bps`` and
    ``gateway_bandwidth_bps`` so element capacity -- not the fabric --
    is the quantity under test.
    """
    topo = Topology(sim)
    core = topo.add_legacy_switch("core", bridge_id=1)
    for index in range(num_as):
        ovs = topo.add_as_switch(f"ovs{index + 1}", dpid=index + 1)
        topo.wire_core(ovs, core, bandwidth_bps=core_bandwidth_bps)
        for h in range(hosts_per_as):
            topo.add_host(
                f"h{index + 1}_{h + 1}", ovs,
                bandwidth_bps=access_bandwidth_bps,
            )
    if with_gateway:
        gw_switch = topo.as_switches[-1]
        topo.gateway = topo.add_host(
            "gateway", gw_switch, bandwidth_bps=gateway_bandwidth_bps,
            ip="10.255.255.254",
        )
    return topo


def star(
    sim: Simulator,
    num_as: int = 4,
    hosts_per_as: int = 2,
    redundant_core: bool = False,
) -> Topology:
    """A star of OvS around one (or two, redundant) legacy cores.

    With ``redundant_core`` every OvS dual-homes into both cores and
    the cores interconnect, exercising STP loop avoidance exactly as
    the paper's Section III.C.1 argues is transparent to LiveSec.
    """
    topo = Topology(sim)
    core_a = topo.add_legacy_switch("core-a", bridge_id=1)
    cores = [core_a]
    if redundant_core:
        core_b = topo.add_legacy_switch("core-b", bridge_id=2)
        connect(sim, core_a, core_b, bandwidth_bps=GIGABIT,
                delay_s=CORE_LINK_DELAY_S)
        cores.append(core_b)
    for index in range(num_as):
        ovs = topo.add_as_switch(f"ovs{index + 1}", dpid=index + 1)
        for core in cores:
            topo.wire_core(ovs, core)
        for h in range(hosts_per_as):
            topo.add_host(f"h{index + 1}_{h + 1}", ovs)
    topo.gateway = topo.add_host(
        "gateway", topo.as_switches[0], bandwidth_bps=GIGABIT,
        ip="10.255.255.254",
    )
    return topo


def fit_building(
    sim: Simulator,
    num_ovs: int = 10,
    num_aps: int = 20,
    wired_users: int = 20,
    wireless_users: int = 30,
    user_bandwidth_bps: float = FAST_ETHERNET,
    redundant_core: bool = True,
) -> Topology:
    """The FIT-building deployment of Section V.A / Figure 6.

    10 OvS in two wiring closets, 20 OF Wi-Fi APs in meeting rooms,
    ~50 users, a redundant two-switch Gigabit core, and the building
    gateway.  Service elements (200 VMs, 20 per OvS) are attached by
    :func:`repro.core.deployment.build_livesec_network`.
    """
    topo = Topology(sim)
    core_a = topo.add_legacy_switch("core-a", bridge_id=1)
    cores = [core_a]
    if redundant_core:
        core_b = topo.add_legacy_switch("core-b", bridge_id=2)
        connect(sim, core_a, core_b, bandwidth_bps=2 * GIGABIT,
                delay_s=CORE_LINK_DELAY_S)
        cores.append(core_b)

    for index in range(num_ovs):
        ovs = topo.add_as_switch(f"ovs{index + 1}", dpid=index + 1)
        # "All 10 OpenFlow-enabled switches are both connected to the
        # Gigabit backbone ... by two 24-port Gigabit Ethernet switches".
        for core in cores:
            topo.wire_core(ovs, core)

    for index in range(num_aps):
        ap = topo.add_ap(f"ap{index + 1}", dpid=100 + index + 1)
        topo.wire_core(ap, cores[index % len(cores)], bandwidth_bps=FAST_ETHERNET)

    for index in range(wired_users):
        ovs = topo.as_switches[index % max(1, num_ovs)]
        topo.add_host(f"wired{index + 1}", ovs,
                      bandwidth_bps=user_bandwidth_bps)

    for index in range(wireless_users):
        ap = topo.aps[index % max(1, num_aps)]
        topo.add_host(f"wifi{index + 1}", ap, wireless=True)

    topo.gateway = topo.add_host(
        "gateway", topo.as_switches[0], bandwidth_bps=GIGABIT,
        ip="10.255.255.254",
    )
    return topo
