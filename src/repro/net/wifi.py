"""OF Wi-Fi access points (the deployment's Pantou/OpenWrt APs).

An AP is an OpenFlow switch (it participates in the Access-Switching
layer exactly like an OvS, Section III.C) whose station-facing ports
share a single radio.  The shared medium is what limits a Pantou AP to
the ~43 Mbps the paper measures (Section V.B.1): every frame to or
from any station serializes through one :class:`AirMedium`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.links import Link
from repro.openflow.switch import OpenFlowSwitch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.host import Host
    from repro.net.simulator import Simulator

PANTOU_AIR_BPS = 43e6
WIFI_ONE_WAY_DELAY_S = 1e-3


class AirMedium:
    """The shared radio: one transmitter at a time, fixed capacity."""

    def __init__(self, bandwidth_bps: float = PANTOU_AIR_BPS):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive (got {bandwidth_bps})")
        self.bandwidth_bps = bandwidth_bps
        self.next_free = 0.0
        self.busy_time = 0.0
        self.frames = 0

    def reserve(self, now: float, size_bytes: int) -> float:
        """Reserve airtime for a frame; returns the completion time."""
        tx_time = size_bytes * 8.0 / self.bandwidth_bps
        start = max(now, self.next_free)
        done = start + tx_time
        self.next_free = done
        self.busy_time += tx_time
        self.frames += 1
        return done


class WirelessLink(Link):
    """A station<->AP link whose serialization goes through the air.

    The per-direction queue bound still applies, but transmission
    timing is governed by the shared :class:`AirMedium` rather than a
    per-direction channel, so stations contend with each other and
    with the AP's own downlink traffic.
    """

    def __init__(self, sim, end_a, end_b, medium: AirMedium,
                 delay_s: float = WIFI_ONE_WAY_DELAY_S,
                 queue_packets: int = 200):
        super().__init__(sim, end_a, end_b, medium.bandwidth_bps, delay_s,
                         queue_packets)
        self.medium = medium

    def transmit(self, from_port, frame) -> bool:
        if not self.up:
            from_port.tx_drops += 1
            return False
        direction = self._directions[id(from_port)]
        now = self.sim.now
        # Same drop-tail semantics as the wired link: a buffer slot is
        # held until the frame's airtime completes, not until it has
        # also crossed the propagation delay.
        if direction.occupancy(now) >= self.queue_packets:
            direction.dropped += 1
            from_port.tx_drops += 1
            return False
        done = self.medium.reserve(now, frame.size)
        direction.next_free = done
        direction.pending_done.append(done)
        direction.busy_time += frame.size * 8.0 / self.medium.bandwidth_bps
        direction.tx_packets += 1
        direction.tx_bytes += frame.size
        from_port.tx_packets += 1
        from_port.tx_bytes += frame.size
        to_port = self.other_end(from_port)
        self.sim.schedule_at(
            done + self.delay_s, self._deliver, frame, from_port, to_port
        )
        return True

    def fluid_plan(self, from_port, packet_size: int, arrival_offset_s: float):
        # Same wired-counter plan, plus the shared radio: fluid_apply
        # then accounts airtime and advances the radio's serialization
        # clock alongside the per-direction one.
        plan = super().fluid_plan(from_port, packet_size, arrival_offset_s)
        plan.medium = self.medium
        return plan


class WifiAccessPoint(OpenFlowSwitch):
    """An OpenFlow-enabled Wi-Fi AP with a shared-capacity radio."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        dpid: int,
        air_bandwidth_bps: float = PANTOU_AIR_BPS,
        forwarding_delay_s: float = 100e-6,
    ):
        # Pantou runs on much weaker hardware than a server OvS, hence
        # the higher per-frame forwarding cost.
        super().__init__(sim, name, dpid, forwarding_delay_s=forwarding_delay_s)
        self.medium = AirMedium(air_bandwidth_bps)
        self.stations: list = []

    def attach_station(self, station: "Host") -> WirelessLink:
        """Associate a wireless host with this AP."""
        ap_port = self.next_free_port()
        station_port = station.next_free_port()
        if ap_port.is_attached or station_port.is_attached:
            raise ValueError("port already wired")
        link = WirelessLink(self.sim, ap_port, station_port, self.medium)
        ap_port.link = link
        station_port.link = link
        self.stations.append(station)
        return link
