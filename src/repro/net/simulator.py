"""Discrete-event simulation kernel.

Everything in the reproduction -- link serialization, switch lookups,
controller round trips, service-element processing -- is driven by a
single :class:`Simulator` instance.  The kernel is intentionally small:
a time-ordered event heap with stable FIFO ordering for simultaneous
events, cancellable handles, and helpers for periodic processes.

Determinism matters for reproducibility, so ties are broken by an
insertion sequence number and no wall-clock time ever leaks in.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        # The simulator whose heap still holds this handle; cleared when
        # the event is popped (fired or reaped) so late cancels of dead
        # handles never skew the live-event accounting.
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._note_cancelled()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<EventHandle t={self.time:.6f} {name} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    # Compact the heap when cancelled handles are the majority; below
    # this size the O(n) sweep costs more than it saves.
    COMPACT_MIN_QUEUE = 64

    def __init__(self) -> None:
        self._queue: List[EventHandle] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._cancelled_queued = 0
        self.events_processed = 0
        self.heap_compactions = 0
        # Attached fluid fast-forward region (see repro.net.fluid); the
        # run loop consults it before every event pop.
        self.fluid = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        handle = EventHandle(time, next(self._seq), callback, args)
        handle._sim = self
        heapq.heappush(self._queue, handle)
        return handle

    def attach_fluid(self, region) -> None:
        """Attach a fluid fast-forward region (one per simulator).

        The run loop calls ``region.advance_to(horizon)`` before every
        event, so analytic state is always caught up to ``now`` when a
        callback reads counters.
        """
        if self.fluid is not None and self.fluid is not region:
            raise RuntimeError("a fluid region is already attached")
        self.fluid = region

    # ------------------------------------------------------------------
    # Cancelled-handle accounting

    def _note_cancelled(self) -> None:
        self._cancelled_queued += 1
        if (self._cancelled_queued * 2 > len(self._queue)
                and len(self._queue) >= self.COMPACT_MIN_QUEUE):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled handles and re-heapify.

        Without this, cancel/reschedule churn (TCP RTO timers, flow
        pacing) grows the heap without bound until the dead handles
        surface naturally.
        """
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_queued = 0
        self.heap_compactions += 1

    def every(
        self,
        interval: float,
        callback: Callable,
        *args: Any,
        start: Optional[float] = None,
        jitter: float = 0.0,
    ) -> EventHandle:
        """Run ``callback(*args)`` periodically.

        The returned handle cancels the *next* occurrence (and thereby
        the whole series), and supports ``set_interval()`` to retune
        the period of a live series (the next occurrence is rescheduled
        to one new interval from now).  ``start`` defaults to one
        interval from now.  ``jitter`` adds a fixed phase offset,
        useful to avoid thundering herds of simultaneous periodic
        events.

        ``jitter`` only applies to the computed default start; passing
        it together with an explicit ``start`` raises ``ValueError``
        (it used to be silently ignored) -- fold the offset into
        ``start`` instead.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive (got {interval})")
        if start is not None and jitter != 0.0:
            raise ValueError(
                "jitter is ignored when an explicit start is given;"
                " fold the phase offset into start instead"
            )
        first = (self._now + interval + jitter) if start is None else start
        series = _PeriodicSeries(self, interval, callback, args)
        series.handle = self.schedule_at(first, series.fire)
        return series.handle_proxy()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events until the queue drains, ``until`` is reached,
        or ``max_events`` have fired.

        When a fluid region is attached and has suspended flows, their
        analytic state is advanced to each event's timestamp before the
        event fires (and to ``until`` before returning), so every
        callback observes counters consistent with packet-level time.
        """
        self._running = True
        processed = 0
        try:
            while self._queue:
                if max_events is not None and processed >= max_events:
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    self._cancelled_queued -= 1
                    continue
                fluid = self.fluid
                if fluid is not None and fluid.active:
                    horizon = head.time
                    if until is not None and until < horizon:
                        horizon = until
                    if fluid.advance_to(horizon):
                        # A suspended flow re-materialized before the
                        # head event: re-evaluate heap order.
                        continue
                if until is not None and head.time > until:
                    self._now = until
                    break
                event = heapq.heappop(self._queue)
                event._sim = None
                self._now = event.time
                event.callback(*event.args)
                processed += 1
                self.events_processed += 1
            else:
                if until is not None and until > self._now:
                    fluid = self.fluid
                    if fluid is not None and fluid.active:
                        fluid.advance_to(until)
                    self._now = until
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1): a
        live counter tracks cancellations instead of scanning)."""
        return len(self._queue) - self._cancelled_queued

    def attach_metrics(self, registry) -> None:
        """Publish kernel health through an obs registry (pull-mode
        gauges; the event loop itself is untouched)."""
        registry.gauge(
            "sim.now_s", "Current simulated time",
        ).set_function(lambda: self._now)
        registry.gauge(
            "sim.events_processed", "Events fired since construction",
        ).set_function(lambda: self.events_processed)
        registry.gauge(
            "sim.pending_events", "Live events still queued",
        ).set_function(self.pending)
        registry.gauge(
            "sim.heap_compactions",
            "Times the event heap was compacted of cancelled handles",
        ).set_function(lambda: self.heap_compactions)

    def __repr__(self) -> str:
        return f"<Simulator t={self._now:.6f} pending={self.pending()}>"


class _PeriodicSeries:
    """Book-keeping for :meth:`Simulator.every`."""

    def __init__(self, sim: Simulator, interval: float, callback: Callable, args: tuple):
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.args = args
        self.handle: Optional[EventHandle] = None
        self.cancelled = False

    def fire(self) -> None:
        if self.cancelled:
            return
        self.callback(*self.args)
        if not self.cancelled:
            self.handle = self.sim.schedule(self.interval, self.fire)

    def handle_proxy(self) -> EventHandle:
        """A handle whose ``cancel`` stops the whole periodic series and
        whose ``set_interval`` retunes a live series' period."""
        series = self

        class _SeriesHandle(EventHandle):
            __slots__ = ()

            def cancel(self) -> None:  # noqa: D102 - see EventHandle
                series.cancelled = True
                if series.handle is not None:
                    series.handle.cancel()
                self.cancelled = True

            def set_interval(self, interval: float) -> None:
                """Change the series' period; the next occurrence moves
                to one new interval from now (fault injection uses this
                to stretch an element's report cadence mid-run)."""
                if interval <= 0:
                    raise ValueError(
                        f"interval must be positive (got {interval})"
                    )
                series.interval = interval
                if series.cancelled:
                    return
                if series.handle is not None:
                    series.handle.cancel()
                series.handle = series.sim.schedule(interval, series.fire)

        assert self.handle is not None
        proxy = _SeriesHandle(self.handle.time, self.handle.seq, self.fire, ())
        return proxy
