"""ECMP-capable legacy switching (Section III.C.1).

The paper notes that loop handling in the Legacy-Switching layer can
come from "the spanning tree protocol (STP) or ECMP": instead of
blocking redundant links, Equal-Cost Multi-Path keeps parallel links
active and spreads flows across them by hashing the flow identity.

:class:`EcmpLegacySwitch` extends the learning switch with *port
groups*: parallel ports declared equivalent (same peer or equal-cost
paths to it).  Known-unicast frames pick a group member by flow hash
-- deterministic per flow, so packet order within a flow is preserved
-- while broadcast/flooded frames use only the group's lowest port
(the "broadcast tree"), which keeps redundant parallel links from
duplicating broadcasts.

This models the common enterprise case of aggregated/parallel trunks
between two switches.  For redundant paths through *different*
switches, plain STP (the default legacy switch) remains the right
model, exactly as the paper's deployment used.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Sequence, Tuple

from repro.net import packet as pkt
from repro.net.legacy import LegacySwitch
from repro.net.packet import Ethernet, extract_nine_tuple


class EcmpLegacySwitch(LegacySwitch):
    """A learning switch with ECMP port groups instead of blocking.

    STP stays available for the non-grouped ports; grouped ports are
    expected to be parallel links where STP would otherwise block all
    but one.
    """

    def __init__(self, sim, name: str, bridge_id: int,
                 stp_enabled: bool = False, flood_lldp: bool = True):
        super().__init__(sim, name, bridge_id, stp_enabled=stp_enabled,
                         flood_lldp=flood_lldp)
        # port -> tuple of group member ports (every member maps to the
        # same tuple).
        self._groups: Dict[int, Tuple[int, ...]] = {}
        self.ecmp_balanced = 0

    # ------------------------------------------------------------------
    # Configuration

    def add_ecmp_group(self, ports: Sequence[int]) -> None:
        """Declare a set of ports as equal-cost parallel links."""
        members = tuple(sorted(set(ports)))
        if len(members) < 2:
            raise ValueError(f"an ECMP group needs >= 2 ports, got {members}")
        for port in members:
            if port in self._groups:
                raise ValueError(f"port {port} already in an ECMP group")
        for port in members:
            self._groups[port] = members

    def group_of(self, port: int) -> Tuple[int, ...]:
        return self._groups.get(port, (port,))

    # ------------------------------------------------------------------
    # Forwarding overrides

    def receive(self, frame: Ethernet, in_port: int) -> None:
        # Frames arriving on any member of a group count as the same
        # logical port for learning (otherwise the MAC table flaps
        # between parallel links).
        canonical = self.group_of(in_port)[0]
        super().receive(frame, canonical if in_port in self._groups
                        else in_port)

    def send(self, frame: Ethernet, out_port: int) -> bool:
        group = self._groups.get(out_port)
        if group is None:
            return super().send(frame, out_port)
        if frame.is_broadcast or frame.ethertype == pkt.ETH_TYPE_LLDP:
            # Broadcast tree: exactly one member carries floods.
            return super().send(frame, group[0])
        chosen = self._pick_member(frame, group)
        if chosen != group[0]:
            self.ecmp_balanced += 1
        return super().send(frame, chosen)

    def peek_forward(self, frame: Ethernet, in_port: int):
        # Mirror receive()/send(): canonicalize the ingress group for
        # the MAC lookup, then resolve the stored port through its
        # group's flow hash -- still side-effect free.
        canonical = self.group_of(in_port)[0] if in_port in self._groups \
            else in_port
        out = super().peek_forward(frame, canonical)
        if out is None:
            return None
        group = self._groups.get(out)
        if group is None:
            return out
        return self._pick_member(frame, group)

    def _pick_member(self, frame: Ethernet, group: Tuple[int, ...]) -> int:
        nine = extract_nine_tuple(frame)
        key = "|".join(str(field) for field in nine).encode()
        return group[zlib.crc32(key) % len(group)]

    def _flood_forwarding(self, frame: Ethernet, in_port: int) -> None:
        # A group is ONE logical port for flooding: never flood back
        # out any member of the ingress group (that would loop through
        # the parallel links), and emit at most one copy per group.
        skip = set(self.group_of(in_port))
        emitted_groups = set()
        for port in self.attached_ports():
            if port.number in skip:
                continue
            group = self.group_of(port.number)
            if group in emitted_groups:
                continue
            emitted_groups.add(group)
            if not self.port_is_forwarding(port.number):
                continue
            self.send(frame.clone(), port.number)

    # ------------------------------------------------------------------
    # Introspection

    def group_port_loads(self, group_ports: Iterable[int]) -> Dict[int, int]:
        """tx_bytes per member of a group (for balance inspection)."""
        return {
            port: self.ports[port].tx_bytes
            for port in group_ports
            if port in self.ports
        }
