"""The Legacy-Switching layer: traditional Ethernet switches.

Per Section III.B of the paper, the legacy layer is plain layer-2
switching: MAC learning, flooding of unknown destinations, and a
distributed spanning-tree protocol so that redundant physical links do
not create forwarding loops.  LiveSec's Access-Switching layer rides on
top of it unchanged, which is exactly how these switches are used here.

The STP implementation is a simplified 802.1D: periodic BPDU hellos,
root election by lowest bridge id, root/designated/blocked port roles
decided by the standard ``(root id, path cost, bridge id, port id)``
priority vector.  It converges in a few hello intervals and reacts to
link failures, which is enough to exercise the paper's claim that
loop-freedom in the legacy fabric is transparent to the AS layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.net import packet as pkt
from repro.net.node import Node
from repro.net.packet import Ethernet

BPDU_MAC = "01:80:c2:00:00:00"
# EtherType stand-in for 802.1D BPDUs (really LLC, but the simulator
# dispatches on ethertype).
ETH_TYPE_BPDU = 0x4242

HELLO_INTERVAL_S = 0.05
BPDU_MAX_AGE_S = 0.25
MAC_AGING_S = 300.0


@dataclass
class Bpdu:
    """Spanning-tree hello: the sender's view of the root."""

    root_id: int
    root_cost: int
    bridge_id: int
    port_id: int


@dataclass
class _PriorityVector:
    """Comparable STP priority vector; lower is better."""

    root_id: int
    root_cost: int
    bridge_id: int
    port_id: int

    def key(self) -> Tuple[int, int, int, int]:
        return (self.root_id, self.root_cost, self.bridge_id, self.port_id)


class LegacySwitch(Node):
    """A traditional learning switch with spanning tree.

    ``bridge_id`` doubles as the STP priority (lower wins the root
    election).  ``flood_lldp`` controls whether LLDP frames are flooded
    like ordinary multicast; LiveSec relies on the legacy fabric
    carrying LLDP between AS switches so the controller can discover
    the logical full mesh, and many commodity switches do flood LLDP,
    so the default is True.
    """

    def __init__(
        self,
        sim,
        name: str,
        bridge_id: int,
        stp_enabled: bool = True,
        flood_lldp: bool = True,
    ):
        super().__init__(sim, name)
        self.bridge_id = bridge_id
        self.stp_enabled = stp_enabled
        self.flood_lldp = flood_lldp
        self.mac_table: Dict[str, Tuple[int, float]] = {}
        # STP state.
        self._best_received: Dict[int, Tuple[_PriorityVector, float]] = {}
        self._root_vector = _PriorityVector(bridge_id, 0, bridge_id, 0)
        self._root_port: Optional[int] = None
        if stp_enabled:
            sim.every(
                HELLO_INTERVAL_S,
                self._send_hellos,
                start=sim.now + (bridge_id % 17) * 1e-4,
            )

    # ------------------------------------------------------------------
    # Spanning tree

    def _send_hellos(self) -> None:
        self._recompute_roles()
        for port in self.attached_ports():
            if self._port_role(port.number) != "designated":
                continue
            frame = Ethernet(
                src=pkt.mac_address(pkt.SWITCH_MAC_BASE + self.bridge_id),
                dst=BPDU_MAC,
                ethertype=ETH_TYPE_BPDU,
                size=64,
                payload=None,
            )
            frame.payload = Bpdu(  # type: ignore[assignment]
                root_id=self._root_vector.root_id,
                root_cost=self._root_vector.root_cost,
                bridge_id=self.bridge_id,
                port_id=port.number,
            )
            self.send(frame, port.number)

    def _handle_bpdu(self, bpdu: Bpdu, in_port: int) -> None:
        # Store the vector exactly as advertised.  Root selection adds
        # the link cost; the designated-port comparison must NOT (it
        # compares advertisements on the same segment, per 802.1D).
        received = _PriorityVector(
            bpdu.root_id, bpdu.root_cost, bpdu.bridge_id, bpdu.port_id
        )
        self._best_received[in_port] = (received, self.sim.now)
        self._recompute_roles()

    LINK_COST = 1

    def _recompute_roles(self) -> None:
        now = self.sim.now
        stale = [
            port
            for port, (__, when) in self._best_received.items()
            if now - when > BPDU_MAX_AGE_S
        ]
        for port in stale:
            del self._best_received[port]

        own = _PriorityVector(self.bridge_id, 0, self.bridge_id, 0)
        best = own
        best_port: Optional[int] = None
        for port_number, (advertised, __) in sorted(self._best_received.items()):
            through_port = _PriorityVector(
                advertised.root_id,
                advertised.root_cost + self.LINK_COST,
                advertised.bridge_id,
                advertised.port_id,
            )
            if through_port.key() < best.key():
                best = through_port
                best_port = port_number
        self._root_vector = best
        self._root_port = best_port

    def _port_role(self, port_number: int) -> str:
        """'root', 'designated' or 'blocked' for the given port."""
        if not self.stp_enabled:
            return "designated"
        if port_number == self._root_port:
            return "root"
        received = self._best_received.get(port_number)
        if received is None:
            return "designated"  # edge port: no bridge on the far side
        # Our advertisement on this segment vs the best one heard on
        # it: both are (root, root-path-cost, bridge, port) as sent.
        ours = _PriorityVector(
            self._root_vector.root_id,
            self._root_vector.root_cost,
            self.bridge_id,
            port_number,
        )
        return "designated" if ours.key() < received[0].key() else "blocked"

    def port_is_forwarding(self, port_number: int) -> bool:
        """Whether STP allows data frames on the port."""
        return self._port_role(port_number) != "blocked"

    def spanning_tree_state(self) -> dict:
        """Debug/monitoring snapshot of the STP state."""
        return {
            "bridge_id": self.bridge_id,
            "root_id": self._root_vector.root_id,
            "root_cost": self._root_vector.root_cost,
            "root_port": self._root_port,
            "roles": {
                port.number: self._port_role(port.number)
                for port in self.attached_ports()
            },
        }

    # ------------------------------------------------------------------
    # Data plane

    def receive(self, frame: Ethernet, in_port: int) -> None:
        if frame.ethertype == ETH_TYPE_BPDU:
            if self.stp_enabled and isinstance(frame.payload, Bpdu):
                self._handle_bpdu(frame.payload, in_port)
            return
        if not self.port_is_forwarding(in_port):
            return
        if frame.ethertype == pkt.ETH_TYPE_LLDP and not self.flood_lldp:
            return

        self.mac_table[frame.src] = (in_port, self.sim.now)

        entry = self.mac_table.get(frame.dst)
        if entry is not None and self.sim.now - entry[1] <= MAC_AGING_S:
            out_port, _ = entry
            if out_port != in_port and self.port_is_forwarding(out_port):
                self.send(frame, out_port)
            return
        self._flood_forwarding(frame, in_port)

    def peek_forward(self, frame: Ethernet, in_port: int) -> Optional[int]:
        """The port :meth:`receive` would forward ``frame`` to, with no
        side effects (no MAC learning, nothing sent).

        Returns ``None`` when the frame would be dropped, flooded, or
        hairpinned -- cases the fluid fast-forward kernel refuses to
        model analytically.
        """
        if frame.ethertype == ETH_TYPE_BPDU:
            return None
        if not self.port_is_forwarding(in_port):
            return None
        entry = self.mac_table.get(frame.dst)
        if entry is None or self.sim.now - entry[1] > MAC_AGING_S:
            return None
        out_port, _ = entry
        if out_port == in_port or not self.port_is_forwarding(out_port):
            return None
        return out_port

    def _flood_forwarding(self, frame: Ethernet, in_port: int) -> None:
        for port in self.attached_ports():
            if port.number == in_port:
                continue
            if not self.port_is_forwarding(port.number):
                continue
            self.send(frame.clone(), port.number)
