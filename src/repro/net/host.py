"""End hosts: the Network-Periphery layer's users and servers.

A host owns one port, an ARP stack (the LiveSec controller learns host
locations from ARP traffic, Section III.C.2), and a tiny application
layer: callbacks keyed by transport port, an automatic ICMP echo
responder (used by the latency evaluation), and per-flow receive
accounting that the analysis layer reads to compute throughput.

Hosts are used for wired users, wireless users (attached behind a
:class:`repro.net.wifi.WifiAccessPoint`), servers, and the Internet
gateway; service elements extend this class in
:mod:`repro.elements.base`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

from repro.net import packet as pkt
from repro.net.node import Node
from repro.net.packet import Arp, Ethernet, Icmp, IPv4, Tcp, Udp

# Hosts have a single NIC, always port 1.
HOST_PORT = 1

AppHandler = Callable[["Host", Ethernet], None]


class Host(Node):
    """A layer-2/3 end host with ARP, ICMP echo and app callbacks."""

    def __init__(
        self,
        sim,
        name: str,
        mac: str,
        ip: str,
        wireless: bool = False,
        arp_timeout_s: float = 60.0,
        vlan: Optional[int] = None,
    ):
        super().__init__(sim, name)
        self.mac = mac
        self.ip = ip
        self.wireless = wireless
        # Tenant tag: when set, all emitted IP frames carry this VLAN
        # id, which policies can select on (the paper's multi-tenant
        # "work zones").
        self.vlan = vlan
        self.arp_timeout_s = arp_timeout_s
        self.arp_table: Dict[str, Tuple[str, float]] = {}
        self._arp_pending: Dict[str, List[Ethernet]] = defaultdict(list)
        self._app_handlers: Dict[Tuple[int, int], AppHandler] = {}
        self.default_handler: Optional[AppHandler] = None
        # Receive-side accounting.
        self.rx_frames = 0
        self.rx_bytes = 0
        self.rx_bytes_by_flow: Dict[Optional[int], int] = defaultdict(int)
        self.rx_frames_by_flow: Dict[Optional[int], int] = defaultdict(int)
        self.latencies: List[float] = []
        # Ping state: ident -> (sent_at, reply_callback)
        self._pings: Dict[int, Tuple[float, Optional[Callable[[float], None]]]] = {}
        self._ping_ident = 0
        self.ping_rtts: List[float] = []

    # ------------------------------------------------------------------
    # Joining the network

    def announce(self) -> None:
        """Send a gratuitous ARP so the network learns our location.

        LiveSec discovers hosts from their first ARP frame; calling
        this after wiring the host models the join event.
        """
        frame = pkt.make_arp_request(self.mac, self.ip, self.ip)
        frame.created_at = self.sim.now
        self.send(frame, HOST_PORT)

    # ------------------------------------------------------------------
    # Sending

    def resolve_and_send(self, frame: Ethernet, dst_ip: str) -> None:
        """Fill in the destination MAC for ``dst_ip`` (ARPing if
        necessary) and transmit the frame."""
        entry = self.arp_table.get(dst_ip)
        if entry is not None and self.sim.now - entry[1] <= self.arp_timeout_s:
            frame.dst = entry[0]
            self.send(frame, HOST_PORT)
            return
        already_pending = bool(self._arp_pending[dst_ip])
        self._arp_pending[dst_ip].append(frame)
        if not already_pending:
            self._send_arp_request(dst_ip, attempt=1)

    ARP_RETRY_INTERVAL_S = 1.0
    ARP_MAX_ATTEMPTS = 5

    def _send_arp_request(self, dst_ip: str, attempt: int) -> None:
        """Send a who-has and retry while frames are still waiting.

        Real stacks retransmit ARP a few times before declaring the
        destination unreachable; without this, one lost request would
        strand the pending frames forever.
        """
        if not self._arp_pending.get(dst_ip):
            return  # resolved (or abandoned) meanwhile
        if attempt > self.ARP_MAX_ATTEMPTS:
            self._arp_pending.pop(dst_ip, None)  # unreachable: give up
            return
        request = pkt.make_arp_request(self.mac, self.ip, dst_ip)
        request.created_at = self.sim.now
        self.send(request, HOST_PORT)
        self.sim.schedule(
            self.ARP_RETRY_INTERVAL_S, self._send_arp_request, dst_ip,
            attempt + 1,
        )

    def send_udp(
        self,
        dst_ip: str,
        sport: int,
        dport: int,
        payload: bytes = b"",
        size: Optional[int] = None,
        flow_id: Optional[int] = None,
    ) -> None:
        """Send one UDP datagram (resolving the destination MAC first)."""
        frame = pkt.make_udp(
            self.mac, pkt.BROADCAST_MAC, self.ip, dst_ip, sport, dport,
            payload, size, vlan=self.vlan,
        )
        frame.created_at = self.sim.now
        frame.flow_id = flow_id
        self.resolve_and_send(frame, dst_ip)

    def send_tcp(
        self,
        dst_ip: str,
        sport: int,
        dport: int,
        payload: bytes = b"",
        flags: str = "",
        size: Optional[int] = None,
        flow_id: Optional[int] = None,
    ) -> None:
        """Send one TCP segment (resolving the destination MAC first)."""
        frame = pkt.make_tcp(
            self.mac,
            pkt.BROADCAST_MAC,
            self.ip,
            dst_ip,
            sport,
            dport,
            payload,
            flags,
            size,
            vlan=self.vlan,
        )
        frame.created_at = self.sim.now
        frame.flow_id = flow_id
        self.resolve_and_send(frame, dst_ip)

    def ping(
        self, dst_ip: str, on_reply: Optional[Callable[[float], None]] = None
    ) -> int:
        """Send an ICMP echo request; RTTs accumulate in ``ping_rtts``.

        Returns the echo identifier.
        """
        self._ping_ident += 1
        ident = self._ping_ident
        self._pings[ident] = (self.sim.now, on_reply)
        frame = pkt.make_icmp_echo(
            self.mac, pkt.BROADCAST_MAC, self.ip, dst_ip, ident=ident
        )
        frame.created_at = self.sim.now
        self.resolve_and_send(frame, dst_ip)
        return ident

    # ------------------------------------------------------------------
    # Receiving

    def on_app(self, proto: int, port: int, handler: AppHandler) -> None:
        """Register a callback for frames to ``(ip proto, dest port)``."""
        self._app_handlers[(proto, port)] = handler

    def receive(self, frame: Ethernet, in_port: int) -> None:
        if frame.ethertype == pkt.ETH_TYPE_ARP and isinstance(frame.payload, Arp):
            self._handle_arp(frame.payload)
            return
        ip = frame.ip()
        if ip is None or (ip.dst != self.ip and not frame.is_broadcast):
            return
        self.rx_frames += 1
        self.rx_bytes += frame.size
        self.rx_bytes_by_flow[frame.flow_id] += frame.size
        self.rx_frames_by_flow[frame.flow_id] += 1
        if frame.created_at is not None:
            self.latencies.append(self.sim.now - frame.created_at)
        segment = ip.payload
        if isinstance(segment, Icmp):
            self._handle_icmp(ip, segment)
            return
        if isinstance(segment, (Tcp, Udp)):
            handler = self._app_handlers.get((ip.proto, segment.dport))
            if handler is not None:
                handler(self, frame)
            elif self.default_handler is not None:
                self.default_handler(self, frame)

    def _handle_arp(self, arp: Arp) -> None:
        if arp.sender_ip != self.ip:
            self.arp_table[arp.sender_ip] = (arp.sender_mac, self.sim.now)
            self._flush_pending(arp.sender_ip, arp.sender_mac)
        if arp.is_request and arp.target_ip == self.ip and arp.sender_ip != self.ip:
            reply = pkt.make_arp_reply(self.mac, self.ip, arp.sender_mac, arp.sender_ip)
            reply.created_at = self.sim.now
            self.send(reply, HOST_PORT)

    def _flush_pending(self, ip: str, mac: str) -> None:
        pending = self._arp_pending.pop(ip, [])
        for frame in pending:
            frame.dst = mac
            self.send(frame, HOST_PORT)

    def _handle_icmp(self, ip: IPv4, icmp: Icmp) -> None:
        if icmp.kind == "echo-request":
            reply = pkt.make_icmp_echo(
                self.mac,
                pkt.BROADCAST_MAC,
                self.ip,
                ip.src,
                kind="echo-reply",
                ident=icmp.ident,
                seq=icmp.seq,
            )
            reply.created_at = self.sim.now
            self.resolve_and_send(reply, ip.src)
        elif icmp.kind == "echo-reply":
            state = self._pings.pop(icmp.ident, None)
            if state is not None:
                sent_at, callback = state
                rtt = self.sim.now - sent_at
                self.ping_rtts.append(rtt)
                if callback is not None:
                    callback(rtt)

    def received_bits(self, flow_id: Optional[int] = None) -> int:
        """Total bits received, optionally for one workload flow."""
        if flow_id is None:
            return self.rx_bytes * 8
        return self.rx_bytes_by_flow.get(flow_id, 0) * 8
