"""Hybrid fluid/packet fast-forward kernel.

Packet-level simulation is the repo's oracle: every frame is an event,
every hop a callback.  That fidelity is wasted during the long steady
phases of a deployment-scale run -- thousands of CBR flows whose
per-packet behavior is fully determined by rules that were installed
during their first-packet punt.  :class:`FluidRegion` detects those
phases, *suspends* the per-packet emit events, and advances every
counter the packets would have touched analytically, while the event
queue shrinks to the sparse control-plane barriers (STP hellos, expiry
sweeps, stats polls, element daemons).

The contract is equivalence, not approximation:

* A flow is only suspended after its path has been walked side-effect
  free (ARP fresh, every link up, a matched non-expiring-soon OpenFlow
  entry at every AS hop, a learned MAC at every legacy hop, no service
  element, no app handler at the destination, exactly one Output per
  rule).  Anything else -- floods, punts, path tags, scans, TCP
  machinery -- *refuses* fast-forward and stays at packet fidelity.
* Under the default ``congestion="refuse"`` policy the region also
  refuses unless max-min fair allocation over every traversed link
  direction gives *every* candidate its full demand under the
  ``max_utilization`` headroom: no drops can occur, so synthesized
  delivered bytes are exact, not modeled.
* Suspension is bounded by validity caps: the earliest ARP expiry,
  legacy MAC aging deadline, or flow-entry hard timeout along the
  path.  Crossing a cap resumes the flow at exactly the emission where
  the oracle would re-ARP / re-flood / re-punt.
* Any control-plane act that could change forwarding -- a FlowMod, a
  fault injection, a link admin change, a TCP handshake, a new flow's
  first packet -- *materializes* every suspended flow back to packet
  level before it executes.

Emission times are the bit-for-bit expression the emit path uses
(:meth:`TrafficFlow.paced_at`), so a run that dips in and out of fluid
mode reproduces the oracle's per-flow emission schedule exactly.

Known approximations (documented in DESIGN.md): per-packet latency
samples at the destination host are not synthesized, queue-occupancy
gauges read empty while suspended (the refuse policy guarantees the
oracle's queues were transient anyway), and FlowRemoved notifications
for *other* sessions' entries that the oracle's datapath would have
observed mid-stream are quantized to the switch's 1 s expiry sweep.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Tuple

from repro.net import packet as pkt
from repro.net.host import HOST_PORT, Host
from repro.net.links import fluid_apply
from repro.net.legacy import MAC_AGING_S, LegacySwitch
from repro.net.packet import IP_PROTO_TCP
from repro.openflow.actions import (
    CONTROLLER_PORT,
    FLOOD_PORT,
    Output,
    PopPathTag,
    PushPathTag,
)
from repro.openflow.switch import OpenFlowSwitch

_INF = float("inf")

# A suspended flow must refresh each idle-limited entry well inside its
# idle timeout; flows whose packet spacing eats more than this fraction
# of the timeout are refused (the oracle would be racing expiry).
IDLE_REFRESH_FRACTION = 0.5

MAX_HOPS = 64


class _Walk:
    """Everything learned from one side-effect-free path walk."""

    __slots__ = (
        "hops", "of_hits", "legacy_hits", "dst", "dst_offset",
        "valid_incl", "valid_excl",
    )

    def __init__(self) -> None:
        # Per-hop :class:`~repro.net.links.HopPlan`s, in path order.
        self.hops: List[object] = []
        # (switch, entry, arrival_offset_s, exact_index_hit)
        self.of_hits: List[tuple] = []
        # (switch, src_mac, canonical_in_port, arrival_offset_s)
        self.legacy_hits: List[tuple] = []
        self.dst: Optional[Host] = None
        self.dst_offset = 0.0
        self.valid_incl = _INF  # last instant an emission is still valid
        self.valid_excl = _INF  # first instant an emission is invalid



class _SuspendedFlow:
    """A flow whose emit events have been replaced by closed forms."""

    __slots__ = ("flow", "walk", "base", "interval", "size", "stop_at",
                 "max_packets", "rate_bps", "residual", "heap_t")

    def __init__(self, flow, walk: _Walk, rate_bps: float) -> None:
        self.flow = flow
        self.walk = walk
        self.base = flow._started_at
        self.interval = flow.interval_s
        self.size = flow.packet_size
        self.stop_at = flow._stop_at
        self.max_packets = flow.max_packets
        self.rate_bps = rate_bps
        self.residual = 0.0  # fractional delivery carry (rate policy)
        self.heap_t = 0.0  # emission-heap key; stale entries ignored


def max_min_rates(
    demands: Dict[object, float],
    constraints: List[Tuple[float, List[object]]],
) -> Dict[object, float]:
    """Progressive-filling max-min fair allocation.

    ``demands`` maps a flow key to its offered rate; each constraint is
    ``(capacity_bps, member_keys)``.  Rates rise uniformly until a flow
    reaches its demand or a constraint saturates (freezing its active
    members).  Returns the per-key allocated rate.
    """
    rates = {key: 0.0 for key in demands}
    active = set(demands)
    cons = [(cap, [k for k in keys if k in demands]) for cap, keys in constraints]
    eps = 1e-9
    while active:
        delta = min(demands[k] - rates[k] for k in active)
        for cap, keys in cons:
            live = [k for k in keys if k in active]
            if not live:
                continue
            slack = cap - sum(rates[k] for k in keys)
            delta = min(delta, slack / len(live))
        if delta > 0:
            for k in active:
                rates[k] += delta
        frozen = {k for k in active if rates[k] >= demands[k] - eps}
        for cap, keys in cons:
            if any(k in active for k in keys):
                if cap - sum(rates[k] for k in keys) <= cap * eps:
                    frozen.update(k for k in keys if k in active)
        if not frozen:
            break  # defensive: should be unreachable
        active -= frozen
    return rates


class FluidRegion:
    """Flow-level fast-forward attached to a :class:`Simulator`.

    Opt-in (``build_livesec_network(..., fluid=True)``); the region is
    inert until the first :class:`TrafficFlow` registers.  A periodic
    governor then attempts suspension; the simulator's run loop calls
    :meth:`advance_to` before every event pop so all callbacks observe
    counters consistent with the packets that "would have" flown.
    """

    def __init__(
        self,
        sim,
        max_utilization: float = 0.95,
        governor_interval_s: float = 0.05,
        congestion: str = "refuse",
    ):
        if congestion not in ("refuse", "rate"):
            raise ValueError(f"unknown congestion policy {congestion!r}")
        if not 0.0 < max_utilization <= 1.0:
            raise ValueError(
                f"max_utilization must be in (0, 1] (got {max_utilization})"
            )
        self.sim = sim
        self.max_utilization = max_utilization
        self.governor_interval_s = governor_interval_s
        self.congestion = congestion
        self.flows: Dict[object, None] = {}
        self._suspended: Dict[object, _SuspendedFlow] = {}
        self._tcp_active: Dict[object, None] = {}
        self._governor = None
        self._advanced_to = 0.0
        # Min-heap of (next emission time, seq, suspended flow):
        # advance_to only touches flows with emissions due before the
        # horizon, so the per-event cost scales with traffic crossed,
        # not with the suspended population.  Entries go stale when a
        # flow resumes or re-advances; pops discard them lazily.
        self._emissions: List[tuple] = []
        self._heap_seq = 0
        # Observability.
        self.fastforwards = 0
        self.time_saved_s = 0.0
        self.packets_synthesized = 0
        self.resumes = 0
        self.refusals: Dict[str, int] = {}
        self.materializations: Dict[str, int] = {}
        sim.attach_fluid(self)

    # ------------------------------------------------------------------
    # Kernel interface

    @property
    def active(self) -> bool:
        return bool(self._suspended)

    def advance_to(self, horizon: float) -> bool:
        """Back-fill counters for every suspended flow up to ``horizon``.

        Called by the run loop before each event pop (and at the end of
        a bounded run).  Returns True when a flow crossed a validity
        cap and a resumption event earlier than the pending head may
        now exist -- the caller must re-examine its queue.
        """
        if not self._suspended:
            return False
        if horizon <= self._advanced_to:
            return False
        rescheduled = False
        synthesized = 0
        heap = self._emissions
        while heap and heap[0][0] < horizon:
            t, _seq, sf = heapq.heappop(heap)
            if self._suspended.get(sf.flow) is not sf or sf.heap_t != t:
                continue  # resumed or already re-advanced; stale entry
            emitted, keep = self._advance_flow(sf, horizon)
            synthesized += emitted
            if keep:
                self._push_emission(sf)
            else:
                next_t = self._resume(sf)
                if next_t < horizon:
                    rescheduled = True
        self.time_saved_s += horizon - self._advanced_to
        self._advanced_to = horizon
        if synthesized:
            self.packets_synthesized += synthesized
            self.fastforwards += 1
        return rescheduled

    def _push_emission(self, sf: _SuspendedFlow) -> None:
        sf.heap_t = sf.base + sf.flow.packets_sent * sf.interval
        self._heap_seq += 1
        heapq.heappush(self._emissions, (sf.heap_t, self._heap_seq, sf))

    # ------------------------------------------------------------------
    # Registration / lifecycle hooks

    def flow_started(self, flow) -> None:
        """A flow's first packet must punt at packet fidelity."""
        self.materialize_all("flow-start")
        self.flows[flow] = None
        if self._governor is None:
            self._governor = self.sim.every(
                self.governor_interval_s, self._governor_tick
            )

    def flow_stopped(self, flow) -> None:
        self.flows.pop(flow, None)
        self._suspended.pop(flow, None)

    def tcp_opened(self, conn) -> None:
        """Handshake/teardown state machines need packet fidelity."""
        self._tcp_active[conn] = None
        self.materialize_all("tcp-open")

    def tcp_closed(self, conn) -> None:
        self._tcp_active.pop(conn, None)

    def materialize_all(self, reason: str) -> None:
        """Resume every suspended flow at packet level, now.

        Invoked before any act that could change forwarding state:
        FlowMods, fault injections, link admin changes, TCP opens, new
        flows.  Counters are already consistent (the kernel advanced
        them to the current event's timestamp before dispatch).
        """
        if not self._suspended:
            return
        self.advance_to(self.sim.now)  # no-op unless called outside run()
        for sf in list(self._suspended.values()):
            self._resume(sf)
        self._emissions.clear()
        self.materializations[reason] = self.materializations.get(reason, 0) + 1

    # ------------------------------------------------------------------
    # Suspension

    def _governor_tick(self) -> None:
        for flow in [f for f in self.flows if not f.running]:
            del self.flows[flow]
            self._suspended.pop(flow, None)
        if not self.flows:
            self._governor.cancel()
            self._governor = None
            return
        if self._tcp_active:
            self._refuse("tcp-active")
            return
        self._try_suspend()

    def _refuse(self, reason: str) -> None:
        self.refusals[reason] = self.refusals.get(reason, 0) + 1

    def _try_suspend(self) -> None:
        """Suspend every eligible flow -- all of them or none.

        Exactness demands all-or-nothing: a packet-level flow sharing a
        link with suspended ones would see less contention than the
        oracle's, so one ineligible flow (or one oversubscribed link)
        refuses the whole attempt under the ``refuse`` policy.
        """
        candidates: List[Tuple[object, _Walk]] = []
        for flow in self.flows:
            if flow in self._suspended:
                continue
            walk, reason = self._walk(flow)
            if walk is None:
                self._refuse(reason)
                return
            candidates.append((flow, walk))
        if not candidates:
            return

        demands: Dict[object, float] = {}
        members: Dict[object, List[object]] = {}
        capacity: Dict[object, float] = {}
        for flow, walk in candidates:
            demands[flow] = flow.rate_bps
            for plan in walk.hops:
                medium = plan.medium
                if medium is not None:
                    key = ("air", id(medium))
                    capacity[key] = medium.bandwidth_bps
                else:
                    key = ("dir", id(plan.link), id(plan.from_port))
                    capacity[key] = plan.link.bandwidth_bps
                members.setdefault(key, []).append(flow)
        for sf in self._suspended.values():
            demands[sf.flow] = sf.rate_bps
            for plan in sf.walk.hops:
                medium = plan.medium
                key = (("air", id(medium)) if medium is not None
                       else ("dir", id(plan.link), id(plan.from_port)))
                capacity.setdefault(
                    key,
                    medium.bandwidth_bps if medium is not None
                    else plan.link.bandwidth_bps,
                )
                members.setdefault(key, []).append(sf.flow)

        constraints = [
            (capacity[key] * self.max_utilization, flows)
            for key, flows in members.items()
        ]
        rates = max_min_rates(demands, constraints)
        if self.congestion == "refuse":
            for flow, _walk in candidates:
                if rates[flow] < demands[flow] * (1.0 - 1e-9):
                    self._refuse("congested")
                    return

        for flow, walk in candidates:
            if flow._pending is not None:
                flow._pending.cancel()
                flow._pending = None
            sf = _SuspendedFlow(flow, walk, rates[flow])
            self._suspended[flow] = sf
            self._push_emission(sf)
        self._advanced_to = self.sim.now

    # ------------------------------------------------------------------
    # Path walk (side-effect free)

    def _walk(self, flow):
        """Trace ``flow``'s next packet to its destination.

        Returns ``(walk, None)`` on success, ``(None, reason)`` when
        anything along the path requires packet fidelity.
        """
        if not flow.running or flow._started_at is None:
            return None, "not-running"
        if flow.packets_sent < 1:
            return None, "cold"  # first packet must punt for real
        if type(flow)._emit is not _base_emit():
            return None, "custom-emitter"  # e.g. port scans
        src = flow.src
        now = self.sim.now
        arp = src.arp_table.get(flow.dst_ip)
        if arp is None or now - arp[1] > src.arp_timeout_s:
            return None, "arp-unresolved"
        walk = _Walk()
        walk.valid_incl = arp[1] + src.arp_timeout_s
        frame = self._probe_frame(flow, arp[0])
        port = src.ports.get(HOST_PORT)
        offset = 0.0
        for _ in range(MAX_HOPS):
            if port is None or not port.enabled or port.link is None:
                return None, "no-link"
            link = port.link
            if not link.up:
                return None, "link-down"
            to_port = link.other_end(port)
            if not to_port.enabled:
                return None, "port-disabled"
            offset += frame.size * 8.0 / link.bandwidth_bps + link.delay_s
            plan = link.fluid_plan(port, frame.size, offset)
            if (self.congestion == "refuse"
                    and plan.direction.occupancy(now) > 0):
                # A draining drop-tail backlog (e.g. right after an
                # overload subsided) would queue-delay -- or drop --
                # real frames; analytic advance assumes neither.  The
                # "rate" policy models congestion anyway, so only the
                # exactness-preserving policy refuses here.
                return None, "queue-backlog"
            walk.hops.append(plan)
            node = to_port.node
            if getattr(node, "service_type", None) is not None:
                return None, "service-element"
            if isinstance(node, OpenFlowSwitch):
                out = self._walk_openflow(
                    node, frame, to_port.number, now, flow, walk, offset
                )
                if isinstance(out, str):
                    return None, out
                offset += node.forwarding_delay_s
                port = node.ports.get(out)
                continue
            if isinstance(node, LegacySwitch):
                out = node.peek_forward(frame, to_port.number)
                if out is None:
                    return None, "legacy-flood"
                in_learn = to_port.number
                group_of = getattr(node, "group_of", None)
                if group_of is not None and in_learn != group_of(in_learn)[0]:
                    in_learn = group_of(in_learn)[0]
                walk.legacy_hits.append((node, frame.src, in_learn, offset))
                entry = node.mac_table.get(frame.dst)
                if entry is not None:
                    walk.valid_incl = min(
                        walk.valid_incl, entry[1] + MAC_AGING_S
                    )
                port = node.ports.get(out)
                continue
            if isinstance(node, Host):
                if node.ip != flow.dst_ip:
                    return None, "wrong-destination"
                ip = frame.ip()
                if node._app_handlers.get((ip.proto, ip.payload.dport)):
                    return None, "app-handler"
                if node.default_handler is not None:
                    return None, "app-handler"
                walk.dst = node
                walk.dst_offset = offset
                return walk, None
            return None, "unmodelled-node"
        return None, "path-too-long"

    def _walk_openflow(self, sw, frame, in_port, now, flow, walk, offset):
        """One AS-layer hop; returns the egress port or a refusal reason."""
        if sw.compromised is not None:
            return "compromised-switch"
        entry = sw.table.peek(frame, in_port, now)
        if entry is None:
            return "table-miss"
        if entry.is_drop:
            return "drop-rule"
        out = None
        for action in entry.actions:
            if isinstance(action, Output):
                if out is not None:
                    return "multi-output"
                if action.port in (CONTROLLER_PORT, FLOOD_PORT):
                    return "punt-or-flood"
                out = action.port
            elif isinstance(action, (PushPathTag, PopPathTag)):
                return "path-tagged"
            else:
                if out is not None:
                    return "rewrite-after-output"
                action.apply(frame)  # header rewrite feeds downstream matches
        if out is None:
            return "no-output"
        if (entry.idle_timeout > 0
                and flow.interval_s > entry.idle_timeout * IDLE_REFRESH_FRACTION):
            return "sparse-flow"
        if entry.hard_timeout > 0:
            walk.valid_excl = min(
                walk.valid_excl, entry.created_at + entry.hard_timeout
            )
        walk.of_hits.append(
            (sw, entry, offset, entry.match.exact_index_key() is not None)
        )
        return out

    def _probe_frame(self, flow, dst_mac: str):
        """The frame the flow's next emission would put on the wire
        (payload content is irrelevant to matching)."""
        src = flow.src
        if flow.proto == IP_PROTO_TCP:
            frame = pkt.make_tcp(
                src.mac, dst_mac, src.ip, flow.dst_ip, flow.sport, flow.dport,
                b"", "", flow.packet_size, vlan=src.vlan,
            )
        else:
            frame = pkt.make_udp(
                src.mac, dst_mac, src.ip, flow.dst_ip, flow.sport, flow.dport,
                b"", flow.packet_size, vlan=src.vlan,
            )
        frame.flow_id = flow.flow_id
        return frame

    # ------------------------------------------------------------------
    # Analytic advance

    def _advance_flow(self, sf: _SuspendedFlow, horizon: float):
        """Synthesize ``sf``'s emissions strictly before ``horizon``.

        Returns ``(packets_emitted, keep_suspended)``.  The emission
        grid is exactly :meth:`TrafficFlow.paced_at`; closed-form count
        first, then a fix-up loop so float rounding can never disagree
        with the per-packet expression the oracle evaluates.
        """
        flow = sf.flow
        walk = sf.walk
        base, interval = sf.base, sf.interval
        k0 = flow.packets_sent
        bound = horizon
        if sf.stop_at is not None and sf.stop_at < bound:
            bound = sf.stop_at
        if walk.valid_excl < bound:
            bound = walk.valid_excl
        k_cap = sf.max_packets if sf.max_packets is not None else None

        k_end = int(math.floor((min(bound, walk.valid_incl) - base) / interval)) + 1
        if k_end < k0:
            k_end = k0
        if k_cap is not None and k_end > k_cap:
            k_end = k_cap
        while k_end > k0:
            t = base + (k_end - 1) * interval
            if t < bound and t <= walk.valid_incl:
                break
            k_end -= 1
        while k_cap is None or k_end < k_cap:
            t = base + k_end * interval
            if t < bound and t <= walk.valid_incl:
                k_end += 1
            else:
                break

        emitted = k_end - k0
        if emitted > 0:
            self._apply_counters(sf, k0, k_end)

        # Keep the flow suspended only while the *next* emission is
        # bounded by the horizon alone; any other boundary (stop, cap,
        # validity) hands control back to the oracle's emit path, which
        # re-ARPs / re-punts / stops exactly as the packet kernel would.
        t_next = base + k_end * interval
        if k_cap is not None and k_end >= k_cap:
            return emitted, False
        if sf.stop_at is not None and t_next >= sf.stop_at:
            return emitted, False
        if t_next >= walk.valid_excl or t_next > walk.valid_incl:
            return emitted, False
        return emitted, True

    def _apply_counters(self, sf: _SuspendedFlow, k0: int, k_end: int) -> None:
        flow = sf.flow
        walk = sf.walk
        count = k_end - k0
        size = sf.size
        total = count * size
        last_t = sf.base + (k_end - 1) * sf.interval
        delivered = count
        if self.congestion == "rate" and sf.rate_bps < flow.rate_bps:
            # Bottleneck thinning: deliver the allocated fraction (with
            # a fractional carry across advances); the remainder is
            # charged to the first hop's drop counter.
            exact = count * sf.rate_bps / flow.rate_bps + sf.residual
            delivered = int(exact)
            sf.residual = exact - delivered
        flow.packets_sent = k_end
        flow.bytes_sent += total
        fluid_apply(walk.hops, delivered, size, last_t)
        if delivered < count:
            walk.hops[0].direction.dropped += count - delivered
        delivered_bytes = delivered * size
        for sw, entry, offset, exact in walk.of_hits:
            sw.table.record_fluid_hits(
                entry, delivered, delivered_bytes, last_t + offset, exact
            )
            sw.packets_forwarded += delivered
        for sw, src_mac, in_learn, offset in walk.legacy_hits:
            sw.mac_table[src_mac] = (in_learn, last_t + offset)
        dst = walk.dst
        dst.rx_frames += delivered
        dst.rx_bytes += delivered_bytes
        dst.rx_bytes_by_flow[flow.flow_id] += delivered_bytes
        dst.rx_frames_by_flow[flow.flow_id] += delivered

    def _resume(self, sf: _SuspendedFlow) -> float:
        """Hand a flow back to the packet-level emit path."""
        flow = sf.flow
        self._suspended.pop(flow, None)
        t_next = flow.paced_at(flow.packets_sent)
        flow._pending = self.sim.schedule_at(
            max(self.sim.now, t_next), flow._emit
        )
        self.resumes += 1
        return t_next

    # ------------------------------------------------------------------
    # Observability

    def stats(self) -> dict:
        return {
            "fastforwards": self.fastforwards,
            "time_saved_s": self.time_saved_s,
            "packets_synthesized": self.packets_synthesized,
            "suspended_flows": len(self._suspended),
            "registered_flows": len(self.flows),
            "resumes": self.resumes,
            "refusals": dict(self.refusals),
            "materializations": dict(self.materializations),
        }

    def attach_metrics(self, registry) -> None:
        registry.gauge(
            "sim.fluid_fastforwards",
            "advance passes that synthesized at least one packet",
        ).set_function(lambda: float(self.fastforwards))
        registry.gauge(
            "sim.fluid_time_saved_s",
            "sim-seconds covered while flows were suspended",
        ).set_function(lambda: self.time_saved_s)
        registry.gauge(
            "sim.fluid_packets_synthesized",
            "packets accounted analytically instead of event-by-event",
        ).set_function(lambda: float(self.packets_synthesized))
        registry.gauge(
            "sim.fluid_suspended_flows", "flows currently fast-forwarded",
        ).set_function(lambda: float(len(self._suspended)))
        registry.gauge(
            "sim.fluid_refusals", "suspension attempts refused",
        ).set_function(lambda: float(sum(self.refusals.values())))
        registry.gauge(
            "sim.fluid_materializations",
            "control-plane events that resumed packet fidelity",
        ).set_function(lambda: float(sum(self.materializations.values())))


_BASE_EMIT = None


def _base_emit():
    """The canonical emit method fluid advance replicates (imported
    lazily: workloads sit above the net layer)."""
    global _BASE_EMIT
    if _BASE_EMIT is None:
        from repro.workloads.flows import TrafficFlow

        _BASE_EMIT = TrafficFlow._emit
    return _BASE_EMIT
