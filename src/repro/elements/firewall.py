"""Stateless ACL firewall element.

Evaluates a first-match ACL over the 9-tuple of every frame.  Denied
flows are *reported* to the controller (which installs the ingress
drop) -- consistent with LiveSec's principle that enforcement actions
are taken centrally, not by the distributed elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from repro.elements.base import ServiceElement, Verdict
from repro.net.packet import Ethernet, FlowNineTuple


@dataclass(frozen=True)
class AclRule:
    """One access-control entry; ``None`` fields are wildcards."""

    action: str  # "allow" | "deny"
    src_ip_prefix: Optional[str] = None
    dst_ip_prefix: Optional[str] = None
    nw_proto: Optional[int] = None
    tp_dst: Optional[int] = None

    def matches(self, flow: FlowNineTuple) -> bool:
        if self.src_ip_prefix is not None:
            if flow.nw_src is None or not flow.nw_src.startswith(self.src_ip_prefix):
                return False
        if self.dst_ip_prefix is not None:
            if flow.nw_dst is None or not flow.nw_dst.startswith(self.dst_ip_prefix):
                return False
        if self.nw_proto is not None and self.nw_proto != flow.nw_proto:
            return False
        if self.tp_dst is not None and self.tp_dst != flow.tp_dst:
            return False
        return True


class FirewallElement(ServiceElement):
    """A stateless packet-filter service element."""

    service_type = "firewall"

    def __init__(self, sim, name, mac, ip,
                 acl: Sequence[AclRule] = (),
                 default_action: str = "allow",
                 capacity_bps: float = 800e6,
                 per_packet_cost_s: float = 1.5e-6,
                 **kwargs):
        super().__init__(sim, name, mac, ip, capacity_bps=capacity_bps,
                         per_packet_cost_s=per_packet_cost_s, **kwargs)
        if default_action not in ("allow", "deny"):
            raise ValueError(f"bad default_action {default_action!r}")
        self.acl = tuple(acl)
        self.default_action = default_action
        self._denied_flows: Set[FlowNineTuple] = set()
        # IP five-tuples the ACL admitted: return traffic of a
        # permitted flow is allowed without a mirrored rule (tracked at
        # the network/transport level because the steering chain
        # rewrites MAC labels between the two directions).
        self._allowed_five_tuples: Set[tuple] = set()
        self.denies = 0

    def evaluate(self, flow: FlowNineTuple) -> str:
        """First-match ACL decision for a flow."""
        for rule in self.acl:
            if rule.matches(flow):
                return rule.action
        return self.default_action

    @staticmethod
    def _five_tuple(flow: FlowNineTuple) -> tuple:
        return (flow.nw_src, flow.nw_dst, flow.nw_proto,
                flow.tp_src, flow.tp_dst)

    def inspect(self, frame: Ethernet, flow: FlowNineTuple) -> List[Verdict]:
        if flow in self._denied_flows:
            return []
        five = self._five_tuple(flow)
        # Reply direction of a flow this firewall already permitted:
        # allowed, even under a default-deny ACL with no reverse rule.
        reverse = (five[1], five[0], five[2], five[4], five[3])
        if reverse in self._allowed_five_tuples:
            return []
        if self.evaluate(flow) == "deny":
            self._denied_flows.add(flow)
            self.denies += 1
            return [
                Verdict(
                    "attack",
                    {
                        "attack": "FIREWALL policy deny",
                        "severity": "low",
                        "verdict": "malicious",
                    },
                )
            ]
        self._allowed_five_tuples.add(five)
        return []
