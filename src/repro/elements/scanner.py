"""Virus-scanning element.

Streams each flow's payload bytes past a byte-signature set (the
moral equivalent of ClamAV over reassembled content).  Signatures may
straddle packet boundaries, so the scanner keeps a small per-flow tail
buffer and matches across the seam.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.elements.base import ServiceElement, Verdict
from repro.elements.signatures import VIRUS_SIGNATURES
from repro.net.packet import Ethernet, FlowNineTuple

TAIL_BYTES = 64  # longest signature bound


class VirusScanElement(ServiceElement):
    """A signature-based virus scanner service element."""

    service_type = "virus"

    def __init__(self, sim, name, mac, ip,
                 signatures: Tuple[Tuple[str, bytes], ...] = VIRUS_SIGNATURES,
                 capacity_bps: float = 300e6,
                 per_packet_cost_s: float = 8e-6,
                 **kwargs):
        super().__init__(sim, name, mac, ip, capacity_bps=capacity_bps,
                         per_packet_cost_s=per_packet_cost_s, **kwargs)
        self.signatures = signatures
        self._tails: Dict[FlowNineTuple, bytes] = {}
        self._infected: Set[FlowNineTuple] = set()
        self.detections = 0

    def inspect(self, frame: Ethernet, flow: FlowNineTuple) -> List[Verdict]:
        if flow in self._infected:
            return []
        payload = frame.app_payload()
        if not payload:
            return []
        window = self._tails.get(flow, b"") + payload
        for name, signature in self.signatures:
            if signature in window:
                self._infected.add(flow)
                self._tails.pop(flow, None)
                self.detections += 1
                return [
                    Verdict(
                        "virus",
                        {
                            "attack": f"VIRUS {name}",
                            "result": name,
                            "verdict": "malicious",
                        },
                    )
                ]
        self._tails[flow] = window[-TAIL_BYTES:]
        return []
