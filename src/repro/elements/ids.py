"""Intrusion detection element (the deployment ports Snort).

Per-frame signature matching over payload content, ports and TCP
flags, plus a stateful port-scan detector (many distinct destination
ports probed by one source within a short window).  Each flow is
reported at most once per matched rule -- like Snort's event
suppression -- so a long attacking flow produces one event report, not
thousands.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.elements.base import ServiceElement, Verdict
from repro.elements.signatures import DEFAULT_IDS_RULES, IdsRule
from repro.net.packet import Ethernet, FlowNineTuple, Tcp

PORTSCAN_WINDOW_S = 2.0
PORTSCAN_THRESHOLD = 15  # distinct destination ports


class IntrusionDetectionElement(ServiceElement):
    """A Snort-like IDS service element."""

    service_type = "ids"

    def __init__(self, sim, name, mac, ip,
                 rules: Optional[Sequence[IdsRule]] = None,
                 capacity_bps: float = 500e6,
                 per_packet_cost_s: float = 4.5e-6,
                 **kwargs):
        super().__init__(sim, name, mac, ip, capacity_bps=capacity_bps,
                         per_packet_cost_s=per_packet_cost_s, **kwargs)
        self.rules: Tuple[IdsRule, ...] = tuple(
            rules if rules is not None else DEFAULT_IDS_RULES
        )
        self._alerted: Set[Tuple[FlowNineTuple, str]] = set()
        # Port-scan state: src ip -> {dst_port: last probe time}.  Kept
        # as a per-port map so the per-packet work is O(1); the windowed
        # distinct-port count is only recomputed when a *new* port shows
        # up (the only time it can cross the threshold).
        self._probe_history: Dict[str, Dict[int, float]] = defaultdict(dict)
        self._scan_alerted: Set[str] = set()
        self.alerts = 0

    def inspect(self, frame: Ethernet, flow: FlowNineTuple) -> List[Verdict]:
        verdicts: List[Verdict] = []
        payload = frame.app_payload()
        transport = frame.transport()
        tcp_flags = transport.flags if isinstance(transport, Tcp) else None

        for rule in self.rules:
            if not rule.matches(payload, flow.nw_proto, flow.tp_dst,
                                tcp_flags, tp_src=flow.tp_src):
                continue
            key = (flow, rule.name)
            if key in self._alerted:
                continue
            self._alerted.add(key)
            self.alerts += 1
            verdicts.append(
                Verdict(
                    "attack",
                    {
                        "attack": rule.name.replace("|", "/"),
                        "severity": rule.severity,
                        "verdict": "malicious",
                    },
                )
            )

        scan = self._check_portscan(flow)
        if scan is not None:
            verdicts.append(scan)
        return verdicts

    def _check_portscan(self, flow: FlowNineTuple) -> Optional[Verdict]:
        if flow.nw_src is None or flow.tp_dst is None:
            return None
        if flow.nw_src in self._scan_alerted:
            return None
        now = self.sim.now
        ports = self._probe_history[flow.nw_src]
        is_new_port = flow.tp_dst not in ports
        ports[flow.tp_dst] = now
        if not is_new_port:
            return None  # repeat traffic to a known port: not a scan
        cutoff = now - PORTSCAN_WINDOW_S
        stale = [port for port, seen in ports.items() if seen < cutoff]
        for port in stale:
            del ports[port]
        if len(ports) >= PORTSCAN_THRESHOLD:
            self._scan_alerted.add(flow.nw_src)
            self.alerts += 1
            return Verdict(
                "attack",
                {
                    "attack": "SCAN portscan detected",
                    "severity": "medium",
                    "verdict": "malicious",
                    "ports": str(len(ports)),
                },
            )
        return None
