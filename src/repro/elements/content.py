"""Content-inspection (data-loss-prevention) element.

Watches payloads for administrator-configured sensitive keywords and
reports exfiltration attempts.  Unlike the IDS/virus elements, a hit
here is reported with a ``policy`` severity: by default the controller
logs it without blocking (``verdict=suspicious``), but an element can
be configured to request blocking (``verdict=malicious``).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.elements.base import ServiceElement, Verdict
from repro.elements.signatures import CONTENT_KEYWORDS
from repro.net.packet import Ethernet, FlowNineTuple


class ContentInspectionElement(ServiceElement):
    """A keyword-matching DLP service element."""

    service_type = "content"

    def __init__(self, sim, name, mac, ip,
                 keywords: Sequence[bytes] = CONTENT_KEYWORDS,
                 block_on_match: bool = False,
                 capacity_bps: float = 250e6,
                 per_packet_cost_s: float = 10e-6,
                 **kwargs):
        super().__init__(sim, name, mac, ip, capacity_bps=capacity_bps,
                         per_packet_cost_s=per_packet_cost_s, **kwargs)
        self.keywords = tuple(keywords)
        self.block_on_match = block_on_match
        self._flagged: Set[Tuple[FlowNineTuple, bytes]] = set()
        self.matches = 0

    def inspect(self, frame: Ethernet, flow: FlowNineTuple) -> List[Verdict]:
        payload = frame.app_payload()
        if not payload:
            return []
        verdicts: List[Verdict] = []
        for keyword in self.keywords:
            if keyword in payload and (flow, keyword) not in self._flagged:
                self._flagged.add((flow, keyword))
                self.matches += 1
                verdicts.append(
                    Verdict(
                        "content",
                        {
                            "attack": "DLP sensitive content",
                            "result": keyword.decode(errors="replace"),
                            "verdict": (
                                "malicious" if self.block_on_match
                                else "suspicious"
                            ),
                        },
                    )
                )
        return verdicts
