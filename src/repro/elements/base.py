"""The service-element base: capacity model, daemon, event reports.

**Capacity model.**  Processing one frame costs
``size * 8 / capacity_bps + per_packet_cost_s`` of element CPU time;
frames queue FIFO behind the busy engine and are tail-dropped beyond
``max_queue_bytes``.  The defaults are calibrated against the paper's
Section V.B.1 measurements: an IDS element forwards ~500 Mbps of
large-frame traffic in bypass terms and ~421 Mbps of an HTTP mix
(1500-byte data frames) once the per-packet inspection cost bites.

**Daemon.**  Every ``report_interval_s`` the element emits an *online*
message -- service type, CPU utilization (busy fraction over the
window), memory (queue occupancy), processed packets/s, active flows --
as a LiveSec-formatted UDP datagram that the ingress AS switch punts
to the controller (Section III.D.1).  Inspection verdicts become
*event report* messages through the same channel; the element itself
never drops or blocks user traffic (actions are the controller's job:
"the action is not taken by distributed service elements").
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Tuple

from repro.core import messages as svcmsg
from repro.net import packet as pkt
from repro.net.host import HOST_PORT, Host
from repro.net.packet import Ethernet, FlowNineTuple, extract_nine_tuple

DEFAULT_REPORT_INTERVAL_S = 0.5
DEFAULT_QUEUE_BYTES = 2_000_000  # ~2 MB of buffered frames


class Verdict:
    """What an inspection pass concluded about one frame."""

    def __init__(self, kind: str, detail: Optional[Dict[str, str]] = None):
        self.kind = kind  # "attack" | "protocol" | "virus" | "content"
        self.detail = detail or {}

    def __repr__(self) -> str:
        return f"<Verdict {self.kind} {self.detail}>"


class ServiceElement(Host):
    """Base class for all VM-based service elements."""

    service_type = "generic"

    def __init__(
        self,
        sim,
        name: str,
        mac: str,
        ip: str,
        capacity_bps: float = 500e6,
        per_packet_cost_s: float = 4.5e-6,
        max_queue_bytes: int = DEFAULT_QUEUE_BYTES,
        report_interval_s: float = DEFAULT_REPORT_INTERVAL_S,
        bypass: bool = False,
    ):
        super().__init__(sim, name, mac, ip)
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive (got {capacity_bps})")
        self.capacity_bps = capacity_bps
        self.per_packet_cost_s = per_packet_cost_s
        self.max_queue_bytes = max_queue_bytes
        self.report_interval_s = report_interval_s
        self.bypass = bypass
        self.certificate: Optional[str] = None
        # Fault state (driven by repro.faults): a failed element is a
        # crashed VM (drops everything, daemon dead); a hung element is
        # alive but unresponsive until ``_hung_until``.
        self.failed = False
        self._hung_until = 0.0
        # Engine state.
        self._busy_until = 0.0
        self._queue_bytes = 0
        self.processed_packets = 0
        self.processed_bytes = 0
        self.dropped_packets = 0
        self._busy_time_total = 0.0
        # Reporting deltas.
        self._last_report_packets = 0
        self._last_report_busy = 0.0
        self._active_flows: Dict[FlowNineTuple, float] = {}
        self.reports_sent = 0
        self.events_sent = 0
        # Stable per-name phase offset (zlib.crc32, not hash(): str
        # hashing is randomized per process and would break run-to-run
        # determinism) so element reports do not all land together.
        phase = (zlib.crc32(name.encode()) % 100) / 250.0
        self._daemon = sim.every(
            report_interval_s,
            self._send_online_message,
            start=sim.now + report_interval_s * (0.1 + phase),
        )

    # ------------------------------------------------------------------
    # Provisioning

    def provision(self, certificate: str) -> None:
        """Install the controller-issued certificate (out of band)."""
        self.certificate = certificate

    def shutdown(self) -> None:
        """Stop the daemon; the controller will mark us offline."""
        self._daemon.cancel()

    # ------------------------------------------------------------------
    # Fault injection (the VM's failure modes)

    def fail(self) -> None:
        """Crash the VM: daemon dies, every frame is dropped."""
        self.failed = True
        self._daemon.cancel()

    def restart(self) -> None:
        """Reboot a crashed VM: the daemon reports again (first report
        after one interval) and the engine starts clean."""
        if not self.failed:
            return
        self.failed = False
        self._hung_until = 0.0
        self._queue_bytes = 0
        self._busy_until = self.sim.now
        self._daemon = self.sim.every(
            self.report_interval_s, self._send_online_message
        )

    def hang(self, duration_s: float) -> None:
        """Freeze the VM for ``duration_s``: frames are dropped and no
        online messages go out, then it resumes by itself (its daemon
        keeps ticking, so the first post-hang report re-certifies it)."""
        if duration_s <= 0:
            raise ValueError(f"hang duration must be positive ({duration_s})")
        self._hung_until = max(self._hung_until, self.sim.now + duration_s)

    def set_report_interval(self, interval_s: float) -> None:
        """Retune the daemon cadence (the slow-report fault stretches
        it past the controller's liveness timeout)."""
        if interval_s <= 0:
            raise ValueError(f"interval must be positive ({interval_s})")
        self.report_interval_s = interval_s
        if not self.failed:
            self._daemon.set_interval(interval_s)

    @property
    def hung(self) -> bool:
        return self.sim.now < self._hung_until

    # ------------------------------------------------------------------
    # Data path

    def receive(self, frame: Ethernet, in_port: int) -> None:
        if self.failed or self.hung:
            self.dropped_packets += 1
            return
        if frame.ethertype == pkt.ETH_TYPE_ARP:
            super().receive(frame, in_port)
            return
        if frame.dst != self.mac:
            return
        cost = self._processing_cost(frame)
        if self._queue_bytes + frame.size > self.max_queue_bytes:
            self.dropped_packets += 1
            return
        now = self.sim.now
        start = max(now, self._busy_until)
        done = start + cost
        self._busy_until = done
        self._busy_time_total += cost
        self._queue_bytes += frame.size
        self.sim.schedule_at(done, self._finish_processing, frame)

    def _processing_cost(self, frame: Ethernet) -> float:
        serialization = frame.size * 8.0 / self.capacity_bps
        if self.bypass:
            return serialization
        return serialization + self.per_packet_cost_s

    def _finish_processing(self, frame: Ethernet) -> None:
        self._queue_bytes -= frame.size
        self.processed_packets += 1
        self.processed_bytes += frame.size
        flow = extract_nine_tuple(frame)
        self._active_flows[flow] = self.sim.now
        verdicts: List[Verdict] = []
        if not self.bypass:
            verdicts = self.inspect(frame, flow)
        for verdict in verdicts:
            self._send_event_report(verdict, flow)
        # Re-emit the frame unchanged: the AS switch's "flow the service
        # element sends back" entry restores the real destination.
        self.send(frame, HOST_PORT)

    def inspect(self, frame: Ethernet, flow: FlowNineTuple) -> List[Verdict]:
        """Subclass hook: examine one frame, return verdicts (if any)."""
        return []

    # ------------------------------------------------------------------
    # Daemon messages

    def current_load(self) -> Tuple[float, float, float]:
        """(cpu, memory, pps) over the last report window."""
        window = self.report_interval_s
        busy_delta = self._busy_time_total - self._last_report_busy
        packets_delta = self.processed_packets - self._last_report_packets
        cpu = min(1.0, busy_delta / window)
        memory = min(1.0, self._queue_bytes / self.max_queue_bytes)
        pps = packets_delta / window
        return cpu, memory, pps

    def _send_online_message(self) -> None:
        if self.failed or self.hung:
            return
        cpu, memory, pps = self.current_load()
        self._last_report_busy = self._busy_time_total
        self._last_report_packets = self.processed_packets
        self._expire_flows()
        message = svcmsg.OnlineMessage(
            element_mac=self.mac,
            certificate=self.certificate or "UNPROVISIONED",
            service_type=self.service_type,
            cpu=cpu,
            memory=memory,
            pps=pps,
            active_flows=len(self._active_flows),
        )
        self._send_service_frame(svcmsg.encode_online(message))
        self.reports_sent += 1

    def _send_event_report(self, verdict: Verdict, flow: FlowNineTuple) -> None:
        message = svcmsg.EventReportMessage(
            element_mac=self.mac,
            certificate=self.certificate or "UNPROVISIONED",
            kind=verdict.kind,
            flow=flow,
            detail=verdict.detail,
        )
        self._send_service_frame(svcmsg.encode_event(message))
        self.events_sent += 1

    def _send_service_frame(self, payload: bytes) -> None:
        frame = pkt.make_udp(
            src_mac=self.mac,
            dst_mac=svcmsg.CONTROLLER_MAC,
            src_ip=self.ip,
            dst_ip=svcmsg.CONTROLLER_IP,
            sport=svcmsg.SERVICE_MESSAGE_PORT,
            dport=svcmsg.SERVICE_MESSAGE_PORT,
            payload=payload,
        )
        frame.created_at = self.sim.now
        self.send(frame, HOST_PORT)

    def _expire_flows(self, max_idle_s: float = 10.0) -> None:
        now = self.sim.now
        stale = [f for f, seen in self._active_flows.items()
                 if now - seen > max_idle_s]
        for flow in stale:
            del self._active_flows[flow]

    # ------------------------------------------------------------------
    # Introspection

    def cpu_utilization(self) -> float:
        return self.current_load()[0]

    def stats(self) -> dict:
        return {
            "service_type": self.service_type,
            "processed_packets": self.processed_packets,
            "processed_bytes": self.processed_bytes,
            "dropped_packets": self.dropped_packets,
            "queue_bytes": self._queue_bytes,
            "reports_sent": self.reports_sent,
            "events_sent": self.events_sent,
        }
