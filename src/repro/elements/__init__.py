"""VM-based security service elements (Section III.D).

Service elements are off-path middleboxes living in the
Network-Periphery layer: ordinary hosts from the switch's point of
view, identified to the controller only through the in-band message
channel.  Each runs a *service daemon* that sends periodic online/load
messages and event reports, and a processing engine with an explicit
capacity model so overload is observable.

* :mod:`repro.elements.base` -- the capacity model and daemon,
* :mod:`repro.elements.ids` -- Snort-like intrusion detection,
* :mod:`repro.elements.l7filter` -- l7-filter-like protocol
  identification,
* :mod:`repro.elements.firewall` -- stateless ACL firewall,
* :mod:`repro.elements.stateful_firewall` -- SDFW-style stateful
  distributed firewall with replicated connection tracking,
* :mod:`repro.elements.scanner` -- virus scanning,
* :mod:`repro.elements.content` -- content inspection / DLP,
* :mod:`repro.elements.signatures` -- the rule/pattern definitions.
"""

from repro.elements.base import ServiceElement
from repro.elements.ids import IntrusionDetectionElement
from repro.elements.l7filter import ProtocolIdentificationElement
from repro.elements.firewall import FirewallElement
from repro.elements.stateful_firewall import StatefulFirewallElement
from repro.elements.scanner import VirusScanElement
from repro.elements.content import ContentInspectionElement
from repro.elements.ratelimit import RateAnomalyElement

ELEMENT_TYPES = {
    "ids": IntrusionDetectionElement,
    "l7": ProtocolIdentificationElement,
    "firewall": FirewallElement,
    "sfw": StatefulFirewallElement,
    "virus": VirusScanElement,
    "content": ContentInspectionElement,
    "ddos": RateAnomalyElement,
}

__all__ = [
    "ServiceElement",
    "IntrusionDetectionElement",
    "ProtocolIdentificationElement",
    "FirewallElement",
    "StatefulFirewallElement",
    "VirusScanElement",
    "ContentInspectionElement",
    "RateAnomalyElement",
    "ELEMENT_TYPES",
]
