"""Rate-anomaly (flood/DDoS) detection element.

A sixth service type beyond the paper's examples: watches per-source
packet rates and reports sources that exceed a threshold -- volumetric
attacks that signature matching cannot see.  Like every LiveSec
element it only *reports*; the controller decides and blocks at the
ingress (Section III.D.1's division of labour).

Detection uses a simple token-bucket per source IP: each packet
consumes one token, buckets refill at ``threshold_pps``; an empty
bucket means the source is sending faster than the threshold sustained
over roughly ``burst_s`` seconds.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.elements.base import ServiceElement, Verdict
from repro.net.packet import Ethernet, FlowNineTuple


class RateAnomalyElement(ServiceElement):
    """A per-source packet-rate anomaly detector."""

    service_type = "ddos"

    def __init__(self, sim, name, mac, ip,
                 threshold_pps: float = 2000.0,
                 burst_s: float = 0.5,
                 capacity_bps: float = 900e6,
                 per_packet_cost_s: float = 1.0e-6,
                 **kwargs):
        super().__init__(sim, name, mac, ip, capacity_bps=capacity_bps,
                         per_packet_cost_s=per_packet_cost_s, **kwargs)
        if threshold_pps <= 0:
            raise ValueError(f"threshold must be positive (got {threshold_pps})")
        self.threshold_pps = threshold_pps
        self.burst_tokens = threshold_pps * burst_s
        # src ip -> (tokens, last refill time)
        self._buckets: Dict[str, Tuple[float, float]] = {}
        self._flagged: Set[str] = set()
        self.floods_detected = 0

    def inspect(self, frame: Ethernet, flow: FlowNineTuple) -> List[Verdict]:
        src = flow.nw_src
        if src is None or src in self._flagged:
            return []
        now = self.sim.now
        tokens, last = self._buckets.get(src, (self.burst_tokens, now))
        tokens = min(self.burst_tokens,
                     tokens + (now - last) * self.threshold_pps)
        tokens -= 1.0
        self._buckets[src] = (tokens, now)
        if tokens >= 0:
            return []
        self._flagged.add(src)
        self.floods_detected += 1
        return [
            Verdict(
                "attack",
                {
                    "attack": "DDOS volumetric flood",
                    "severity": "high",
                    "verdict": "malicious",
                    "threshold_pps": str(int(self.threshold_pps)),
                },
            )
        ]

    def unflag(self, src_ip: str) -> None:
        """Administrative reset for a source (e.g. after remediation)."""
        self._flagged.discard(src_ip)
        self._buckets.pop(src_ip, None)
