"""Stateful distributed firewall element (SDFW-style).

A :class:`StatefulFirewallElement` is a :class:`FirewallElement` whose
admission decisions are backed by a replicated
:class:`~repro.core.conntrack.ConnTrackTable`:

* a packet of an ESTABLISHED connection is admitted without touching
  the ACL (``conntrack_hits`` vs ``acl_evaluations`` is how the chaos
  tests assert "zero mid-session re-evaluations"),
* the reply direction of an admitted connection is what *promotes* it
  to ESTABLISHED -- no mirrored ACL rule needed,
* every state transition is published to the element's replication
  group (peer firewalls of the same type) and reported to the
  controller over the in-band wire channel, so user-grain failover
  hands sessions to a replica that already holds their entries.

The element never blocks traffic itself (LiveSec principle: actions
are the controller's); a deny is reported exactly like the stateless
firewall's.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core import messages as svcmsg
from repro.core.conntrack import (
    CLOSED,
    ConnTrackTable,
    ConnTrackUpdate,
    ESTABLISHED,
    five_tuple_of,
)
from repro.elements.firewall import FirewallElement
from repro.elements.base import Verdict
from repro.net.packet import Ethernet, FlowNineTuple, Tcp

CONNTRACK_SWEEP_INTERVAL_S = 1.0


class StatefulFirewallElement(FirewallElement):
    """An ACL firewall with replicated connection tracking."""

    service_type = "sfw"

    def __init__(self, sim, name, mac, ip,
                 conntrack_idle_timeout_s: float = 60.0,
                 **kwargs):
        super().__init__(sim, name, mac, ip, **kwargs)
        self.conntrack = ConnTrackTable(
            idle_timeout_s=conntrack_idle_timeout_s
        )
        self.replication_group = None  # set by the deployment
        self.conntrack_hits = 0
        self.acl_evaluations = 0
        self.updates_applied = 0
        self.entries_resynced = 0
        self._conntrack_sweep = sim.every(
            CONNTRACK_SWEEP_INTERVAL_S, self._sweep_conntrack,
            start=sim.now + CONNTRACK_SWEEP_INTERVAL_S,
        )

    # ------------------------------------------------------------------
    # Replication plumbing

    def join_replication_group(self, group) -> None:
        self.replication_group = group
        group.register(self)

    def apply_conntrack_update(self, update: ConnTrackUpdate) -> None:
        """A peer replica's transition, delivered by the group."""
        self.conntrack.apply_update(update, self.sim.now)
        self.updates_applied += 1

    def restart(self) -> None:
        """Reboot with a bulk conntrack re-sync: a rebooted VM comes
        back empty, so before serving it pulls the fleet's ESTABLISHED
        table from a live peer -- connections admitted before the
        crash stay on the fast path when failover lands them back
        here."""
        if not self.failed:
            return
        super().restart()
        self.conntrack = ConnTrackTable(
            idle_timeout_s=self.conntrack.idle_timeout_s
        )
        if self.replication_group is not None:
            self.entries_resynced = self.replication_group.resync(self)

    def _publish(self, update: Optional[ConnTrackUpdate]) -> None:
        if update is None:
            return
        if self.replication_group is not None:
            self.replication_group.publish(self, update)
        # Controller visibility: transitions beyond NEW are worth a
        # wire report (NEW would double the in-band chatter for flows
        # that may never complete a handshake).
        if update.state in (ESTABLISHED, CLOSED):
            self._send_conntrack_report(update)

    def _send_conntrack_report(self, update: ConnTrackUpdate) -> None:
        message = svcmsg.ConnTrackMessage(
            element_mac=self.mac,
            certificate=self.certificate or "UNPROVISIONED",
            state=update.state,
            conn=update.key,
        )
        self._send_service_frame(svcmsg.encode_conntrack(message))

    def _sweep_conntrack(self) -> None:
        if self.failed or self.hung:
            return
        self.conntrack.expire(self.sim.now)

    # ------------------------------------------------------------------
    # Inspection

    def inspect(self, frame: Ethernet, flow: FlowNineTuple) -> List[Verdict]:
        key = five_tuple_of(flow)
        now = self.sim.now
        entry = self.conntrack.lookup(key)
        if entry is not None and entry.state == ESTABLISHED:
            # Fast path: tracked connection, no ACL re-evaluation.
            self.conntrack_hits += 1
            _, update = self.conntrack.observe(key, now, origin=self.name)
            self._publish(update)
            self._maybe_close(frame, key, now)
            return []
        if entry is not None:
            # Tracked but not yet established (NEW from either side, or
            # replicated state): admitted without re-consulting the ACL
            # -- this packet may be the reply that establishes it.
            self.conntrack_hits += 1
            _, update = self.conntrack.observe(key, now, origin=self.name)
            self._publish(update)
            self._maybe_close(frame, key, now)
            return []
        # Genuinely new connection: one ACL evaluation decides it.
        self.acl_evaluations += 1
        verdicts = super().inspect(frame, flow)
        if not verdicts:
            _, update = self.conntrack.observe(key, now, origin=self.name)
            self._publish(update)
        return verdicts

    def _maybe_close(self, frame: Ethernet, key, now: float) -> None:
        segment = frame.transport()
        if isinstance(segment, Tcp) and (
            "F" in segment.flags or "R" in segment.flags
        ):
            self._publish(self.conntrack.close(key, now, origin=self.name))

    # ------------------------------------------------------------------
    # Introspection

    def stats(self) -> dict:
        data = super().stats()
        data.update({
            "conntrack_entries": len(self.conntrack),
            "conntrack_states": self.conntrack.states(),
            "conntrack_hits": self.conntrack_hits,
            "acl_evaluations": self.acl_evaluations,
            "updates_applied": self.updates_applied,
            "entries_resynced": self.entries_resynced,
        })
        return data
