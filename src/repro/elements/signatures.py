"""Rule and pattern definitions for the security elements.

:class:`IdsRule` is a faithful miniature of a Snort rule: protocol and
port constraints plus a payload ``content`` match and an attack name.
``DEFAULT_IDS_RULES`` covers the attack classes the deployment's Snort
configuration would flag in the Figure 8 scenario (malicious web
access) plus the usual suspects.  ``L7_PATTERNS`` mirrors the classic
l7-filter pattern set: a byte signature over the first payload bytes
of a flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.net.packet import IP_PROTO_TCP, IP_PROTO_UDP


@dataclass(frozen=True)
class ContentMatch:
    """One Snort-style ``content`` clause with its modifiers.

    ``offset`` skips that many payload bytes before searching;
    ``depth`` bounds how far (from the offset) the search may look;
    ``nocase`` makes the match case-insensitive -- the same semantics
    as Snort's ``content:...; offset:N; depth:N; nocase;``.
    """

    content: bytes
    nocase: bool = False
    offset: int = 0
    depth: Optional[int] = None

    def matches(self, payload: bytes) -> bool:
        window = payload[self.offset:]
        if self.depth is not None:
            window = window[: self.depth]
        needle = self.content
        if self.nocase:
            window = window.lower()
            needle = needle.lower()
        return needle in window


@dataclass(frozen=True)
class IdsRule:
    """A Snort-style detection rule.

    ``content`` is the single-clause shorthand; ``contents`` takes a
    tuple of :class:`ContentMatch` clauses that must ALL match (Snort's
    multiple-content AND semantics).  At least one body/flag constraint
    is required, otherwise the rule would fire on all traffic.
    """

    name: str
    content: Optional[bytes] = None  # shorthand: one plain substring
    contents: Tuple[ContentMatch, ...] = ()
    nocase: bool = False  # applies to the shorthand ``content``
    nw_proto: Optional[int] = None
    tp_src: Optional[int] = None
    tp_dst: Optional[int] = None
    tcp_flags: Optional[str] = None  # exact flag string, e.g. "S"
    severity: str = "high"

    def _content_clauses(self) -> Tuple[ContentMatch, ...]:
        clauses = self.contents
        if self.content is not None:
            clauses = (ContentMatch(self.content, nocase=self.nocase),
                       *clauses)
        return clauses

    def matches(self, payload: bytes, nw_proto: Optional[int],
                tp_dst: Optional[int], tcp_flags: Optional[str],
                tp_src: Optional[int] = None) -> bool:
        if self.nw_proto is not None and self.nw_proto != nw_proto:
            return False
        if self.tp_dst is not None and self.tp_dst != tp_dst:
            return False
        if self.tp_src is not None and self.tp_src != tp_src:
            return False
        if self.tcp_flags is not None and self.tcp_flags != tcp_flags:
            return False
        clauses = self._content_clauses()
        if not clauses and self.tcp_flags is None:
            # A rule must constrain *something* about the packet body
            # or flags, otherwise it would fire on all traffic.
            return False
        return all(clause.matches(payload) for clause in clauses)


DEFAULT_IDS_RULES: Tuple[IdsRule, ...] = (
    IdsRule(
        name="EXPLOIT shellcode NOP sled",
        content=b"\x90\x90\x90\x90\x90\x90\x90\x90",
    ),
    IdsRule(
        name="MALWARE known C2 beacon",
        content=b"BEACON:cnc.evil.example",
    ),
    IdsRule(
        name="WEB-ATTACK SQL injection attempt",
        content=b"' OR '1'='1",
        nw_proto=IP_PROTO_TCP,
        tp_dst=80,
    ),
    IdsRule(
        name="WEB-ATTACK directory traversal",
        content=b"../../../../etc/passwd",
        nw_proto=IP_PROTO_TCP,
        tp_dst=80,
    ),
    IdsRule(
        name="WEB-ATTACK XSS script tag",
        content=b"<script>alert(",
        nw_proto=IP_PROTO_TCP,
    ),
    IdsRule(
        name="POLICY malicious website request",
        content=b"GET /malware/dropper.exe",
        nw_proto=IP_PROTO_TCP,
        tp_dst=80,
    ),
    IdsRule(
        name="DOS udp flood marker",
        content=b"FLOODFLOODFLOOD",
        nw_proto=IP_PROTO_UDP,
    ),
    IdsRule(
        name="EXPLOIT buffer overflow pattern",
        content=b"AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA",
    ),
    IdsRule(
        name="TROJAN backdoor handshake",
        content=b"PRIVMSG #bots :.login",
    ),
    IdsRule(
        name="SCAN null-payload SYN probe",
        tcp_flags="S",
        tp_dst=31337,
        nw_proto=IP_PROTO_TCP,
    ),
)


# First-payload byte signatures, after the classic l7-filter patterns.
# Checked in order; first hit wins.
L7_PATTERNS: Tuple[Tuple[str, bytes], ...] = (
    ("bittorrent", b"\x13BitTorrent protocol"),
    ("http", b"GET "),
    ("http", b"POST "),
    ("http", b"HTTP/1."),
    ("ssh", b"SSH-"),
    ("dns", b"\x00\x01\x00\x00"),
    ("smtp", b"EHLO "),
    ("smtp", b"HELO "),
    ("ftp", b"220 "),
    ("ssl", b"\x16\x03"),
    ("irc", b"NICK "),
)

# Virus signatures (EICAR-style byte strings).
VIRUS_SIGNATURES: Tuple[Tuple[str, bytes], ...] = (
    ("EICAR-Test-File", b"X5O!P%@AP[4\\PZX54(P^)7CC)7}$EICAR"),
    ("W32.Sim.Dropper", b"MZ\x90\x00SIMDROPPER"),
    ("JS.Sim.Downloader", b"eval(unescape('%73%69%6d'))"),
)

# Content-inspection keywords (DLP-style).
CONTENT_KEYWORDS: Tuple[bytes, ...] = (
    b"CONFIDENTIAL-INTERNAL-ONLY",
    b"SSN:",
    b"credit_card_number=",
)


def classify_l7(payload: bytes) -> Optional[str]:
    """The l7-filter decision for a first-payload buffer, or None."""
    for name, signature in L7_PATTERNS:
        if signature in payload[:256]:
            return name
    return None
