"""Protocol identification element (the deployment ports l7-filter).

Classifies each flow from the first payload-carrying packets by byte
signature (the l7-filter approach), reports the application to the
controller once per flow, and gives up after a bounded number of
unclassified packets -- also like l7-filter, which stops matching a
connection after ~10 packets.

Pattern matching over payloads is more expensive per packet than the
IDS's fixed-offset checks; the default capacity reflects the paper's
aggregate numbers (2 Gbps protocol identification vs 8 Gbps IDS from
the same 200-element pool, Section V.B.1).
"""

from __future__ import annotations

from typing import Dict, List

from repro.elements.base import ServiceElement, Verdict
from repro.elements.signatures import classify_l7
from repro.net.packet import Ethernet, FlowNineTuple

GIVE_UP_AFTER_PACKETS = 10


class ProtocolIdentificationElement(ServiceElement):
    """An l7-filter-like application classifier element."""

    service_type = "l7"

    def __init__(self, sim, name, mac, ip,
                 capacity_bps: float = 200e6,
                 per_packet_cost_s: float = 12e-6,
                 **kwargs):
        super().__init__(sim, name, mac, ip, capacity_bps=capacity_bps,
                         per_packet_cost_s=per_packet_cost_s, **kwargs)
        # flow -> application name, or packet count while unknown.
        self._classified: Dict[FlowNineTuple, str] = {}
        self._unclassified_counts: Dict[FlowNineTuple, int] = {}
        self.classifications = 0

    def inspect(self, frame: Ethernet, flow: FlowNineTuple) -> List[Verdict]:
        if flow in self._classified:
            return []
        count = self._unclassified_counts.get(flow, 0)
        if count >= GIVE_UP_AFTER_PACKETS:
            return []
        payload = frame.app_payload()
        application = classify_l7(payload) if payload else None
        if application is None:
            self._unclassified_counts[flow] = count + 1
            if self._unclassified_counts[flow] == GIVE_UP_AFTER_PACKETS:
                self._classified[flow] = "unknown"
                return [
                    Verdict("protocol", {"application": "unknown"})
                ]
            return []
        self._classified[flow] = application
        self._unclassified_counts.pop(flow, None)
        self.classifications += 1
        return [Verdict("protocol", {"application": application})]

    def classified_flows(self) -> Dict[FlowNineTuple, str]:
        return dict(self._classified)
