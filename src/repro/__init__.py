"""LiveSec reproduction: OpenFlow-based security management.

A from-scratch, simulation-backed reproduction of *LiveSec: Towards
Effective Security Management in Large-Scale Production Networks*
(ICDCS Workshops 2012).  See README.md for the architecture overview
and DESIGN.md for the paper-to-module map.

Quickstart::

    from repro import build_livesec_network, PolicyTable, Policy
    from repro.core.policy import FlowSelector, PolicyAction

    policies = PolicyTable()
    policies.add(Policy(
        name="inspect-internet",
        selector=FlowSelector(dst_ip="10.255.255.254"),
        action=PolicyAction.CHAIN,
        service_chain=("ids",),
    ))
    net = build_livesec_network(
        topology="linear", policies=policies, elements=[("ids", 2)],
    )
    net.start()
    # ... drive traffic with repro.workloads, read net.controller.log
"""

from repro.core import (
    CompiledPolicyTable,
    LiveSecController,
    LiveSecNetwork,
    MonitoringComponent,
    NetworkInformationBase,
    Policy,
    PolicyAction,
    PolicyConflictError,
    PolicyIntent,
    PolicyTable,
    build_livesec_network,
    compile_intents,
)
from repro.net import Simulator

__version__ = "1.0.0"

__all__ = [
    "LiveSecController",
    "LiveSecNetwork",
    "MonitoringComponent",
    "NetworkInformationBase",
    "Policy",
    "PolicyAction",
    "PolicyConflictError",
    "PolicyIntent",
    "PolicyTable",
    "CompiledPolicyTable",
    "compile_intents",
    "Simulator",
    "build_livesec_network",
    "__version__",
]
