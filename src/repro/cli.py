"""Command-line interface: ``python -m repro <command>``.

A terminal front door to the reproduction, for poking at the system
without writing a script:

* ``campus``      -- run the Figure 7/8 campus scenario, render both
                     moments, optionally dump the monitoring DB to JSON,
* ``throughput``  -- measure HTTP goodput through N IDS elements (the
                     E2 configuration),
* ``latency``     -- the legacy-vs-LiveSec ping comparison (E5),
* ``loadbalance`` -- per-element load shares under a chosen dispatcher,
* ``stats``       -- run HTTP traffic and print the controller's
                     observability snapshot (text, JSON, or Prometheus),
* ``chaos``       -- seeded fault-injection run (element crashes, optional
                     OpenFlow-channel drops) scoring the controller's
                     failure recovery; ``--record`` saves the event log
                     as JSONL,
* ``replay``      -- reconstruct and render any past moment of a recorded
                     run from a JSONL event-log file,
* ``scale``       -- build the paper-scale FIT deployment and print the
                     controller's view of it,
* ``fluid``       -- run a seeded CBR mix under the fluid fast-forward
                     kernel next to the packet-level oracle and diff
                     the outcomes (optionally asserting equivalence),
* ``shards``      -- boot an N-shard control plane and print the
                     coordinator's fabric status,
* ``apps``        -- list the controller's loaded apps with their bus
                     subscriptions and per-app event counters,
* ``policy``      -- compile/verify a policy intent file (``check``) or
                     hot-reload it into a running scenario (``reload``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import Policy, PolicyTable, build_livesec_network
from repro.analysis.ascii_charts import bar_chart
from repro.analysis.metrics import mbps
from repro.core.policy import FlowSelector, PolicyAction
from repro.core.visualization import render_snapshot

GATEWAY_IP = "10.255.255.254"


def _ids_policies(chain=("ids",)) -> PolicyTable:
    table = PolicyTable()
    table.begin(source="cli").add(Policy(
        name="inspect-internet",
        selector=FlowSelector(dst_ip=GATEWAY_IP),
        action=PolicyAction.CHAIN,
        service_chain=tuple(chain),
    )).commit()
    return table


def cmd_campus(args: argparse.Namespace) -> int:
    from repro.workloads import AttackWebFlow
    from repro.workloads.users import UserBehavior

    net = build_livesec_network(
        topology="fit", policies=_ids_policies(("l7", "ids")),
        num_ovs=3, num_aps=1, wired_users=0, wireless_users=5,
        host_timeout_s=8.0,
    )
    for element_type, index in (("ids", 0), ("ids", 1), ("l7", 0), ("l7", 1)):
        net.add_element(element_type, net.topology.as_switches[index])
    net.start()
    users = [
        UserBehavior(net.sim, net.host(f"wifi{i + 1}"), GATEWAY_IP,
                     profile="web" if i < 4 else "ssh", rate_bps=400e3)
        for i in range(5)
    ]
    for user in users:
        user.join()
    net.run(6.0)
    print("--- normal environment (paper Figure 7) ---")
    print(render_snapshot(net.monitoring.snapshot()))

    users[3].leave()
    users[0].rate_bps = 2e6
    users[0].switch_profile("bittorrent")
    AttackWebFlow(net.sim, users[2].host, GATEWAY_IP, rate_bps=1e6,
                  duration_s=5.0).start()
    net.run(12.0)
    print("\n--- events (paper Figure 8) ---")
    print(render_snapshot(net.monitoring.snapshot()))

    if args.dump_json:
        from repro.core.webdb import WebDatabase

        rows = WebDatabase(net.monitoring).dump(args.dump_json)
        print(f"\nwrote {rows} event rows to {args.dump_json}")
    return 0


def cmd_throughput(args: argparse.Namespace) -> int:
    from repro.workloads import HttpFlow

    net = build_livesec_network(
        topology="linear", policies=_ids_policies(),
        num_as=6, hosts_per_as=2, access_bandwidth_bps=1e9,
        core_bandwidth_bps=10e9, gateway_bandwidth_bps=10e9,
    )
    for index in range(args.elements):
        net.add_element("ids", net.topology.as_switches[index % 4],
                        bypass=args.bypass)
    net.start()
    hosts = [h for h in net.topology.hosts if h is not net.topology.gateway]
    flows = [
        HttpFlow(net.sim, host, GATEWAY_IP, rate_bps=250e6,
                 packet_size=1500).start()
        for host in hosts[: max(2, 2 * args.elements)]
    ]
    net.run(0.5)
    before = net.gateway.rx_bytes
    net.run(args.seconds)
    goodput = mbps((net.gateway.rx_bytes - before) * 8, args.seconds)
    for flow in flows:
        flow.stop()
    mode = "bypass" if args.bypass else "inspected HTTP"
    print(f"{args.elements} element(s), {mode}: {goodput:.0f} Mbps"
          f"  (paper: 421 per inspecting element, ~500 bypass)")
    shares = {
        element.name: round(element.processed_bytes * 8 / args.seconds / 1e6)
        for element in net.elements
    }
    if shares:
        print(bar_chart(shares, unit=" Mbps"))
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    from repro.baselines import build_traditional_network

    wan = 0.8e-3
    baseline = build_traditional_network(num_access=2, hosts_per_access=1,
                                         with_middlebox=False)
    baseline.run(1.0)
    baseline.announce_all()
    baseline.run(0.5)
    host = baseline.host("h1")
    for index in range(args.pings):
        baseline.sim.schedule(index * 0.2, host.ping, baseline.gateway.ip)
    baseline.run(args.pings * 0.2 + 1.0)
    legacy_ms = (sum(host.ping_rtts) / len(host.ping_rtts) + 2 * wan) * 1e3

    net = build_livesec_network(topology="linear", num_as=2, hosts_per_as=1)
    net.start()
    user = net.host("h1_1")
    for index in range(args.pings + 1):
        net.sim.schedule(index * 0.2, user.ping, GATEWAY_IP)
    net.run((args.pings + 1) * 0.2 + 1.0)
    livesec_ms = (
        sum(user.ping_rtts[1:]) / len(user.ping_rtts[1:]) + 2 * wan
    ) * 1e3

    overhead = livesec_ms / legacy_ms - 1
    print(f"legacy:  {legacy_ms:.3f} ms")
    print(f"livesec: {livesec_ms:.3f} ms")
    print(f"overhead: {overhead * 100:.1f}%  (paper: ~10%)")
    return 0


def cmd_loadbalance(args: argparse.Namespace) -> int:
    from repro.workloads import HttpFlow
    from repro.core.loadbalance import load_deviation

    net = build_livesec_network(
        topology="linear", policies=_ids_policies(),
        dispatcher=args.dispatcher, num_as=6, hosts_per_as=2,
        access_bandwidth_bps=1e9, core_bandwidth_bps=10e9,
        gateway_bandwidth_bps=10e9,
    )
    for index in range(4):
        net.add_element("ids", net.topology.as_switches[index])
    net.start()
    hosts = [h for h in net.topology.hosts if h is not net.topology.gateway]
    flows = []
    for repeat in range(5):
        for offset, host in enumerate(hosts[:8]):
            flow = HttpFlow(net.sim, host, GATEWAY_IP, rate_bps=5e6,
                            packet_size=1500)
            flow.start(delay_s=repeat * 0.3 + offset * 0.05)
            flows.append(flow)
    net.run(2.0)
    before = [e.processed_packets for e in net.elements]
    net.run(args.seconds)
    rates = [
        (element.processed_packets - b) / args.seconds
        for element, b in zip(net.elements, before)
    ]
    for flow in flows:
        flow.stop()
    print(f"dispatcher: {args.dispatcher}")
    print(bar_chart({e.name: round(r) for e, r in zip(net.elements, rates)},
                    unit=" pps"))
    print(f"deviation: {load_deviation(rates) * 100:.1f}%"
          f"  (paper: <=5% with minload)")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import format_snapshot, to_json, to_prometheus_text
    from repro.workloads import HttpFlow

    quick = args.quick
    seconds = 1.5 if quick else args.seconds
    net = build_livesec_network(
        topology="linear", policies=_ids_policies(),
        num_as=2 if quick else 4, hosts_per_as=2,
    )
    for index in range(1 if quick else 2):
        net.add_element("ids", net.topology.as_switches[index])
    net.start()
    hosts = [h for h in net.topology.hosts if h is not net.topology.gateway]
    flows = [
        HttpFlow(net.sim, host, GATEWAY_IP, rate_bps=2e6,
                 packet_size=1500).start(delay_s=offset * 0.05)
        for offset, host in enumerate(hosts)
    ]
    net.run(seconds)
    for flow in flows:
        flow.stop()
    net.run(net.controller.idle_timeout_s + 1.0)

    snapshot = net.metrics_snapshot()
    if args.format == "json":
        print(to_json(snapshot, indent=2))
    elif args.format == "prometheus":
        print(to_prometheus_text(snapshot), end="")
    else:
        title = (f"livesec stats: {len(hosts)} hosts,"
                 f" {len(net.elements)} element(s), {seconds:g}s of traffic")
        print(format_snapshot(snapshot, title=title))
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import (
        run_chaos_scenario,
        run_compromised_switch_scenario,
        run_shard_failover_scenario,
    )

    if args.scenario == "compromised-switch":
        report = run_compromised_switch_scenario(
            seed=args.seed,
            variant=args.variant,
            duration_s=args.duration,
            record_jsonl=args.record,
        )
    elif args.scenario == "shard-failover":
        report = run_shard_failover_scenario(
            seed=args.seed,
            duration_s=args.duration,
            record_jsonl=args.record,
        )
    else:
        report = run_chaos_scenario(
            seed=args.seed,
            fail_mode=args.fail_mode,
            crash=args.crash,
            duration_s=args.duration,
            channel_drop_rate=args.channel_drop_rate,
            record_jsonl=args.record,
            shards=args.shards,
        )
    if args.format == "json":
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
    if args.record:
        print(f"recorded {report.events} events to {args.record}"
              f" (digest {report.event_digest})")
    if args.assert_recovered and report.unrecovered_sessions > 0:
        print(f"FAIL: {report.unrecovered_sessions} session(s) left"
              " unrecovered", file=sys.stderr)
        return 1
    if args.assert_detected and not report.quarantined_dpids:
        print("FAIL: compromised switch was never detected/quarantined",
              file=sys.stderr)
        return 1
    if args.assert_rehomed:
        if report.rehomed_switches == 0:
            print("FAIL: no switch was re-homed off the dead shard",
                  file=sys.stderr)
            return 1
        if report.roam_survived is False:
            print("FAIL: the roamed session did not survive its handoff",
                  file=sys.stderr)
            return 1
    return 0


def cmd_apps(args: argparse.Namespace) -> int:
    from repro.workloads import HttpFlow

    net = build_livesec_network(
        topology="linear", policies=_ids_policies(),
        num_as=2, hosts_per_as=2,
    )
    net.add_element("ids", net.topology.as_switches[0])
    net.start()
    if not args.no_traffic:
        # A short burst of traffic so the per-app counters show the
        # dispatch paths actually taken, not a wall of zeros.
        hosts = [
            h for h in net.topology.hosts if h is not net.topology.gateway
        ]
        flows = [
            HttpFlow(net.sim, host, GATEWAY_IP, rate_bps=2e6,
                     packet_size=1500).start(delay_s=offset * 0.05)
            for offset, host in enumerate(hosts)
        ]
        net.run(1.5)
        for flow in flows:
            flow.stop()
    descriptions = [app.describe() for app in net.controller.apps]
    if args.format == "json":
        import json

        print(json.dumps(descriptions, indent=2))
        return 0
    for description in descriptions:
        print(f"{description['name']}: {description['summary']}")
        if description["subscriptions"]:
            print("  subscriptions:")
            for sub in description["subscriptions"]:
                priority = (
                    f"  (priority {sub['priority']})"
                    if sub["priority"] else ""
                )
                print(f"    {sub['event']:<22} -> "
                      f"{sub['handler']}{priority}")
        if description["counters"]:
            print("  events handled:")
            for event, count in description["counters"].items():
                print(f"    {event:<22} {count}")
        print()
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.core.events import EventLog
    from repro.core.visualization import MonitoringComponent

    log = EventLog.load(args.file)
    monitoring = MonitoringComponent(log)
    if args.digest_only:
        print(f"{len(log)} events, digest {log.digest()}")
        return 0
    snapshot = (
        monitoring.replay(until=args.at) if args.at is not None
        else monitoring.snapshot()
    )
    if args.format == "json":
        import json

        from repro.core.webdb import snapshot_to_dict

        print(json.dumps(snapshot_to_dict(snapshot), indent=2))
        print(f"{len(log)} events, digest {log.digest()}", file=sys.stderr)
    else:
        print(render_snapshot(snapshot))
        print(f"\n{len(log)} events, digest {log.digest()}")
    return 0


def cmd_policy_check(args: argparse.Namespace) -> int:
    from repro.core.policy_compiler import compile_intents
    from repro.core.policy_io import PolicyFormatError, load_intents
    from repro.elements import ELEMENT_TYPES

    try:
        intents, default = load_intents(args.file)
        result = compile_intents(
            intents,
            default_action=default,
            service_types=set(ELEMENT_TYPES),
        )
    except (PolicyFormatError, ValueError) as exc:
        print(f"{args.file}: {exc}", file=sys.stderr)
        return 1
    if args.format == "json":
        import json

        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(f"{args.file}:")
        print(result.report())
    return 0 if result.ok else 1


def cmd_policy_reload(args: argparse.Namespace) -> int:
    """Demonstrate a hot-reload mid-scenario: traffic runs under the
    baseline table, the file swaps in atomically, established sessions
    survive, and the event log records exactly one POLICY_CHANGED."""
    from repro.core.events import EventKind
    from repro.core.policy_compiler import PolicyConflictError
    from repro.core.policy_io import PolicyFormatError
    from repro.workloads import HttpFlow

    net = build_livesec_network(
        topology="linear", policies=_ids_policies(),
        num_as=2, hosts_per_as=2,
    )
    net.add_element("ids", net.topology.as_switches[0])
    net.start()
    hosts = [h for h in net.topology.hosts if h is not net.topology.gateway]
    flows = [
        HttpFlow(net.sim, host, GATEWAY_IP, rate_bps=2e6,
                 packet_size=1500).start(delay_s=offset * 0.05)
        for offset, host in enumerate(hosts)
    ]
    net.run(1.0)
    sessions_before = len(net.controller.sessions)
    version_before = net.controller.policies.version
    try:
        commit = net.reload_policies(args.file)
    except (PolicyConflictError, PolicyFormatError) as exc:
        print(f"reload rejected; table v{version_before} keeps serving:")
        print(exc, file=sys.stderr)
        return 1
    net.run(1.0)
    for flow in flows:
        flow.stop()
    net.run(net.controller.idle_timeout_s + 1.0)
    changes = net.controller.log.query(kind=EventKind.POLICY_CHANGED)
    print(f"reloaded {args.file}:"
          f" v{version_before} -> v{commit.version}"
          f" ({commit.policies} policies,"
          f" +{len(commit.added)}/-{len(commit.removed)})")
    print(f"sessions preserved across swap: {sessions_before}"
          f" (policy-changed events: {len(changes)})")
    if args.record:
        net.controller.log.save(args.record)
        print(f"recorded {len(net.controller.log)} events to {args.record}"
              f" (digest {net.controller.log.digest()})")
    return 0


def cmd_ops(args: argparse.Namespace) -> int:
    """Runtime app operations, live: boot the demo deployment, keep
    traffic flowing, and stop/reload/restart a controller app mid-run.
    Prints the typed per-app status table and the session journal's
    stable digest (the ``make ops-smoke`` determinism anchor)."""
    from repro.core.journal import SessionJournal
    from repro.workloads import HttpFlow

    net = build_livesec_network(
        topology="linear", policies=_ids_policies(),
        num_as=2, hosts_per_as=2,
    )
    net.add_element("ids", net.topology.as_switches[0])
    net.start()
    journal = SessionJournal.attach(net.controller.log)
    controller = net.controller
    hosts = [h for h in net.topology.hosts if h is not net.topology.gateway]
    flows = [
        HttpFlow(net.sim, host, GATEWAY_IP, rate_bps=2e6,
                 packet_size=1500).start(delay_s=offset * 0.05)
        for offset, host in enumerate(hosts)
    ]
    third = max(0.5, args.seconds / 3.0)
    net.run(third)
    actions: List[str] = []
    if args.action in ("stop", "cycle"):
        controller.stop_app(args.app)
        actions.append(f"stopped {args.app!r}")
        net.run(third)
    if args.action in ("reload", "cycle"):
        # A genuinely changed config where the app has a knob to turn
        # (the monitor's poll cadence); otherwise the same config, so
        # the hash check demonstrates the no-op skip.
        app = controller.app(args.app)
        config = dict(app.config)
        if args.app == "monitor":
            base = config.get("stats_interval_s") or 1.0
            config["stats_interval_s"] = base / 2
        before = app.config_hash()
        reloaded = controller.reload_app(args.app, config)
        if reloaded.config_hash() == before and reloaded is app:
            actions.append(f"reload of {args.app!r} skipped (same config)")
        else:
            actions.append(f"reloaded {args.app!r} with changed config")
    if args.action in ("restart", "cycle"):
        controller.start_app(args.app)
        actions.append(f"started {args.app!r}")
    net.run(max(0.0, args.seconds - 2 * third) + third)
    for flow in flows:
        flow.stop()
    net.run(controller.idle_timeout_s + 1.0)

    statuses = controller.app_status()
    if args.format == "json":
        import json

        print(json.dumps({
            "actions": actions,
            "apps": [s.to_dict() for s in statuses.values()],
            "journal": journal.summary(),
            "journal_digest": journal.digest(),
        }, indent=2))
    else:
        for action in actions:
            print(f"ops: {action}")
        print("app                 state        subs timers events"
              "  config")
        for status in statuses.values():
            print(f"{status.name:<19} {status.state:<12}"
                  f" {status.subscriptions:>4} {status.timers:>6}"
                  f" {status.events_handled:>6}"
                  f"  {status.config_hash[:10]}")
        summary = journal.summary()
        print(f"journal: {summary['records']} records over"
              f" {summary['sessions']} sessions"
              f" (open={summary['open']} close={summary['close']}"
              f" failover={summary['failover']}"
              f" still-open={summary['still_open']})")
        print(f"journal digest {journal.digest()}")
    if args.record:
        count = controller.log.save(args.record)
        replayed = SessionJournal.replay(args.record)
        verdict = (
            "replay digest matches"
            if replayed.digest() == journal.digest()
            else "REPLAY DIGEST MISMATCH"
        )
        print(f"recorded {count} events to {args.record} ({verdict})")
        if replayed.digest() != journal.digest():
            return 1
    return 0


def cmd_journal(args: argparse.Namespace) -> int:
    """Replay a recorded deployment's session history end to end."""
    from repro.core.journal import SessionJournal

    journal = SessionJournal.replay(args.file)
    if args.digest_only:
        print(f"{len(journal)} records, journal digest {journal.digest()}")
        return 0
    if args.format == "json":
        import json

        records = journal.records()
        if args.session is not None:
            records = [r for r in records if r.session == args.session]
        print(json.dumps({
            "summary": journal.summary(),
            "records": [
                {"time": r.time, "session": r.session,
                 "action": r.action, "detail": r.detail}
                for r in records
            ],
            "digest": journal.digest(),
        }, indent=2))
        return 0
    if args.session is not None:
        history = journal.session(args.session)
        if history is None:
            print(f"no session {args.session} in {args.file}",
                  file=sys.stderr)
            return 1
        for record in history.records:
            detail = " ".join(
                f"{k}={v}" for k, v in sorted(record.detail.items())
            )
            print(f"t={record.time:9.4f}s  {record.action:<9} {detail}")
        return 0
    summary = journal.summary()
    print(f"{args.file}: {summary['records']} journal records,"
          f" {summary['sessions']} sessions")
    for history in journal.sessions():
        opened = (
            f"opened t={history.opened_at:.3f}s"
            if history.opened_at is not None else "opened before window"
        )
        closed = (
            f"closed t={history.closed_at:.3f}s"
            if history.closed_at is not None else "still open"
        )
        print(f"  session {history.session_id}:"
              f" {'/'.join(history.actions())}"
              f" ({opened}, {closed})")
    print(f"journal digest {journal.digest()}")
    return 0


def cmd_shards(args: argparse.Namespace) -> int:
    """Boot a sharded control plane, run a little traffic, and print
    the coordinator's fabric view: ownership, liveness, per-shard NIB
    digests, and the inter-shard protocol counters."""
    from repro.core.deployment import build_sharded_network
    from repro.workloads import CbrUdpFlow

    if args.topology == "fattree":
        topology_kwargs = {"k": 4, "hosts_per_edge": 1}
    else:
        topology_kwargs = {
            "num_as": max(3, args.shards), "hosts_per_as": 1,
        }
    net = build_sharded_network(
        num_shards=args.shards,
        topology=args.topology,
        policies=_ids_policies,
        elements=[("ids", args.shards)],
        **topology_kwargs,
    )
    net.start()
    hosts = [h for h in net.topology.hosts if h is not net.topology.gateway]
    flows = [
        CbrUdpFlow(net.sim, host, GATEWAY_IP, rate_bps=2e6,
                   duration_s=args.seconds).start()
        for host in hosts
    ]
    net.run(args.seconds + 0.5)
    for flow in flows:
        flow.stop()
    status = net.status()
    if args.format == "json":
        import json

        print(json.dumps(status, indent=2, default=list))
        return 0
    print(f"shard fabric: {status['num_shards']} shard(s),"
          f" topology={args.topology},"
          f" federated elements={status['federated_elements']}")
    for shard in status["shards"]:
        live = "live" if shard["live"] else "DOWN"
        digest = (shard["nib_digest"] or "-")[:12]
        print(f"  shard {shard['shard']}: {live:<4}"
              f" dpids={list(shard['dpids'])}"
              f" hosts={shard['hosts']}"
              f" sessions={shard['sessions']}"
              f" nib={digest}")
    print(f"  protocol: handoffs={status['handoff_sessions']}"
          f" remote-rule-ops={status['remote_rule_ops']}"
          f" rehomed-switches={status['rehomed_switches']}")
    print(f"  combined digest: {net.event_digest()[:16]}")
    return 0


def cmd_fluid(args: argparse.Namespace) -> int:
    """Run one seeded CBR mix twice -- packet oracle, then fluid
    kernel -- and print the per-flow diff, the kernel's counters, and
    a greppable control-plane digest line."""
    from repro.workloads.fluidcheck import compare_modes

    tolerance = args.tolerance if args.tolerance is not None else (
        2 if args.link_flap else 0
    )
    result = compare_modes(
        args.seed,
        delivered_tolerance_frames=tolerance,
        num_flows=args.flows,
        traffic_s=args.seconds,
        link_flap=args.link_flap,
    )
    packet, fluid = result["packet"], result["fluid"]
    print(f"seed {args.seed}: {args.flows} flows over {args.seconds}s"
          f" ({'with' if args.link_flap else 'no'} link flap)")
    print(f"  events: packet={packet.events_processed}"
          f" fluid={fluid.events_processed}"
          f" ({packet.events_processed / max(1, fluid.events_processed):.1f}x"
          " fewer)")
    print("  flow  sent-pkts  delivered-bytes  oracle-delta")
    for row_p, row_f in zip(packet.flows, fluid.flows):
        delta = row_f["delivered_bytes"] - row_p["delivered_bytes"]
        print(f"  {row_f['index']:>4}"
              f"  {row_f['sent_packets']:>9}"
              f"  {row_f['delivered_bytes']:>15}"
              f"  {delta:>+12}")
    stats = fluid.fluid_stats
    print(f"  fluid: synthesized={stats['packets_synthesized']}"
          f" time_saved={stats['time_saved_s']:.2f}s"
          f" resumes={stats['resumes']}"
          f" refusals={stats['refusals']}"
          f" materializations={stats['materializations']}")
    print(f"  digest {fluid.control_digest}")
    if not result["equivalent"]:
        print(f"  NOT EQUIVALENT: digests_equal={result['digests_equal']}"
              f" flow_mismatches={len(result['flow_mismatches'])}")
        for mismatch in result["flow_mismatches"][:5]:
            print(f"    packet={mismatch['packet']} fluid={mismatch['fluid']}")
        if args.assert_equivalent:
            return 1
    elif args.assert_equivalent:
        print("  equivalent: fluid run matches the packet oracle")
    return 0


def cmd_scale(args: argparse.Namespace) -> int:
    net = build_livesec_network(
        topology="fit", policies=_ids_policies(),
        elements=[("ids", 160), ("l7", 40)],
    )
    net.start(warmup_s=3.0)
    status = net.status()
    print("paper-scale FIT deployment is up:")
    print(f"  switches:  {status['nib']['switches']}"
          f"  (full mesh: {status['nib']['full_mesh']})")
    print(f"  elements:  {status['registry']['online']} online"
          f"  {status['registry']['by_type']}")
    print(f"  hosts:     {status['nib']['hosts'] - status['nib']['elements']}")
    print(f"  events:    {status['events']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LiveSec reproduction: terminal demos of the system.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    campus = sub.add_parser("campus", help="Figure 7/8 campus scenario")
    campus.add_argument("--dump-json", metavar="PATH", default=None,
                        help="write the monitoring DB to a JSON file")
    campus.set_defaults(func=cmd_campus)

    throughput = sub.add_parser("throughput",
                                help="HTTP goodput through IDS elements")
    throughput.add_argument("--elements", type=int, default=2)
    throughput.add_argument("--seconds", type=float, default=1.5)
    throughput.add_argument("--bypass", action="store_true")
    throughput.set_defaults(func=cmd_throughput)

    latency = sub.add_parser("latency", help="legacy vs LiveSec ping RTT")
    latency.add_argument("--pings", type=int, default=30)
    latency.set_defaults(func=cmd_latency)

    loadbalance = sub.add_parser("loadbalance",
                                 help="per-element load shares")
    loadbalance.add_argument(
        "--dispatcher", default="minload",
        choices=["polling", "hash", "queuing", "minload"],
    )
    loadbalance.add_argument("--seconds", type=float, default=6.0)
    loadbalance.set_defaults(func=cmd_loadbalance)

    stats = sub.add_parser(
        "stats", help="run traffic and print the observability snapshot"
    )
    stats.add_argument("--quick", action="store_true",
                       help="small topology, short run (CI smoke test)")
    stats.add_argument("--seconds", type=float, default=4.0,
                       help="traffic duration (ignored with --quick)")
    stats.add_argument("--format", default="text",
                       choices=["text", "json", "prometheus"])
    stats.set_defaults(func=cmd_stats)

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection run scoring controller recovery",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-plan seed (same seed => identical run)")
    chaos.add_argument("--fail-mode", default="open",
                       choices=["open", "closed"], dest="fail_mode",
                       help="policy behavior when no healthy element remains")
    chaos.add_argument("--crash", default="one", choices=["one", "all"],
                       help="crash one IDS (peers absorb) or the whole fleet")
    chaos.add_argument("--duration", type=float, default=12.0,
                       help="simulated seconds to run")
    chaos.add_argument("--channel-drop-rate", type=float, default=0.0,
                       dest="channel_drop_rate",
                       help="also drop this fraction of OpenFlow messages")
    chaos.add_argument("--scenario", default="element-crash",
                       choices=["element-crash", "compromised-switch",
                                "shard-failover"],
                       help="element-crash (default) kills service VMs;"
                            " compromised-switch turns the data plane"
                            " adversarial under forwarding accountability;"
                            " shard-failover roams a host across pods then"
                            " kills a controller shard")
    chaos.add_argument("--shards", type=int, default=1,
                       help="run the element-crash scenario on a sharded"
                            " control plane with this many shards")
    chaos.add_argument("--assert-rehomed", action="store_true",
                       dest="assert_rehomed",
                       help="exit 1 unless a dead shard's switches re-homed"
                            " and the roamed session survived its handoff"
                            " (shard-failover scenario)")
    chaos.add_argument("--variant", default="skip-waypoint",
                       choices=["skip-waypoint", "misroute", "tag-strip"],
                       help="compromised-switch misbehavior variant")
    chaos.add_argument("--assert-detected", action="store_true",
                       help="exit 1 unless a switch was quarantined"
                            " (compromised-switch scenario)")
    chaos.add_argument("--format", default="text", choices=["text", "json"])
    chaos.add_argument("--assert-recovered", action="store_true",
                       dest="assert_recovered",
                       help="exit 1 if any session is left unrecovered")
    chaos.add_argument("--record", metavar="PATH", default=None,
                       help="save the run's event log as JSONL for"
                            " 'repro replay'")
    chaos.set_defaults(func=cmd_chaos)

    replay = sub.add_parser(
        "replay",
        help="reconstruct a recorded run's view from a JSONL event log",
    )
    replay.add_argument("file", help="JSONL event-log file (from"
                                     " 'chaos --record' or EventLog.save)")
    replay.add_argument("--at", type=float, default=None,
                        help="render the view at this moment (default:"
                             " after the last event)")
    replay.add_argument("--format", default="text",
                        choices=["text", "json"])
    replay.add_argument("--digest-only", action="store_true",
                        dest="digest_only",
                        help="print only the event count and sha256 digest")
    replay.set_defaults(func=cmd_replay)

    scale = sub.add_parser("scale", help="paper-scale FIT deployment")
    scale.set_defaults(func=cmd_scale)

    fluid = sub.add_parser(
        "fluid",
        help="fluid fast-forward kernel vs the packet-level oracle",
    )
    fluid.add_argument("--seed", type=int, default=0,
                       help="workload seed (default 0)")
    fluid.add_argument("--flows", type=int, default=8,
                       help="CBR flows in the mix (default 8)")
    fluid.add_argument("--seconds", type=float, default=4.0,
                       help="traffic window in sim-seconds (default 4)")
    fluid.add_argument("--link-flap", action="store_true",
                       help="down/restore an access link mid-run")
    fluid.add_argument("--tolerance", type=int, default=None,
                       help="allowed per-flow delivered-frame delta"
                            " (default 0; 2 with --link-flap)")
    fluid.add_argument("--assert-equivalent", action="store_true",
                       help="exit 1 unless the fluid run matches the oracle")
    fluid.set_defaults(func=cmd_fluid)

    shards = sub.add_parser(
        "shards",
        help="boot a sharded control plane and print the fabric status",
    )
    shards.add_argument("--shards", type=int, default=4,
                        help="number of controller shards")
    shards.add_argument("--topology", default="linear",
                        choices=["linear", "fattree"],
                        help="physical fabric (fattree partitions per-pod"
                             " when shards == k)")
    shards.add_argument("--seconds", type=float, default=2.0,
                        help="simulated seconds of traffic before the"
                             " status snapshot")
    shards.add_argument("--format", default="text",
                        choices=["text", "json"])
    shards.set_defaults(func=cmd_shards)

    ops = sub.add_parser(
        "ops",
        help="runtime app operations: live status, stop/reload/restart"
             " an app mid-traffic, session-journal digest",
    )
    ops.add_argument("--app", default="monitor",
                     help="target app name (default: monitor)")
    ops.add_argument("--action", default="status",
                     choices=["status", "stop", "reload", "restart",
                              "cycle"],
                     help="what to do mid-traffic; 'cycle' runs"
                          " stop -> reload (changed config) -> start")
    ops.add_argument("--seconds", type=float, default=3.0,
                     help="total simulated traffic window (default 3)")
    ops.add_argument("--format", default="text", choices=["text", "json"])
    ops.add_argument("--record", metavar="PATH", default=None,
                     help="save the event log as JSONL and verify the"
                          " journal replays to the same digest")
    ops.set_defaults(func=cmd_ops)

    journal = sub.add_parser(
        "journal",
        help="replay a recorded run's session journal end to end",
    )
    journal.add_argument("file", help="JSONL event-log file (from"
                                      " 'ops --record' or EventLog.save)")
    journal.add_argument("--session", type=int, default=None,
                         help="show one session's full history")
    journal.add_argument("--format", default="text",
                         choices=["text", "json"])
    journal.add_argument("--digest-only", action="store_true",
                         dest="digest_only",
                         help="print only the record count and digest")
    journal.set_defaults(func=cmd_journal)

    apps = sub.add_parser(
        "apps",
        help="list loaded controller apps, subscriptions and counters",
    )
    apps.add_argument("--format", default="text", choices=["text", "json"])
    apps.add_argument("--no-traffic", action="store_true", dest="no_traffic",
                      help="skip the warm-up traffic (counters stay zero)")
    apps.set_defaults(func=cmd_apps)

    policy = sub.add_parser(
        "policy",
        help="compile, verify and hot-reload policy intent files",
    )
    policy_sub = policy.add_subparsers(dest="policy_command", required=True)
    check = policy_sub.add_parser(
        "check",
        help="compile + conflict-verify a policy file (no network built);"
             " exit 1 on error findings",
    )
    check.add_argument("file", help="policy JSON (v1 'policies' or"
                                    " v2 'intents' schema)")
    check.add_argument("--format", default="text", choices=["text", "json"])
    check.set_defaults(func=cmd_policy_check)
    reload_ = policy_sub.add_parser(
        "reload",
        help="hot-reload a policy file into a running demo scenario",
    )
    reload_.add_argument("file", help="policy JSON to swap in mid-run")
    reload_.add_argument("--record", metavar="PATH", default=None,
                         help="save the run's event log as JSONL for"
                              " 'repro replay'")
    reload_.set_defaults(func=cmd_policy_reload)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
