"""The service-element <-> controller message channel (Section III.D.1).

Service elements communicate with the LiveSec controller *in band*: a
service daemon on the element "encapsulates the desired message in a
UDP packet with specialized format and identifier"; because the
controller never installs a flow entry for this UDP flow, every message
is punted to it as a PacketIn.  Two message kinds exist:

* **online** -- periodic liveness + service type + load (CPU, memory,
  packets per second),
* **event report** -- emitted when the element produces a result
  (attack detected, protocol identified), carrying the flow's tuple
  and the verdict.

Messages carry a certificate issued by the controller; messages with a
bad certificate are rejected and the offending element's traffic is
dropped at its ingress switch (the paper's certification mechanism).

The wire format is a pipe-separated ASCII encoding -- human-readable in
packet dumps, trivially parseable, versioned by the leading magic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.net.packet import FlowNineTuple

MAGIC = b"LIVESEC1"
SERVICE_MESSAGE_PORT = 9099
# The nominal L2/L3 destination of element messages.  Any address works
# (the ingress AS switch punts the flow regardless); using fixed ones
# keeps element frames recognizable in traces.
CONTROLLER_MAC = "02:4c:53:00:00:01"
CONTROLLER_IP = "10.255.255.253"


def issue_certificate(secret: str, element_mac: str) -> str:
    """The certificate the controller issues to a legitimate element."""
    digest = hashlib.sha256(f"{secret}|{element_mac}".encode()).hexdigest()
    return digest[:16]


@dataclass
class OnlineMessage:
    """Periodic liveness + load report from a service element."""

    element_mac: str
    certificate: str
    service_type: str  # "ids" | "l7" | "firewall" | ...
    cpu: float  # 0..1 utilization
    memory: float  # 0..1 footprint
    pps: float  # processed packets per second
    active_flows: int = 0


@dataclass
class EventReportMessage:
    """A service result: attack found, protocol identified, ..."""

    element_mac: str
    certificate: str
    kind: str  # "attack" | "protocol" | "virus" | ...
    flow: Optional[FlowNineTuple]
    detail: Dict[str, str] = field(default_factory=dict)


class MessageFormatError(ValueError):
    """Raised when a payload is not a well-formed LiveSec message."""


def is_service_message(payload: bytes) -> bool:
    """Cheap check used by the controller's message-parsing module to
    decide whether a punted UDP frame is element traffic."""
    return payload.startswith(MAGIC + b"|")


def encode_online(message: OnlineMessage) -> bytes:
    parts = [
        MAGIC.decode(),
        message.certificate,
        "ONLINE",
        f"mac={message.element_mac}",
        f"type={message.service_type}",
        f"cpu={message.cpu:.4f}",
        f"mem={message.memory:.4f}",
        f"pps={message.pps:.1f}",
        f"flows={message.active_flows}",
    ]
    return "|".join(parts).encode()


def encode_event(message: EventReportMessage) -> bytes:
    parts = [
        MAGIC.decode(),
        message.certificate,
        "EVENT",
        f"mac={message.element_mac}",
        f"kind={message.kind}",
        f"flow={_encode_flow(message.flow)}",
    ]
    # Detail keys are namespaced with "d." on the wire so they can
    # never shadow the protocol fields above.
    parts.extend(
        f"d.{key}={value}" for key, value in sorted(message.detail.items())
    )
    return "|".join(parts).encode()


def decode(payload: bytes):
    """Parse a service message payload.

    Returns an :class:`OnlineMessage` or :class:`EventReportMessage`.
    Raises :class:`MessageFormatError` on malformed input (the
    controller treats those as illegitimate traffic).
    """
    try:
        text = payload.decode()
    except UnicodeDecodeError as exc:
        raise MessageFormatError("not ASCII") from exc
    fields_list = text.split("|")
    if len(fields_list) < 3 or fields_list[0] != MAGIC.decode():
        raise MessageFormatError(f"bad magic in {text[:40]!r}")
    certificate = fields_list[1]
    kind = fields_list[2]
    kv = _parse_kv(fields_list[3:])
    if kind == "ONLINE":
        try:
            return OnlineMessage(
                element_mac=kv["mac"],
                certificate=certificate,
                service_type=kv["type"],
                cpu=float(kv["cpu"]),
                memory=float(kv["mem"]),
                pps=float(kv["pps"]),
                active_flows=int(kv.get("flows", "0")),
            )
        except (KeyError, ValueError) as exc:
            raise MessageFormatError(f"bad ONLINE fields: {kv}") from exc
    if kind == "EVENT":
        try:
            flow = _decode_flow(kv.pop("flow"))
            mac = kv.pop("mac")
            event_kind = kv.pop("kind")
        except KeyError as exc:
            raise MessageFormatError(f"bad EVENT fields: {kv}") from exc
        detail = {
            key[2:]: value
            for key, value in kv.items()
            if key.startswith("d.")
        }
        return EventReportMessage(
            element_mac=mac,
            certificate=certificate,
            kind=event_kind,
            flow=flow,
            detail=detail,
        )
    raise MessageFormatError(f"unknown message kind {kind!r}")


def _parse_kv(parts) -> Dict[str, str]:
    kv: Dict[str, str] = {}
    for part in parts:
        if "=" not in part:
            raise MessageFormatError(f"bad field {part!r}")
        key, _, value = part.partition("=")
        kv[key] = value
    return kv


def _encode_flow(flow: Optional[FlowNineTuple]) -> str:
    if flow is None:
        return "-"
    return ",".join("" if item is None else str(item) for item in flow)


def _decode_flow(text: str) -> Optional[FlowNineTuple]:
    if text == "-":
        return None
    parts = text.split(",")
    if len(parts) != 9:
        raise MessageFormatError(f"bad flow tuple {text!r}")

    def opt_int(value: str) -> Optional[int]:
        return int(value) if value else None

    def opt_str(value: str) -> Optional[str]:
        return value or None

    return FlowNineTuple(
        vlan=opt_int(parts[0]),
        dl_src=parts[1],
        dl_dst=parts[2],
        dl_type=int(parts[3]),
        nw_src=opt_str(parts[4]),
        nw_dst=opt_str(parts[5]),
        nw_proto=opt_int(parts[6]),
        tp_src=opt_int(parts[7]),
        tp_dst=opt_int(parts[8]),
    )
