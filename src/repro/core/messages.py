"""The service-element <-> controller message channel (Section III.D.1).

Service elements communicate with the LiveSec controller *in band*: a
service daemon on the element "encapsulates the desired message in a
UDP packet with specialized format and identifier"; because the
controller never installs a flow entry for this UDP flow, every message
is punted to it as a PacketIn.  Two message kinds exist:

* **online** -- periodic liveness + service type + load (CPU, memory,
  packets per second),
* **event report** -- emitted when the element produces a result
  (attack detected, protocol identified), carrying the flow's tuple
  and the verdict.

Messages carry a certificate issued by the controller; messages with a
bad certificate are rejected and the offending element's traffic is
dropped at its ingress switch (the paper's certification mechanism).

The wire format is a pipe-separated ASCII encoding -- human-readable in
packet dumps, trivially parseable, and versioned by the leading magic:
each supported version is one :class:`WireCodec` in the
:data:`CODECS` registry, keyed by its magic, and :func:`decode`
dispatches on the payload's prefix.  Parsing is *strict*: duplicate
keys, unknown fields, and out-of-range load values are format errors,
not silently accepted -- a report that passed certification but lied
about its shape must not feed garbage into the load balancer.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.net.packet import FlowNineTuple

MAGIC = b"LIVESEC1"
SERVICE_MESSAGE_PORT = 9099
# The nominal L2/L3 destination of element messages.  Any address works
# (the ingress AS switch punts the flow regardless); using fixed ones
# keeps element frames recognizable in traces.
CONTROLLER_MAC = "02:4c:53:00:00:01"
CONTROLLER_IP = "10.255.255.253"


def issue_certificate(secret: str, element_mac: str) -> str:
    """The certificate the controller issues to a legitimate element."""
    digest = hashlib.sha256(f"{secret}|{element_mac}".encode()).hexdigest()
    return digest[:16]


@dataclass
class OnlineMessage:
    """Periodic liveness + load report from a service element."""

    element_mac: str
    certificate: str
    service_type: str  # "ids" | "l7" | "firewall" | ...
    cpu: float  # 0..1 utilization
    memory: float  # 0..1 footprint
    pps: float  # processed packets per second
    active_flows: int = 0


@dataclass
class EventReportMessage:
    """A service result: attack found, protocol identified, ..."""

    element_mac: str
    certificate: str
    kind: str  # "attack" | "protocol" | "virus" | ...
    flow: Optional[FlowNineTuple]
    detail: Dict[str, str] = field(default_factory=dict)


@dataclass
class ConnTrackMessage:
    """A stateful firewall's connection-state transition report.

    ``conn`` is the connection's IP five-tuple
    ``(nw_src, nw_dst, nw_proto, tp_src, tp_dst)``; ``state`` is
    NEW/ESTABLISHED/CLOSED.  Bounded chatter: elements report
    transitions, never per-packet hits.
    """

    element_mac: str
    certificate: str
    state: str
    conn: tuple  # (nw_src, nw_dst, nw_proto, tp_src, tp_dst)


ServiceMessage = Union[OnlineMessage, EventReportMessage, ConnTrackMessage]


class MessageFormatError(ValueError):
    """Raised when a payload is not a well-formed LiveSec message."""


# ======================================================================
# Versioned wire codecs

_ONLINE_REQUIRED = ("mac", "type", "cpu", "mem", "pps")
_ONLINE_OPTIONAL = ("flows",)


class WireCodec:
    """One wire-format version: encode and strictly decode messages.

    Subclass-per-version; instances are registered in :data:`CODECS`
    under their :attr:`magic`.  The decode side owns *all* validation
    -- structure, field inventory, value ranges -- so the handlers
    downstream only ever see well-formed typed messages.
    """

    magic: bytes = MAGIC

    # ---------------------------------------------------------- encode

    def encode_online(self, message: OnlineMessage) -> bytes:
        parts = [
            self.magic.decode(),
            message.certificate,
            "ONLINE",
            f"mac={message.element_mac}",
            f"type={message.service_type}",
            f"cpu={message.cpu:.4f}",
            f"mem={message.memory:.4f}",
            f"pps={message.pps:.1f}",
            f"flows={message.active_flows}",
        ]
        return "|".join(parts).encode()

    def encode_event(self, message: EventReportMessage) -> bytes:
        parts = [
            self.magic.decode(),
            message.certificate,
            "EVENT",
            f"mac={message.element_mac}",
            f"kind={message.kind}",
            f"flow={self._encode_flow(message.flow)}",
        ]
        # Detail keys are namespaced with "d." on the wire so they can
        # never shadow the protocol fields above.
        parts.extend(
            f"d.{key}={value}" for key, value in sorted(message.detail.items())
        )
        return "|".join(parts).encode()

    def encode_conntrack(self, message: ConnTrackMessage) -> bytes:
        parts = [
            self.magic.decode(),
            message.certificate,
            "CONNTRACK",
            f"mac={message.element_mac}",
            f"state={message.state}",
            f"conn={self._encode_conn(message.conn)}",
        ]
        return "|".join(parts).encode()

    # ---------------------------------------------------------- decode

    def decode(self, fields_list: List[str]) -> ServiceMessage:
        """Parse the ``|``-split payload (magic already verified)."""
        if len(fields_list) < 3:
            raise MessageFormatError("truncated message")
        certificate = fields_list[1]
        kind = fields_list[2]
        kv = self._parse_kv(fields_list[3:])
        if kind == "ONLINE":
            return self._decode_online(certificate, kv)
        if kind == "EVENT":
            return self._decode_event(certificate, kv)
        if kind == "CONNTRACK":
            return self._decode_conntrack(certificate, kv)
        raise MessageFormatError(f"unknown message kind {kind!r}")

    def _decode_online(
        self, certificate: str, kv: Dict[str, str]
    ) -> OnlineMessage:
        self._check_inventory(kv, _ONLINE_REQUIRED, _ONLINE_OPTIONAL)
        try:
            message = OnlineMessage(
                element_mac=kv["mac"],
                certificate=certificate,
                service_type=kv["type"],
                cpu=float(kv["cpu"]),
                memory=float(kv["mem"]),
                pps=float(kv["pps"]),
                active_flows=int(kv.get("flows", "0")),
            )
        except ValueError as exc:
            raise MessageFormatError(f"bad ONLINE fields: {kv}") from exc
        # Range validation: a certified element can still send garbage
        # (bug, corruption); out-of-range load must not reach the
        # balancer's scoring.
        for name, value, upper in (
            ("cpu", message.cpu, 1.0),
            ("mem", message.memory, 1.0),
            ("pps", message.pps, None),
        ):
            if not math.isfinite(value) or value < 0.0 or (
                upper is not None and value > upper
            ):
                raise MessageFormatError(
                    f"ONLINE {name} out of range: {value!r}"
                )
        if message.active_flows < 0:
            raise MessageFormatError(
                f"ONLINE flows negative: {message.active_flows}"
            )
        return message

    def _decode_event(
        self, certificate: str, kv: Dict[str, str]
    ) -> EventReportMessage:
        try:
            flow = self._decode_flow(kv.pop("flow"))
            mac = kv.pop("mac")
            event_kind = kv.pop("kind")
        except KeyError as exc:
            raise MessageFormatError(f"bad EVENT fields: {kv}") from exc
        detail: Dict[str, str] = {}
        for key, value in kv.items():
            if not key.startswith("d."):
                raise MessageFormatError(f"unknown EVENT field {key!r}")
            detail[key[2:]] = value
        return EventReportMessage(
            element_mac=mac,
            certificate=certificate,
            kind=event_kind,
            flow=flow,
            detail=detail,
        )

    _CONNTRACK_STATES = ("NEW", "ESTABLISHED", "CLOSED")

    def _decode_conntrack(
        self, certificate: str, kv: Dict[str, str]
    ) -> ConnTrackMessage:
        self._check_inventory(kv, ("mac", "state", "conn"), ())
        state = kv["state"]
        if state not in self._CONNTRACK_STATES:
            raise MessageFormatError(f"bad CONNTRACK state {state!r}")
        return ConnTrackMessage(
            element_mac=kv["mac"],
            certificate=certificate,
            state=state,
            conn=self._decode_conn(kv["conn"]),
        )

    # ---------------------------------------------------------- helpers

    @staticmethod
    def _parse_kv(parts: List[str]) -> Dict[str, str]:
        kv: Dict[str, str] = {}
        for part in parts:
            if "=" not in part:
                raise MessageFormatError(f"bad field {part!r}")
            key, _, value = part.partition("=")
            if key in kv:
                # A duplicated key means the sender (or something on
                # the path) is confused; last-wins would let a crafted
                # second copy silently override the first.
                raise MessageFormatError(f"duplicate field {key!r}")
            kv[key] = value
        return kv

    @staticmethod
    def _check_inventory(kv, required, optional) -> None:
        missing = [key for key in required if key not in kv]
        if missing:
            raise MessageFormatError(f"missing fields {missing}")
        unknown = [
            key for key in kv if key not in required and key not in optional
        ]
        if unknown:
            raise MessageFormatError(f"unknown fields {unknown}")

    @staticmethod
    def _encode_flow(flow: Optional[FlowNineTuple]) -> str:
        if flow is None:
            return "-"
        return ",".join("" if item is None else str(item) for item in flow)

    @staticmethod
    def _decode_flow(text: str) -> Optional[FlowNineTuple]:
        if text == "-":
            return None
        parts = text.split(",")
        if len(parts) != 9:
            raise MessageFormatError(f"bad flow tuple {text!r}")

        def opt_int(value: str) -> Optional[int]:
            return int(value) if value else None

        def opt_str(value: str) -> Optional[str]:
            return value or None

        try:
            return FlowNineTuple(
                vlan=opt_int(parts[0]),
                dl_src=parts[1],
                dl_dst=parts[2],
                dl_type=int(parts[3]),
                nw_src=opt_str(parts[4]),
                nw_dst=opt_str(parts[5]),
                nw_proto=opt_int(parts[6]),
                tp_src=opt_int(parts[7]),
                tp_dst=opt_int(parts[8]),
            )
        except ValueError as exc:
            raise MessageFormatError(f"bad flow tuple {text!r}") from exc

    @staticmethod
    def _encode_conn(conn: tuple) -> str:
        if len(conn) != 5:
            raise ValueError(f"bad five-tuple {conn!r}")
        return ",".join("" if item is None else str(item) for item in conn)

    @staticmethod
    def _decode_conn(text: str) -> tuple:
        parts = text.split(",")
        if len(parts) != 5:
            raise MessageFormatError(f"bad five-tuple {text!r}")
        try:
            return (
                parts[0] or None,
                parts[1] or None,
                int(parts[2]) if parts[2] else None,
                int(parts[3]) if parts[3] else None,
                int(parts[4]) if parts[4] else None,
            )
        except ValueError as exc:
            raise MessageFormatError(f"bad five-tuple {text!r}") from exc


#: Codec registry, keyed by wire magic.  ``decode`` dispatches here;
#: adding a format revision means registering a new codec under a new
#: magic, never silently changing an existing one.
CODECS: Dict[bytes, WireCodec] = {MAGIC: WireCodec()}

#: The version new messages are encoded with.
CURRENT = CODECS[MAGIC]


def is_service_message(payload: bytes) -> bool:
    """Cheap check used by the controller's packet classification to
    decide whether a punted UDP frame is element traffic."""
    return any(payload.startswith(magic + b"|") for magic in CODECS)


def encode_online(message: OnlineMessage) -> bytes:
    return CURRENT.encode_online(message)


def encode_event(message: EventReportMessage) -> bytes:
    return CURRENT.encode_event(message)


def encode_conntrack(message: ConnTrackMessage) -> bytes:
    return CURRENT.encode_conntrack(message)


def decode(payload: bytes) -> ServiceMessage:
    """Parse a service message payload.

    Returns an :class:`OnlineMessage` or :class:`EventReportMessage`.
    Raises :class:`MessageFormatError` on malformed input (the
    controller treats those as illegitimate traffic): bad magic,
    unknown kind, duplicate or unknown fields, truncated flow tuples,
    and out-of-range load values are all rejected.
    """
    try:
        text = payload.decode()
    except UnicodeDecodeError as exc:
        raise MessageFormatError("not ASCII") from exc
    fields_list = text.split("|")
    codec = CODECS.get(fields_list[0].encode())
    if codec is None:
        raise MessageFormatError(f"bad magic in {text[:40]!r}")
    return codec.decode(fields_list)
