"""The global policy table (Sections IV.A, III.A).

"The LiveSec controller keeps a global policy table that is
pre-configured and managed by the network administrator.  The policy
table describes whether or which security service element should be
traversed for various end-to-end flows."

A :class:`Policy` couples a :class:`FlowSelector` (which end-to-end
flows it governs) with an action: allow, drop, or steer through a
*chain* of service types.  Policies are consulted on the first packet
of each flow, highest priority first; the first match wins.  The
default when nothing matches is configurable and defaults to allow
(plain end-to-end routing).

The live table is *transactional*: every change -- one policy or a
wholesale compiled swap -- goes through :meth:`PolicyTable.begin` /
:meth:`PolicyTransaction.commit`, which applies atomically, bumps the
monotonic version stamp exactly once, and notifies commit subscribers
(the controller turns those into ``PolicyReloaded`` bus events).  The
historical ``add``/``remove`` mutators survive as thin compat shims
over single-operation transactions, counted as deprecated API calls.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from enum import Enum
from functools import lru_cache
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.net.packet import FlowNineTuple


class PolicyAction(Enum):
    """What to do with flows a policy selects."""

    ALLOW = "allow"
    DROP = "drop"
    CHAIN = "chain"


class Granularity(Enum):
    """Load-balancing granularity for steered flows (Section IV.B)."""

    FLOW = "flow"
    USER = "user"


class FailMode(Enum):
    """What a CHAIN policy does when no healthy element remains.

    ``OPEN`` keeps traffic flowing uninspected (availability over
    inspection); ``CLOSED`` blocks the governed flows at their ingress
    switch until an element returns (inspection over availability).
    A policy without an explicit mode inherits the controller-wide
    ``on_no_element`` default.
    """

    OPEN = "open"
    CLOSED = "closed"


# ======================================================================
# IPv4 helpers (shared with the policy compiler's match-space algebra)


def ip_to_int(ip: str) -> int:
    """A dotted-quad IPv4 address as a 32-bit integer (strict)."""
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {ip!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"not an IPv4 address: {ip!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"not an IPv4 address: {ip!r}")
        value = (value << 8) | octet
    return value


@lru_cache(maxsize=4096)
def parse_cidr(cidr: str) -> Tuple[int, int]:
    """``"a.b.c.d/len"`` as ``(network_int, prefix_len)`` (strict:
    the host bits must be zero, so a typo'd work zone fails loudly)."""
    base, sep, bits = cidr.partition("/")
    if not sep or not bits.isdigit():
        raise ValueError(f"not CIDR notation (a.b.c.d/len): {cidr!r}")
    length = int(bits)
    if length > 32:
        raise ValueError(f"CIDR prefix length out of range: {cidr!r}")
    network = ip_to_int(base)
    mask = ((1 << length) - 1) << (32 - length) if length else 0
    if network & ~mask & 0xFFFFFFFF:
        raise ValueError(f"host bits set in CIDR {cidr!r}")
    return network, length


def cidr_contains(cidr: str, ip: Optional[str]) -> bool:
    """Whether ``ip`` falls inside the CIDR block (False for None or
    non-IPv4 strings)."""
    if ip is None:
        return False
    network, length = parse_cidr(cidr)
    try:
        value = ip_to_int(ip)
    except ValueError:
        return False
    mask = ((1 << length) - 1) << (32 - length) if length else 0
    return (value & mask) == network


def _octet_prefix_match(prefix: str, ip: str) -> bool:
    """Octet-aligned string-prefix match: ``"10.1"`` matches
    ``10.1.x.y`` but never ``10.10.x.y`` (the historical raw
    ``startswith`` did).  A trailing dot pins the boundary explicitly.
    """
    if not prefix:
        return True
    if ip == prefix:
        return True
    if prefix.endswith("."):
        return ip.startswith(prefix)
    return ip.startswith(prefix + ".")


@dataclass(frozen=True)
class FlowSelector:
    """A predicate over the 9-tuple.  ``None`` fields match anything.

    ``src_cidr`` / ``dst_cidr`` are real CIDR work-zone selectors
    (``"10.1.0.0/16"``).  ``src_ip_prefix`` / ``dst_ip_prefix`` are the
    historical dotted string prefixes ("10.0." style); bare prefixes
    are octet-aligned, so ``"10.1"`` no longer matches ``10.10.0.1``.
    """

    src_mac: Optional[str] = None
    dst_mac: Optional[str] = None
    src_ip: Optional[str] = None
    dst_ip: Optional[str] = None
    src_ip_prefix: Optional[str] = None
    dst_ip_prefix: Optional[str] = None
    src_cidr: Optional[str] = None
    dst_cidr: Optional[str] = None
    nw_proto: Optional[int] = None
    tp_src: Optional[int] = None
    tp_dst: Optional[int] = None
    vlan: Optional[int] = None

    def __post_init__(self) -> None:
        # Malformed CIDR must fail at definition time, not lookup time.
        if self.src_cidr is not None:
            parse_cidr(self.src_cidr)
        if self.dst_cidr is not None:
            parse_cidr(self.dst_cidr)

    def matches(self, flow: FlowNineTuple) -> bool:
        checks = (
            (self.src_mac, flow.dl_src),
            (self.dst_mac, flow.dl_dst),
            (self.src_ip, flow.nw_src),
            (self.dst_ip, flow.nw_dst),
            (self.nw_proto, flow.nw_proto),
            (self.tp_src, flow.tp_src),
            (self.tp_dst, flow.tp_dst),
            (self.vlan, flow.vlan),
        )
        for want, got in checks:
            if want is not None and want != got:
                return False
        if self.src_ip_prefix is not None:
            if flow.nw_src is None or not _octet_prefix_match(
                self.src_ip_prefix, flow.nw_src
            ):
                return False
        if self.dst_ip_prefix is not None:
            if flow.nw_dst is None or not _octet_prefix_match(
                self.dst_ip_prefix, flow.nw_dst
            ):
                return False
        if self.src_cidr is not None:
            if not cidr_contains(self.src_cidr, flow.nw_src):
                return False
        if self.dst_cidr is not None:
            if not cidr_contains(self.dst_cidr, flow.nw_dst):
                return False
        return True

    def specificity(self) -> int:
        """How many fields are pinned (used as a tie-break)."""
        return sum(
            1
            for value in (
                self.src_mac, self.dst_mac, self.src_ip, self.dst_ip,
                self.src_ip_prefix, self.dst_ip_prefix,
                self.src_cidr, self.dst_cidr, self.nw_proto,
                self.tp_src, self.tp_dst, self.vlan,
            )
            if value is not None
        )


@dataclass
class Policy:
    """One row of the global policy table."""

    name: str
    selector: FlowSelector
    action: PolicyAction
    service_chain: Tuple[str, ...] = ()
    granularity: Granularity = Granularity.FLOW
    inspect_reply: bool = True
    priority: int = 100
    fail_mode: Optional[FailMode] = None
    hits: int = 0

    def __post_init__(self) -> None:
        if self.action is PolicyAction.CHAIN and not self.service_chain:
            raise ValueError(f"policy {self.name!r}: CHAIN needs a service_chain")
        if self.action is not PolicyAction.CHAIN and self.service_chain:
            raise ValueError(
                f"policy {self.name!r}: service_chain requires action=CHAIN"
            )
        if self.fail_mode is not None and self.action is not PolicyAction.CHAIN:
            raise ValueError(
                f"policy {self.name!r}: fail_mode requires action=CHAIN"
            )


def _table_order(policy: Policy) -> Tuple[int, int]:
    """Match order: highest priority first, most specific breaks ties
    (stable, so insertion order breaks exact ties)."""
    return (-policy.priority, -policy.selector.specificity())


@dataclass(frozen=True)
class PolicyCommit:
    """The record of one atomic table swap, handed to commit
    subscribers (and carried by the ``PolicyReloaded`` bus event)."""

    version: int
    added: Tuple[str, ...]
    removed: Tuple[str, ...]
    source: str
    policies: int
    default_action: PolicyAction


class PolicyTransaction:
    """Staged changes against a :class:`PolicyTable`.

    All mutation happens on a private copy; the live table is untouched
    until :meth:`commit`, which swaps the whole row set in atomically
    (one version bump, one commit notification) -- or never, if the
    transaction is aborted or :meth:`commit` with ``verify=True``
    rejects it.  ``validate()`` reports structural problems and
    pairwise conflicts without committing anything.
    """

    def __init__(self, table: "PolicyTable", source: str = "api"):
        self._table = table
        self.source = source
        self._rows: List[Policy] = list(table._policies)
        self._by_name: Dict[str, Policy] = {p.name: p for p in self._rows}
        self._default = table.default_action
        self._added: List[str] = []
        self._removed: List[str] = []
        self._closed = False

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("transaction already committed or aborted")

    # ------------------------------------------------------------------
    # Staging

    def add(self, policy: Policy) -> "PolicyTransaction":
        """Stage one policy (duplicate names rejected immediately)."""
        self._ensure_open()
        if policy.name in self._by_name:
            raise ValueError(f"duplicate policy name {policy.name!r}")
        self._rows.append(policy)
        self._by_name[policy.name] = policy
        self._added.append(policy.name)
        return self

    def remove(self, name: str) -> Optional[Policy]:
        """Stage one removal; returns the staged-out policy or None."""
        self._ensure_open()
        policy = self._by_name.pop(name, None)
        if policy is None:
            return None
        self._rows.remove(policy)
        if name in self._added:
            self._added.remove(name)
        else:
            self._removed.append(name)
        return policy

    def replace_all(
        self,
        policies: Iterable[Policy],
        default_action: Optional[PolicyAction] = None,
    ) -> "PolicyTransaction":
        """Stage a wholesale swap: the new row set replaces everything."""
        self._ensure_open()
        new_rows = list(policies)
        names = [p.name for p in new_rows]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate policy names {sorted(duplicates)}")
        old_names = {p.name for p in self._table._policies}
        new_names = set(names)
        self._rows = new_rows
        self._by_name = {p.name: p for p in new_rows}
        self._added = sorted(new_names - old_names)
        self._removed = sorted(old_names - new_names)
        if default_action is not None:
            self.set_default_action(default_action)
        return self

    def set_default_action(self, action: PolicyAction) -> "PolicyTransaction":
        self._ensure_open()
        if action is PolicyAction.CHAIN:
            raise ValueError("default action cannot be CHAIN")
        self._default = action
        return self

    # ------------------------------------------------------------------
    # Verification and the atomic swap

    def validate(self, service_types=None) -> list:
        """Conflict findings over the staged table (no commit).

        Delegates to the policy compiler's pairwise detector: the
        staged rows in match order, plus service-chain reference checks
        when ``service_types`` is given.  Returns a list of
        :class:`repro.core.policy_compiler.Conflict` findings.
        """
        self._ensure_open()
        from repro.core.policy_compiler import verify_rows

        return verify_rows(
            sorted(self._rows, key=_table_order), service_types=service_types
        )

    def commit(self, verify: bool = False) -> PolicyCommit:
        """Apply the staged changes atomically.

        With ``verify=True`` the transaction first runs
        :meth:`validate` and refuses to commit on any error-severity
        finding (raising ``PolicyConflictError``), leaving the live
        table untouched.  On success the row set, name index and
        default action swap in as one step, the version bumps exactly
        once, and commit subscribers fire.
        """
        self._ensure_open()
        if verify:
            from repro.core.policy_compiler import PolicyConflictError

            errors = [f for f in self.validate() if f.severity == "error"]
            if errors:
                raise PolicyConflictError(errors)
        rows = sorted(self._rows, key=_table_order)
        table = self._table
        table._policies = rows
        table._by_name = {p.name: p for p in rows}
        table.default_action = self._default
        table.version += 1
        self._closed = True
        commit = PolicyCommit(
            version=table.version,
            added=tuple(self._added),
            removed=tuple(self._removed),
            source=self.source,
            policies=len(rows),
            default_action=self._default,
        )
        for callback in list(table._commit_callbacks):
            callback(commit)
        return commit

    def abort(self) -> None:
        """Discard the staged changes; the table never sees them."""
        self._closed = True


class PolicyTable:
    """Ordered policy lookup: highest priority, then most specific.

    Mutation is transactional (:meth:`begin`); the name index makes
    :meth:`get` O(1); :meth:`match` stays a first-match scan whose
    row count feeds the ``controller.policy_lookup_scans`` histogram.
    """

    def __init__(self, default_action: PolicyAction = PolicyAction.ALLOW):
        if default_action is PolicyAction.CHAIN:
            raise ValueError("default action cannot be CHAIN")
        self._policies: List[Policy] = []
        self._by_name: Dict[str, Policy] = {}
        self.default_action = default_action
        self.version = 0
        self._commit_callbacks: List[Callable[[PolicyCommit], None]] = []
        self.deprecated_calls: Dict[str, int] = {"add": 0, "remove": 0}

    def __len__(self) -> int:
        return len(self._policies)

    def __iter__(self):
        return iter(self._policies)

    # ------------------------------------------------------------------
    # Transactions

    def begin(self, source: str = "api") -> PolicyTransaction:
        """Open a transaction; nothing changes until its commit."""
        return PolicyTransaction(self, source=source)

    def on_commit(
        self, callback: Callable[[PolicyCommit], None]
    ) -> Callable[[], None]:
        """Subscribe to atomic swaps; returns an unsubscribe callable.
        The controller bridges these into ``PolicyReloaded`` bus
        events."""
        self._commit_callbacks.append(callback)

        def unsubscribe() -> None:
            try:
                self._commit_callbacks.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def apply_compiled(self, compiled, source: str = "compiler") -> PolicyCommit:
        """Atomically swap in a compiled table (rows are copied with
        fresh hit counters, so the compiled artifact stays pristine and
        re-appliable)."""
        txn = self.begin(source=source)
        txn.replace_all(
            [dc_replace(policy, hits=0) for policy in compiled],
            default_action=compiled.default_action,
        )
        return txn.commit()

    def attach_metrics(self, registry) -> None:
        """Register the table's gauges on an obs registry: the version
        stamp, the row count, and the deprecated-shim call counters."""
        registry.gauge(
            "policy.version", "Monotonic policy-table version stamp"
        ).set_function(lambda: float(self.version))
        registry.gauge(
            "policy.rows", "Policies in the live table"
        ).set_function(lambda: float(len(self._policies)))
        for op in ("add", "remove"):
            registry.gauge(
                "policy.deprecated_api_calls",
                "Calls to the deprecated add/remove compat shims",
                op=op,
            ).set_function(
                lambda op=op: float(self.deprecated_calls[op])
            )

    # ------------------------------------------------------------------
    # Compat shims (pre-transaction public surface)

    def add(self, policy: Policy) -> None:
        """Deprecated: one-policy transaction.  Prefer
        ``begin()``/``commit()`` or a compiled reload."""
        self.deprecated_calls["add"] += 1
        txn = self.begin(source="legacy:add")
        txn.add(policy)
        txn.commit()

    def remove(self, name: str) -> Optional[Policy]:
        """Deprecated: one-removal transaction.  Prefer
        ``begin()``/``commit()`` or a compiled reload."""
        self.deprecated_calls["remove"] += 1
        txn = self.begin(source="legacy:remove")
        removed = txn.remove(name)
        if removed is None:
            # No-op removals never bump the version (historical shape).
            txn.abort()
            return None
        txn.commit()
        return removed

    # ------------------------------------------------------------------
    # Lookup

    def get(self, name: Optional[str]) -> Optional[Policy]:
        """The policy registered under ``name``, or None (including for
        ``name=None``, the default-routed sessions' policy label).
        O(1) via the name index the transaction API maintains."""
        if name is None:
            return None
        return self._by_name.get(name)

    def match(self, flow: FlowNineTuple) -> Tuple[Optional[Policy], int]:
        """The winning policy (or None) plus the number of table rows
        scanned to find it -- the controller feeds the scan count into
        its ``controller.policy_lookup_scans`` histogram.

        Side-effect-free: hit accounting is the caller's explicit
        choice via :meth:`record_hit`.
        """
        for scanned, policy in enumerate(self._policies, start=1):
            if policy.selector.matches(flow):
                return policy, scanned
        return None, len(self._policies)

    def lookup(self, flow: FlowNineTuple) -> Optional[Policy]:
        """The winning policy for a flow, or None (-> default action).

        Read-only: unlike the historical behavior, looking up a flow
        no longer increments :attr:`Policy.hits`, so monitoring
        consumers (``effective_action``, the WebUI) can probe freely.
        Enforcement paths call :meth:`record_hit` when they act on the
        match.
        """
        return self.match(flow)[0]

    def record_hit(self, policy: Policy) -> None:
        """Count one enforcement of ``policy`` (called by the
        controller when it acts on a lookup result)."""
        policy.hits += 1

    def effective_action(self, flow: FlowNineTuple) -> PolicyAction:
        policy = self.lookup(flow)
        return policy.action if policy is not None else self.default_action
