"""The global policy table (Sections IV.A, III.A).

"The LiveSec controller keeps a global policy table that is
pre-configured and managed by the network administrator.  The policy
table describes whether or which security service element should be
traversed for various end-to-end flows."

A :class:`Policy` couples a :class:`FlowSelector` (which end-to-end
flows it governs) with an action: allow, drop, or steer through a
*chain* of service types.  Policies are consulted on the first packet
of each flow, highest priority first; the first match wins.  The
default when nothing matches is configurable and defaults to allow
(plain end-to-end routing).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from repro.net.packet import FlowNineTuple


class PolicyAction(Enum):
    """What to do with flows a policy selects."""

    ALLOW = "allow"
    DROP = "drop"
    CHAIN = "chain"


class Granularity(Enum):
    """Load-balancing granularity for steered flows (Section IV.B)."""

    FLOW = "flow"
    USER = "user"


class FailMode(Enum):
    """What a CHAIN policy does when no healthy element remains.

    ``OPEN`` keeps traffic flowing uninspected (availability over
    inspection); ``CLOSED`` blocks the governed flows at their ingress
    switch until an element returns (inspection over availability).
    A policy without an explicit mode inherits the controller-wide
    ``on_no_element`` default.
    """

    OPEN = "open"
    CLOSED = "closed"


@dataclass(frozen=True)
class FlowSelector:
    """A predicate over the 9-tuple.  ``None`` fields match anything.

    ``src_ip_prefix`` / ``dst_ip_prefix`` do string-prefix matching
    ("10.0." style), which stands in for CIDR work-zone selectors.
    """

    src_mac: Optional[str] = None
    dst_mac: Optional[str] = None
    src_ip: Optional[str] = None
    dst_ip: Optional[str] = None
    src_ip_prefix: Optional[str] = None
    dst_ip_prefix: Optional[str] = None
    nw_proto: Optional[int] = None
    tp_src: Optional[int] = None
    tp_dst: Optional[int] = None
    vlan: Optional[int] = None

    def matches(self, flow: FlowNineTuple) -> bool:
        checks = (
            (self.src_mac, flow.dl_src),
            (self.dst_mac, flow.dl_dst),
            (self.src_ip, flow.nw_src),
            (self.dst_ip, flow.nw_dst),
            (self.nw_proto, flow.nw_proto),
            (self.tp_src, flow.tp_src),
            (self.tp_dst, flow.tp_dst),
            (self.vlan, flow.vlan),
        )
        for want, got in checks:
            if want is not None and want != got:
                return False
        if self.src_ip_prefix is not None:
            if flow.nw_src is None or not flow.nw_src.startswith(self.src_ip_prefix):
                return False
        if self.dst_ip_prefix is not None:
            if flow.nw_dst is None or not flow.nw_dst.startswith(self.dst_ip_prefix):
                return False
        return True

    def specificity(self) -> int:
        """How many fields are pinned (used as a tie-break)."""
        return sum(
            1
            for value in (
                self.src_mac, self.dst_mac, self.src_ip, self.dst_ip,
                self.src_ip_prefix, self.dst_ip_prefix, self.nw_proto,
                self.tp_src, self.tp_dst, self.vlan,
            )
            if value is not None
        )


@dataclass
class Policy:
    """One row of the global policy table."""

    name: str
    selector: FlowSelector
    action: PolicyAction
    service_chain: Tuple[str, ...] = ()
    granularity: Granularity = Granularity.FLOW
    inspect_reply: bool = True
    priority: int = 100
    fail_mode: Optional[FailMode] = None
    hits: int = 0

    def __post_init__(self) -> None:
        if self.action is PolicyAction.CHAIN and not self.service_chain:
            raise ValueError(f"policy {self.name!r}: CHAIN needs a service_chain")
        if self.action is not PolicyAction.CHAIN and self.service_chain:
            raise ValueError(
                f"policy {self.name!r}: service_chain requires action=CHAIN"
            )
        if self.fail_mode is not None and self.action is not PolicyAction.CHAIN:
            raise ValueError(
                f"policy {self.name!r}: fail_mode requires action=CHAIN"
            )


class PolicyTable:
    """Ordered policy lookup: highest priority, then most specific."""

    def __init__(self, default_action: PolicyAction = PolicyAction.ALLOW):
        if default_action is PolicyAction.CHAIN:
            raise ValueError("default action cannot be CHAIN")
        self._policies: List[Policy] = []
        self.default_action = default_action
        self.version = 0

    def __len__(self) -> int:
        return len(self._policies)

    def __iter__(self):
        return iter(self._policies)

    def add(self, policy: Policy) -> None:
        if any(existing.name == policy.name for existing in self._policies):
            raise ValueError(f"duplicate policy name {policy.name!r}")
        self._policies.append(policy)
        self._policies.sort(
            key=lambda p: (-p.priority, -p.selector.specificity())
        )
        self.version += 1

    def get(self, name: Optional[str]) -> Optional[Policy]:
        """The policy registered under ``name``, or None (including for
        ``name=None``, the default-routed sessions' policy label)."""
        if name is None:
            return None
        for policy in self._policies:
            if policy.name == name:
                return policy
        return None

    def remove(self, name: str) -> Optional[Policy]:
        for index, policy in enumerate(self._policies):
            if policy.name == name:
                self.version += 1
                return self._policies.pop(index)
        return None

    def match(self, flow: FlowNineTuple) -> Tuple[Optional[Policy], int]:
        """The winning policy (or None) plus the number of table rows
        scanned to find it -- the controller feeds the scan count into
        its ``controller.policy_lookup_scans`` histogram.

        Side-effect-free: hit accounting is the caller's explicit
        choice via :meth:`record_hit`.
        """
        for scanned, policy in enumerate(self._policies, start=1):
            if policy.selector.matches(flow):
                return policy, scanned
        return None, len(self._policies)

    def lookup(self, flow: FlowNineTuple) -> Optional[Policy]:
        """The winning policy for a flow, or None (-> default action).

        Read-only: unlike the historical behavior, looking up a flow
        no longer increments :attr:`Policy.hits`, so monitoring
        consumers (``effective_action``, the WebUI) can probe freely.
        Enforcement paths call :meth:`record_hit` when they act on the
        match.
        """
        return self.match(flow)[0]

    def record_hit(self, policy: Policy) -> None:
        """Count one enforcement of ``policy`` (called by the
        controller when it acts on a lookup result)."""
        policy.hits += 1

    def effective_action(self, flow: FlowNineTuple) -> PolicyAction:
        policy = self.lookup(flow)
        return policy.action if policy is not None else self.default_action
