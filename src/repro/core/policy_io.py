"""Policy persistence: versioned JSON documents.

Section IV.A: the global policy table "is pre-configured and managed
by the network administrator".  In practice that means it lives in a
config file; this module round-trips policy through plain JSON so
deployments can be versioned, reviewed and hot-reloaded.

Two schemas are accepted (``schema_version`` selects; absent means 1):

* **v1** (historical, flat rows)::

      {
        "default_action": "allow",
        "policies": [
          {"name": "inspect-internet", "action": "chain",
           "service_chain": ["ids"],
           "selector": {"dst_ip": "10.255.255.254"}}
        ]
      }

* **v2** (intents -- what :func:`save_policies` now emits)::

      {
        "schema_version": 2,
        "default_action": "allow",
        "intents": [
          {"name": "quarantine-lab", "action": "drop",
           "src_zone": "10.66.0.0/16", "priority": 150}
        ]
      }

Both are strict: unknown top-level, entry or selector fields are
rejected (the WireCodec convention -- a typo'd field must not silently
become a match-everything policy).  v2 documents flow through the
policy compiler, so loading with ``verify=True`` rejects conflicting
documents before anything reaches a live table.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List

from repro.core.policy import (
    FailMode,
    FlowSelector,
    Granularity,
    Policy,
    PolicyAction,
    PolicyTable,
)
from repro.core.policy_compiler import (
    PolicyConflictError,
    PolicyIntent,
    compile_intents,
    intent_from_dict,
    intent_from_policy,
    intent_to_dict,
)

SCHEMA_VERSION = 2

_V1_DOCUMENT_FIELDS = {"schema_version", "default_action", "policies"}
_V2_DOCUMENT_FIELDS = {"schema_version", "default_action", "intents"}
_V1_ENTRY_FIELDS = {
    "name", "priority", "action", "service_chain", "granularity",
    "inspect_reply", "fail_mode", "selector",
}


class PolicyFormatError(ValueError):
    """Raised when a policy document is malformed."""


def table_to_dict(table) -> Dict[str, object]:
    """Serialize a table (live or compiled) as a v2 intent document."""
    return {
        "schema_version": SCHEMA_VERSION,
        "default_action": table.default_action.value,
        "intents": [
            intent_to_dict(intent_from_policy(policy)) for policy in table
        ],
    }


def _default_action(document: Dict[str, object]) -> PolicyAction:
    try:
        default = PolicyAction(document.get("default_action", "allow"))
    except ValueError as exc:
        raise PolicyFormatError(str(exc)) from exc
    if default is PolicyAction.CHAIN:
        raise PolicyFormatError("default action cannot be 'chain'")
    return default


def _v1_entry_to_policy(entry: dict) -> Policy:
    if not isinstance(entry, dict) or "name" not in entry:
        raise PolicyFormatError(f"bad policy entry: {entry!r}")
    unknown = set(entry) - _V1_ENTRY_FIELDS
    if unknown:
        raise PolicyFormatError(
            f"unknown fields in policy {entry['name']!r}: {sorted(unknown)}"
        )
    selector_doc = entry.get("selector", {})
    selector_fields = {f.name for f in dataclasses.fields(FlowSelector)}
    unknown = set(selector_doc) - selector_fields
    if unknown:
        raise PolicyFormatError(
            f"unknown selector fields in {entry['name']!r}: {sorted(unknown)}"
        )
    try:
        return Policy(
            name=str(entry["name"]),
            selector=FlowSelector(**selector_doc),
            action=PolicyAction(entry.get("action", "allow")),
            service_chain=tuple(entry.get("service_chain", ())),
            granularity=Granularity(entry.get("granularity", "flow")),
            inspect_reply=bool(entry.get("inspect_reply", True)),
            priority=int(entry.get("priority", 100)),
            fail_mode=(
                FailMode(entry["fail_mode"])
                if entry.get("fail_mode") is not None else None
            ),
        )
    except (TypeError, ValueError) as exc:
        raise PolicyFormatError(
            f"invalid policy {entry.get('name')!r}: {exc}"
        ) from exc


def document_to_intents(document: Dict[str, object]) -> List[PolicyIntent]:
    """The intents of a v1 or v2 document (v1 rows lift to intents), in
    file order.  Structural validation only; conflicts are the
    compiler's business."""
    if not isinstance(document, dict):
        raise PolicyFormatError("policy document must be an object")
    version = document.get("schema_version", 1)
    if version == 1:
        unknown = set(document) - _V1_DOCUMENT_FIELDS
        if unknown:
            raise PolicyFormatError(
                f"unknown document field(s) {sorted(unknown)}"
            )
        entries = document.get("policies", [])
        if not isinstance(entries, list):
            raise PolicyFormatError("'policies' must be a list")
        return [
            intent_from_policy(_v1_entry_to_policy(entry)) for entry in entries
        ]
    if version == SCHEMA_VERSION:
        unknown = set(document) - _V2_DOCUMENT_FIELDS
        if unknown:
            raise PolicyFormatError(
                f"unknown document field(s) {sorted(unknown)}"
            )
        entries = document.get("intents", [])
        if not isinstance(entries, list):
            raise PolicyFormatError("'intents' must be a list")
        try:
            return [intent_from_dict(entry) for entry in entries]
        except (TypeError, ValueError) as exc:
            raise PolicyFormatError(str(exc)) from exc
    raise PolicyFormatError(
        f"unsupported schema_version {version!r} (know 1 and {SCHEMA_VERSION})"
    )


def table_from_dict(
    document: Dict[str, object], verify: bool = False
) -> PolicyTable:
    """Deserialize a table, validating every field.

    With ``verify=True`` the document also runs through the compiler's
    conflict detector and error-severity findings raise
    :class:`PolicyFormatError` -- nothing half-loaded escapes.
    """
    if not isinstance(document, dict):
        raise PolicyFormatError("policy document must be an object")
    default = _default_action(document)
    intents = document_to_intents(document)
    try:
        result = compile_intents(intents, default_action=default)
    except ValueError as exc:
        raise PolicyFormatError(str(exc)) from exc
    if verify and not result.ok:
        raise PolicyFormatError(
            "policy document rejected by conflict verification:\n"
            + "\n".join(f"  {f}" for f in result.errors)
        )
    table = PolicyTable(default_action=default)
    table.apply_compiled(result.table, source="policy_io")
    table.version = 0  # a freshly loaded table starts at version zero
    return table


def save_policies(table, path: str) -> None:
    """Write a table to a JSON file (v2 schema)."""
    with open(path, "w") as handle:
        json.dump(table_to_dict(table), handle, indent=2)
        handle.write("\n")


def load_policies(path: str, verify: bool = False) -> PolicyTable:
    """Read a table from a JSON file (either schema)."""
    with open(path) as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise PolicyFormatError(f"not valid JSON: {exc}") from exc
    return table_from_dict(document, verify=verify)


def load_intents(path: str):
    """Read a file's intents + default action (for compile/check paths
    that want the compiler's full report rather than a table)."""
    with open(path) as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise PolicyFormatError(f"not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise PolicyFormatError("policy document must be an object")
    return document_to_intents(document), _default_action(document)


__all__ = [
    "PolicyFormatError",
    "PolicyConflictError",
    "SCHEMA_VERSION",
    "table_to_dict",
    "table_from_dict",
    "document_to_intents",
    "save_policies",
    "load_policies",
    "load_intents",
]
