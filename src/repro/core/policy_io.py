"""Policy-table persistence.

Section IV.A: the global policy table "is pre-configured and managed
by the network administrator".  In practice that means it lives in a
config file; this module round-trips a :class:`PolicyTable` through a
plain JSON document so deployments can be versioned, reviewed and
reloaded.

Format (one object per policy)::

    {
      "default_action": "allow",
      "policies": [
        {
          "name": "inspect-internet",
          "priority": 100,
          "action": "chain",
          "service_chain": ["ids"],
          "granularity": "flow",
          "inspect_reply": true,
          "selector": {"dst_ip": "10.255.255.254"}
        }
      ]
    }
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict

from repro.core.policy import (
    FailMode,
    FlowSelector,
    Granularity,
    Policy,
    PolicyAction,
    PolicyTable,
)


class PolicyFormatError(ValueError):
    """Raised when a policy document is malformed."""


def table_to_dict(table: PolicyTable) -> Dict[str, object]:
    """Serialize a table to a JSON-compatible dict."""
    return {
        "default_action": table.default_action.value,
        "policies": [
            {
                "name": policy.name,
                "priority": policy.priority,
                "action": policy.action.value,
                "service_chain": list(policy.service_chain),
                "granularity": policy.granularity.value,
                "inspect_reply": policy.inspect_reply,
                "fail_mode": (
                    policy.fail_mode.value
                    if policy.fail_mode is not None else None
                ),
                "selector": {
                    key: value
                    for key, value in dataclasses.asdict(
                        policy.selector
                    ).items()
                    if value is not None
                },
            }
            for policy in table
        ],
    }


def table_from_dict(document: Dict[str, object]) -> PolicyTable:
    """Deserialize a table, validating every field."""
    if not isinstance(document, dict):
        raise PolicyFormatError("policy document must be an object")
    try:
        default = PolicyAction(document.get("default_action", "allow"))
    except ValueError as exc:
        raise PolicyFormatError(str(exc)) from exc
    if default is PolicyAction.CHAIN:
        raise PolicyFormatError("default action cannot be 'chain'")
    table = PolicyTable(default_action=default)
    entries = document.get("policies", [])
    if not isinstance(entries, list):
        raise PolicyFormatError("'policies' must be a list")
    selector_fields = {f.name for f in dataclasses.fields(FlowSelector)}
    for entry in entries:
        if not isinstance(entry, dict) or "name" not in entry:
            raise PolicyFormatError(f"bad policy entry: {entry!r}")
        selector_doc = entry.get("selector", {})
        unknown = set(selector_doc) - selector_fields
        if unknown:
            raise PolicyFormatError(
                f"unknown selector fields in {entry['name']!r}: {sorted(unknown)}"
            )
        try:
            policy = Policy(
                name=str(entry["name"]),
                selector=FlowSelector(**selector_doc),
                action=PolicyAction(entry.get("action", "allow")),
                service_chain=tuple(entry.get("service_chain", ())),
                granularity=Granularity(entry.get("granularity", "flow")),
                inspect_reply=bool(entry.get("inspect_reply", True)),
                priority=int(entry.get("priority", 100)),
                fail_mode=(
                    FailMode(entry["fail_mode"])
                    if entry.get("fail_mode") is not None else None
                ),
            )
        except (TypeError, ValueError) as exc:
            raise PolicyFormatError(
                f"invalid policy {entry.get('name')!r}: {exc}"
            ) from exc
        table.add(policy)
    return table


def save_policies(table: PolicyTable, path: str) -> None:
    """Write a table to a JSON file."""
    with open(path, "w") as handle:
        json.dump(table_to_dict(table), handle, indent=2)


def load_policies(path: str) -> PolicyTable:
    """Read a table from a JSON file."""
    with open(path) as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise PolicyFormatError(f"not valid JSON: {exc}") from exc
    return table_from_dict(document)
