"""The directory proxy for ARP and DHCP (Section III.C.2).

"Directly broadcasting will burden the legacy switching network ...
a dedicated directory proxy should be employed to specially handle all
ARP and DHCP resolutions by looking-up global host information
maintained by LiveSec controller."

The proxy answers ARP requests from the NIB (crafting a unicast reply
injected at the requester's own switch) and runs a small DHCP server
over the same punt path.  Only when the target is genuinely unknown is
the request flooded, and the resulting reply teaches the NIB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.nib import NetworkInformationBase
from repro.net import packet as pkt
from repro.net.packet import Arp, Dhcp, Ethernet, ip_address


@dataclass
class ArpDecision:
    """What the controller should do with a punted ARP request."""

    action: str  # "reply" | "flood" | "ignore"
    reply_frame: Optional[Ethernet] = None


class DirectoryProxy:
    """ARP/DHCP resolution from the controller's global host table."""

    def __init__(self, nib: NetworkInformationBase,
                 dhcp_pool_base: str = "10.1.0.0"):
        self.nib = nib
        self.dhcp_pool_base = dhcp_pool_base
        self._dhcp_leases: Dict[str, str] = {}  # mac -> ip
        self._next_lease = 1
        self.arp_replies = 0
        self.arp_floods = 0
        self.dhcp_acks = 0

    # ------------------------------------------------------------------
    # ARP

    def handle_arp_request(self, arp: Arp) -> ArpDecision:
        """Decide how to resolve a punted ARP request.

        Gratuitous ARP (sender == target) is a location announcement,
        not a question: nothing to answer, nothing to flood.
        """
        if arp.sender_ip == arp.target_ip:
            return ArpDecision(action="ignore")
        target = self.nib.host_by_ip(arp.target_ip)
        if target is None:
            self.arp_floods += 1
            return ArpDecision(action="flood")
        reply = pkt.make_arp_reply(
            sender_mac=target.mac,
            sender_ip=arp.target_ip,
            target_mac=arp.sender_mac,
            target_ip=arp.sender_ip,
        )
        self.arp_replies += 1
        return ArpDecision(action="reply", reply_frame=reply)

    # ------------------------------------------------------------------
    # DHCP

    def handle_dhcp(self, dhcp: Dhcp) -> Optional[Dhcp]:
        """DHCP state machine: DISCOVER -> OFFER, REQUEST -> ACK.

        Returns the response payload to send back to the client, or
        None for message types the server ignores.
        """
        if dhcp.opcode == "discover":
            ip = self._lease_for(dhcp.client_mac)
            return Dhcp(opcode="offer", client_mac=dhcp.client_mac, offered_ip=ip)
        if dhcp.opcode == "request":
            ip = self._lease_for(dhcp.client_mac)
            self.dhcp_acks += 1
            return Dhcp(opcode="ack", client_mac=dhcp.client_mac, offered_ip=ip)
        return None

    def _lease_for(self, mac: str) -> str:
        existing = self._dhcp_leases.get(mac)
        if existing is not None:
            return existing
        ip = ip_address(self._next_lease, base=self.dhcp_pool_base)
        self._next_lease += 1
        self._dhcp_leases[mac] = ip
        return ip

    def lease_of(self, mac: str) -> Optional[str]:
        return self._dhcp_leases.get(mac)
