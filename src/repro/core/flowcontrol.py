"""Aggregate flow control (Section IV.C).

"With this information, LiveSec controller can further master the
network traffic distribution and service-aware statistics, and provide
more interesting function, such as aggregate flow control."

:class:`AggregateFlowControl` gives that sentence a concrete
implementation: per-user (source MAC) aggregate rate quotas enforced
centrally.  The controller already owns every ingress flow entry, so
the enforcement loop is pure control plane:

1. every ``check_interval_s`` poll flow statistics from all switches,
2. aggregate byte deltas of ingress entries per source MAC,
3. when a user's aggregate rate exceeds its quota, install a
   high-priority source drop at the user's ingress switch for
   ``penalty_s`` seconds (a hard-timeout entry: the penalty lifts
   itself, no controller action needed).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.routing import source_block_rule
from repro.openflow.match import Match

DEFAULT_CHECK_INTERVAL_S = 1.0
DEFAULT_PENALTY_S = 5.0

USER_THROTTLED = "user-throttled"


class AggregateFlowControl:
    """Per-user aggregate rate quotas over the ingress flow entries."""

    def __init__(
        self,
        controller,
        default_quota_bps: Optional[float] = None,
        check_interval_s: float = DEFAULT_CHECK_INTERVAL_S,
        penalty_s: float = DEFAULT_PENALTY_S,
    ):
        if check_interval_s <= 0:
            raise ValueError(
                f"check interval must be positive (got {check_interval_s})"
            )
        self.controller = controller
        self.default_quota_bps = default_quota_bps
        self.check_interval_s = check_interval_s
        self.penalty_s = penalty_s
        self._quotas: Dict[str, float] = {}
        # (dpid, match-id) -> last byte count; per-poll-round state.
        self._last_bytes: Dict[Tuple[int, Match, int], int] = {}
        self._user_bytes_this_round: Dict[str, int] = {}
        self._penalized_until: Dict[str, float] = {}
        self.throttle_events = 0
        self._unsubscribe = controller.subscribe_flow_stats(self._on_flow_stats)
        controller.sim.every(check_interval_s, self._poll)

    def detach(self) -> None:
        """Stop observing flow stats (quota enforcement ends)."""
        self._unsubscribe()

    # ------------------------------------------------------------------
    # Configuration

    def set_quota(self, user_mac: str, bps: Optional[float]) -> None:
        """Set (or with None, clear) a user's aggregate quota."""
        if bps is None:
            self._quotas.pop(user_mac, None)
        else:
            if bps <= 0:
                raise ValueError(f"quota must be positive (got {bps})")
            self._quotas[user_mac] = bps

    def quota_for(self, user_mac: str) -> Optional[float]:
        return self._quotas.get(user_mac, self.default_quota_bps)

    # ------------------------------------------------------------------
    # Measurement loop

    def _poll(self) -> None:
        # Evaluate the *previous* round first: by now all replies from
        # the last poll have arrived (the control latency is far below
        # the check interval).
        self._evaluate_round()
        self._user_bytes_this_round = {}
        for dpid in list(self.controller.switches):
            self.controller.request_flow_stats(dpid)

    def _on_flow_stats(self, event) -> None:
        now_bucket = self._user_bytes_this_round
        for entry in event.entries:
            match = entry["match"]
            src = match.dl_src
            if src is None:
                continue
            # Only ingress entries (matching at a periphery in_port)
            # attribute bytes to the user; transit/egress entries would
            # double count.
            periphery = self.controller._is_periphery_port(
                event.dpid, match.in_port
            ) if match.in_port is not None else False
            if not periphery:
                continue
            key = (event.dpid, match, entry["priority"])
            previous = self._last_bytes.get(key, 0)
            self._last_bytes[key] = entry["bytes"]
            delta = max(0, entry["bytes"] - previous)
            now_bucket[src] = now_bucket.get(src, 0) + delta

    def _evaluate_round(self) -> None:
        now = self.controller.sim.now
        for mac, delta_bytes in self._user_bytes_this_round.items():
            quota = self.quota_for(mac)
            if quota is None:
                continue
            if self._penalized_until.get(mac, 0.0) > now:
                continue
            rate_bps = delta_bytes * 8.0 / self.check_interval_s
            if rate_bps <= quota:
                continue
            self._penalize(mac, rate_bps, quota)

    def _penalize(self, mac: str, rate_bps: float, quota: float) -> None:
        record = self.controller.nib.host_by_mac(mac)
        if record is None:
            return
        rule = source_block_rule(mac, record)
        # The penalty entry expires by itself.
        self.controller.send_flow_mod(
            rule.dpid,
            command="add",
            match=rule.match,
            actions=rule.actions,
            priority=rule.priority,
            hard_timeout=self.penalty_s,
        )
        now = self.controller.sim.now
        self._penalized_until[mac] = now + self.penalty_s
        self.throttle_events += 1
        self.controller.log.emit(
            now, USER_THROTTLED,
            user_mac=mac,
            rate_bps=rate_bps,
            quota_bps=quota,
            penalty_s=self.penalty_s,
        )

    def penalized_users(self) -> Dict[str, float]:
        """Users currently under penalty, with penalty expiry times."""
        now = self.controller.sim.now
        return {
            mac: until
            for mac, until in self._penalized_until.items()
            if until > now
        }
