"""Distributed load balancing over service elements (Section IV.B).

"According to pre-defined policies, LiveSec controller can do
load-balancing with different granularity" (flow-grain or user-grain),
and "for dynamic network states, LiveSec controller can utilize
different dispatching algorithms such as polling, hash, queuing or
minimum-load method."

All four dispatchers are implemented.  A :class:`LoadBalancer` wraps a
dispatcher with assignment book-keeping: it tracks which element every
live flow was sent to (so flow removal releases capacity), pins users
to elements under user granularity, and exposes the deviation metric
the paper evaluates in Section V.B.2.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policy import Granularity
from repro.net.packet import FlowNineTuple


@dataclass
class ElementLoad:
    """The dispatcher-visible state of one candidate element."""

    mac: str
    reported_pps: float  # from the element's last online message
    reported_cpu: float
    assigned_flows: int  # controller-side live assignment count
    pending: int  # assignments made since the last load report


class Dispatcher:
    """Strategy interface: pick one element for a new flow/user."""

    name = "abstract"

    def pick(
        self,
        candidates: Sequence[ElementLoad],
        flow: FlowNineTuple,
        user: Optional[str],
    ) -> ElementLoad:
        raise NotImplementedError


class RoundRobinDispatcher(Dispatcher):
    """The paper's "polling" method: strict rotation.

    The rotation cursor is the MAC of the last pick, not a numeric
    index: an index taken modulo the *current* candidate count would
    reshuffle which element "next" lands on whenever one element goes
    offline, while the MAC cursor keeps rotating cleanly through the
    survivors (the next pick is the first candidate strictly after the
    cursor in MAC order, wrapping around).
    """

    name = "polling"

    def __init__(self) -> None:
        self._last_mac: Optional[str] = None

    def pick(self, candidates, flow, user):
        ordered = sorted(candidates, key=lambda c: c.mac)
        choice = ordered[0]
        if self._last_mac is not None:
            for candidate in ordered:
                if candidate.mac > self._last_mac:
                    choice = candidate
                    break
        self._last_mac = choice.mac
        return choice


class HashDispatcher(Dispatcher):
    """Stateless hashing of the flow identity (or user) onto elements.

    Deterministic: the same flow always lands on the same element,
    which keeps per-flow inspection state local with no table.
    """

    name = "hash"

    def pick(self, candidates, flow, user):
        key = user if user is not None else "|".join(str(f) for f in flow)
        digest = hashlib.sha256(key.encode()).digest()
        index = int.from_bytes(digest[:4], "big")
        ordered = sorted(candidates, key=lambda c: c.mac)
        return ordered[index % len(ordered)]


class LeastConnectionsDispatcher(Dispatcher):
    """The paper's "queuing" method: fewest live assigned flows."""

    name = "queuing"

    def pick(self, candidates, flow, user):
        return min(candidates, key=lambda c: (c.assigned_flows + c.pending, c.mac))


class MinLoadDispatcher(Dispatcher):
    """The paper's "minimum-load" method, used in the deployment.

    "The load is judged according to the number of received and
    processed packets" -- we rank by reported packets/s, biased by the
    assignments made since that report so that a burst of new flows
    does not pile onto the element whose (stale) report looked idle.

    The bias per pending assignment is *adaptive*: the highest observed
    per-flow packet rate among the candidates.  A fixed bias that
    underestimates real flows lets a recently loaded element keep
    looking cheapest until its next (lagging) report; estimating from
    live measurements keeps the effective-load predictor honest for
    any workload.
    """

    name = "minload"

    def __init__(self, pending_bias_pps: float = 200.0):
        self.pending_bias_pps = pending_bias_pps

    def pick(self, candidates, flow, user):
        per_flow_estimates = [
            c.reported_pps / c.assigned_flows
            for c in candidates
            if c.assigned_flows > 0 and c.reported_pps > 0
        ]
        bias = max([self.pending_bias_pps, *per_flow_estimates])

        def effective_load(c: ElementLoad) -> float:
            return c.reported_pps + c.pending * bias

        return min(candidates, key=lambda c: (effective_load(c), c.mac))


DISPATCHERS = {
    cls.name: cls
    for cls in (
        RoundRobinDispatcher,
        HashDispatcher,
        LeastConnectionsDispatcher,
        MinLoadDispatcher,
    )
}


def make_dispatcher(name: str) -> Dispatcher:
    """Instantiate a dispatcher by its paper name
    ('polling' | 'hash' | 'queuing' | 'minload')."""
    try:
        return DISPATCHERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown dispatcher {name!r}; choose from {sorted(DISPATCHERS)}"
        ) from None


class LoadBalancer:
    """Assignment book-keeping around a dispatcher."""

    def __init__(self, dispatcher: Dispatcher, metrics=None):
        self.dispatcher = dispatcher
        # A chained policy assigns the same flow once per service type,
        # so a flow can hold several element assignments at once.
        self._flow_assignment: Dict[FlowNineTuple, List[str]] = {}
        self._user_assignment: Dict[str, str] = {}
        self._assigned_flows: Dict[str, int] = defaultdict(int)
        self._pending: Dict[str, int] = defaultdict(int)
        self.assignments = 0
        self._assign_hist = None
        if metrics is not None:
            self.attach_metrics(metrics)

    def attach_metrics(self, registry) -> None:
        """Publish dispatch metrics through an obs registry: assign
        wall time (the dispatcher is on the first-packet hot path) and
        the live assignment totals."""
        self._assign_hist = registry.histogram(
            "balancer.assign_s",
            "Wall-clock time to pick an element for a new flow",
        )
        registry.gauge(
            "balancer.assignments", "Element assignments made so far"
        ).set_function(lambda: self.assignments)
        registry.gauge(
            "balancer.flows_assigned", "Live flow-to-element assignments"
        ).set_function(lambda: sum(self._assigned_flows.values()))

    def assign(
        self,
        candidates: Sequence[ElementLoad],
        flow: FlowNineTuple,
        user: Optional[str] = None,
        granularity: Granularity = Granularity.FLOW,
    ) -> str:
        """Choose an element MAC for a new flow.

        Under user granularity the user's previous element is reused
        while it remains a candidate.
        """
        if not candidates:
            raise ValueError("no candidate service elements")
        if self._assign_hist is None:
            return self._assign(candidates, flow, user, granularity)
        with self._assign_hist.time():
            return self._assign(candidates, flow, user, granularity)

    def _assign(
        self,
        candidates: Sequence[ElementLoad],
        flow: FlowNineTuple,
        user: Optional[str],
        granularity: Granularity,
    ) -> str:
        candidate_macs = {c.mac for c in candidates}
        for candidate in candidates:
            candidate.assigned_flows = self._assigned_flows[candidate.mac]
            candidate.pending = self._pending[candidate.mac]

        if granularity is Granularity.USER and user is not None:
            pinned = self._user_assignment.get(user)
            if pinned in candidate_macs:
                self._record(flow, user, pinned, granularity)
                return pinned

        choice = self.dispatcher.pick(
            candidates, flow, user if granularity is Granularity.USER else None
        )
        self._record(flow, user, choice.mac, granularity)
        return choice.mac

    def _record(self, flow: FlowNineTuple, user: Optional[str], mac: str,
                granularity: Granularity) -> None:
        self._flow_assignment.setdefault(flow, []).append(mac)
        self._assigned_flows[mac] += 1
        self._pending[mac] += 1
        if granularity is Granularity.USER and user is not None:
            self._user_assignment[user] = mac
        self.assignments += 1

    def release(self, flow: FlowNineTuple) -> Tuple[str, ...]:
        """A flow ended (FlowRemoved): free all its element
        assignments (one per chained service type).  Returns the
        released element MACs, empty if the flow held none.

        Pending counters are released too: a flow torn down before its
        element's next load report would otherwise leave ``_pending``
        permanently inflated, biasing the queuing/minimum-load
        dispatchers away from the element forever.
        """
        macs = self._flow_assignment.pop(flow, [])
        for mac in macs:
            if self._assigned_flows[mac] > 0:
                self._assigned_flows[mac] -= 1
            if self._pending[mac] > 0:
                self._pending[mac] -= 1
        return tuple(macs)

    def element_of(self, flow: FlowNineTuple) -> Optional[str]:
        """The flow's first (primary) assigned element, if any."""
        macs = self._flow_assignment.get(flow)
        return macs[0] if macs else None

    def elements_of(self, flow: FlowNineTuple) -> Tuple[str, ...]:
        """All elements assigned to the flow, in chain order."""
        return tuple(self._flow_assignment.get(flow, ()))

    def on_load_report(self, mac: str) -> None:
        """A fresh online message arrived: decay the pending bias.

        Halving (rather than clearing) matters: a report generated
        moments after an assignment does not yet reflect that flow's
        traffic, and treating it as authoritative makes the dispatcher
        pile new flows onto whichever element reported most recently.
        After two or three reports the flow shows up in the measured
        packet rate and the remaining bias is gone.
        """
        self._pending[mac] //= 2

    def assigned_flow_counts(self) -> Dict[str, int]:
        return dict(self._assigned_flows)

    def forget_element(self, mac: str) -> int:
        """An element went offline: drop its assignments.  Returns how
        many live flows were orphaned (the controller re-steers them)."""
        orphaned = 0
        for flow, macs in list(self._flow_assignment.items()):
            if mac not in macs:
                continue
            orphaned += 1
            remaining = [m for m in macs if m != mac]
            if remaining:
                self._flow_assignment[flow] = remaining
            else:
                del self._flow_assignment[flow]
        self._assigned_flows.pop(mac, None)
        self._pending.pop(mac, None)
        for user in [u for u, m in self._user_assignment.items() if m == mac]:
            del self._user_assignment[user]
        return orphaned


def load_deviation(loads: Sequence[float]) -> float:
    """The paper's Section V.B.2 metric: max relative deviation from
    the mean load across elements ("no more than 5%").

    Returns 0 for fewer than two elements or an all-zero load vector.
    """
    if len(loads) < 2:
        return 0.0
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 0.0
    return max(abs(load - mean) for load in loads) / mean
