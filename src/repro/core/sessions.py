"""Bidirectional session tracking (Section III.C.3).

"In fact, bidirectional flows can be simultaneously handled as a
session.  For the request flow, the 9-tuple flow information can be
utilized ... to construct the 9-tuple flow information of the
corresponding reply flow based on the predefined session policy."

A :class:`Session` records both directions of one end-to-end
connection, the policy that governed it, the service elements it was
steered through, and every flow entry installed for it -- so teardown
(idle timeout, policy revocation, element failure) can remove exactly
the right state everywhere.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.routing import RuleSpec
from repro.net.packet import FlowNineTuple


@dataclass
class Session:
    """One live end-to-end connection managed by the controller."""

    session_id: int
    flow: FlowNineTuple  # request direction
    reverse_flow: FlowNineTuple
    src_mac: str
    dst_mac: str
    policy_name: Optional[str]
    element_macs: Tuple[str, ...]
    rules: List[RuleSpec]
    created_at: float
    blocked: bool = False
    application: Optional[str] = None  # filled in by L7 identification
    # Forwarding accountability: the expected forward-path descriptor
    # stamped into this session's ingress rule (None when disabled).
    path_descriptor: Optional[object] = None

    @property
    def is_steered(self) -> bool:
        return bool(self.element_macs)

    def dpids_on_path(self) -> Tuple[int, ...]:
        """Distinct dpids on the session's expected forward path."""
        if self.path_descriptor is None:
            return ()
        seen = []
        for dpid in self.path_descriptor.dpids:
            if dpid not in seen:
                seen.append(dpid)
        return tuple(seen)

    def snapshot(self) -> "SessionSnapshot":
        """An immutable, JSON-friendly view of this session right now."""
        return SessionSnapshot(
            session_id=self.session_id,
            src_mac=self.src_mac,
            dst_mac=self.dst_mac,
            policy=self.policy_name,
            element_macs=tuple(self.element_macs),
            rules=len(self.rules),
            created_at=self.created_at,
            blocked=self.blocked,
            application=self.application,
            accountable=self.path_descriptor is not None,
        )


@dataclass(frozen=True)
class SessionSnapshot:
    """A point-in-time typed view of one session (the ``repro ops``
    contract): everything an operator needs to reason about the
    session, nothing mutable, nothing tied to live controller objects.
    """

    session_id: int
    src_mac: str
    dst_mac: str
    policy: Optional[str]
    element_macs: Tuple[str, ...]
    rules: int
    created_at: float
    blocked: bool
    application: Optional[str]
    accountable: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "session_id": self.session_id,
            "src_mac": self.src_mac,
            "dst_mac": self.dst_mac,
            "policy": self.policy,
            "element_macs": list(self.element_macs),
            "rules": self.rules,
            "created_at": self.created_at,
            "blocked": self.blocked,
            "application": self.application,
            "accountable": self.accountable,
        }


class SessionTable:
    """Sessions indexed by either direction's 9-tuple and by cookie."""

    def __init__(self, start: int = 1, step: int = 1) -> None:
        self._by_flow: Dict[FlowNineTuple, Session] = {}
        self._by_id: Dict[int, Session] = {}
        self._ids = itertools.count(start, step)
        self.created = 0
        self.ended = 0

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self):
        return iter(self._by_id.values())

    def reseed(self, start: int, step: int = 1) -> None:
        """Re-key the id sequence.  The shard fabric gives shard ``i``
        of ``N`` the stride ``start=i+1, step=N`` so session ids stay
        globally unique -- a handoff-preserved id can never collide
        with one minted by the destination shard."""
        self._ids = itertools.count(start, step)

    def next_id(self) -> int:
        return next(self._ids)

    def create(
        self,
        flow: FlowNineTuple,
        src_mac: str,
        dst_mac: str,
        policy_name: Optional[str],
        element_macs: Tuple[str, ...],
        rules: List[RuleSpec],
        now: float,
        session_id: Optional[int] = None,
    ) -> Session:
        session = Session(
            session_id=session_id if session_id is not None else self.next_id(),
            flow=flow,
            reverse_flow=flow.reversed(),
            src_mac=src_mac,
            dst_mac=dst_mac,
            policy_name=policy_name,
            element_macs=element_macs,
            rules=rules,
            created_at=now,
        )
        self._by_flow[session.flow] = session
        self._by_flow[session.reverse_flow] = session
        self._by_id[session.session_id] = session
        self.created += 1
        return session

    def lookup(self, flow: FlowNineTuple) -> Optional[Session]:
        """The session owning this flow (either direction)."""
        return self._by_flow.get(flow)

    def by_id(self, session_id: int) -> Optional[Session]:
        return self._by_id.get(session_id)

    def end(self, session: Session) -> None:
        self._by_flow.pop(session.flow, None)
        self._by_flow.pop(session.reverse_flow, None)
        if self._by_id.pop(session.session_id, None) is not None:
            self.ended += 1

    def sessions_via_element(self, element_mac: str) -> List[Session]:
        return [
            session
            for session in self._by_id.values()
            if element_mac in session.element_macs
        ]

    def snapshot(self) -> Tuple[SessionSnapshot, ...]:
        """Typed snapshots of every live session, ordered by id."""
        return tuple(
            self._by_id[sid].snapshot() for sid in sorted(self._by_id)
        )

    def sessions_of_user(self, mac: str) -> List[Session]:
        return [
            session
            for session in self._by_id.values()
            if session.src_mac == mac or session.dst_mac == mac
        ]
