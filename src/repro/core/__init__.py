"""The LiveSec controller: the paper's primary contribution.

The controller (:mod:`repro.core.controller`) is a NOX-style
application over :mod:`repro.openflow` that provides the three headline
capabilities of the paper:

* **interactive policy enforcement** (:mod:`repro.core.policy`,
  :mod:`repro.core.routing`) -- a global policy table steers flows
  through off-path service elements with 4 flow entries per steered
  connection and blocks attacking flows at their ingress switch,
* **distributed load balancing** (:mod:`repro.core.loadbalance`,
  :mod:`repro.core.services`) -- flow- or user-grain dispatch over
  VM-based service elements using polling / hash / queuing /
  minimum-load algorithms fed by in-band load reports,
* **application-aware visualization** (:mod:`repro.core.events`,
  :mod:`repro.core.visualization`) -- a global event log with live
  topology snapshots and history replay.

:mod:`repro.core.deployment` assembles a full LiveSec network
(topology + controller + channels + elements) in one call and is the
entry point used by the examples and benchmarks.
"""

from repro.core.controller import LiveSecController
from repro.core.deployment import LiveSecNetwork, build_livesec_network
from repro.core.policy import Policy, PolicyAction, PolicyTable
from repro.core.policy_compiler import (
    CompiledPolicyTable,
    CompileResult,
    PolicyConflictError,
    PolicyIntent,
    compile_intents,
)
from repro.core.loadbalance import (
    Dispatcher,
    HashDispatcher,
    LeastConnectionsDispatcher,
    MinLoadDispatcher,
    RoundRobinDispatcher,
)
from repro.core.nib import NetworkInformationBase
from repro.core.events import EventLog, NetworkEvent
from repro.core.visualization import MonitoringComponent

__all__ = [
    "LiveSecController",
    "LiveSecNetwork",
    "build_livesec_network",
    "Policy",
    "PolicyAction",
    "PolicyTable",
    "PolicyIntent",
    "PolicyConflictError",
    "CompiledPolicyTable",
    "CompileResult",
    "compile_intents",
    "Dispatcher",
    "HashDispatcher",
    "LeastConnectionsDispatcher",
    "MinLoadDispatcher",
    "RoundRobinDispatcher",
    "NetworkInformationBase",
    "EventLog",
    "NetworkEvent",
    "MonitoringComponent",
]
