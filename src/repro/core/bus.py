"""The controller's deterministic in-process event bus.

The LiveSec controller is decomposed into NOX-style *apps*
(:mod:`repro.core.apps`) that communicate over this bus: the
composition root (:class:`repro.core.controller.LiveSecController`)
classifies raw OpenFlow input into the typed events below and
publishes them; apps subscribe to the types they care about and react
-- reading and writing the shared state surfaces (NIB, session table,
service registry, policy table) and publishing follow-up events of
their own.

Determinism is the design constraint: the same input sequence must
produce the same dispatch sequence, because the fault-injection
harness scores runs by a sha256 digest of the event log.  Dispatch is
therefore *synchronous and depth-first* (publishing from inside a
handler runs the nested handlers to completion before the outer
publish returns, exactly like the direct method calls the bus
replaced), and subscriber order is explicit: handlers fire ordered by
``(priority, subscription sequence)``, both of which are fixed at
wiring time.  No wall-clock, no hashing of ids, no set iteration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Type

__all__ = [
    "EventBus",
    "Subscription",
    # Raw OpenFlow input, classified by the composition root.
    "SwitchJoined",
    "SwitchLeft",
    "LinkDiscovered",
    "LinkTimedOut",
    "ArpIn",
    "DhcpIn",
    "ServiceFrameIn",
    "DataPacketIn",
    "FlowRemovedIn",
    "PortStatsIn",
    "FlowStatsIn",
    "BarrierReplyIn",
    "PathProofIn",
    "TaggedPacketIn",
    # Domain events published by apps for other apps.
    "HostExpired",
    "HostMoved",
    "ElementExpired",
    "FlowBlockRequested",
    "SourceBlockRequested",
    "UplinksLost",
    "PolicyReloaded",
    "ConnTrackUpdateIn",
    "PathViolation",
    "SwitchQuarantined",
    "SessionHandoffIn",
    "RemoteRuleOpIn",
    "AppLifecycleChanged",
]


# ======================================================================
# Typed events
#
# Events are plain frozen dataclasses: immutable envelopes around the
# underlying protocol message or shared-state record.  ``eq=False``
# keeps identity semantics (two PacketIns are never "the same event").


@dataclass(frozen=True, eq=False)
class SwitchJoined:
    """A datapath connected (carries the controller's SwitchHandle)."""

    handle: object


@dataclass(frozen=True, eq=False)
class SwitchLeft:
    """A datapath disconnected."""

    handle: object


@dataclass(frozen=True, eq=False)
class LinkDiscovered:
    """LLDP confirmed a new unidirectional switch-to-switch link."""

    link: object


@dataclass(frozen=True, eq=False)
class LinkTimedOut:
    """A previously confirmed link stopped being re-confirmed."""

    link: object


@dataclass(frozen=True, eq=False)
class ArpIn:
    """An ARP frame was punted to the controller."""

    packet_in: object
    arp: object


@dataclass(frozen=True, eq=False)
class DhcpIn:
    """A DHCP exchange was punted to the controller."""

    packet_in: object
    dhcp: object


@dataclass(frozen=True, eq=False)
class ServiceFrameIn:
    """A service-element wire message (LIVESEC UDP) was punted."""

    packet_in: object
    payload: bytes


@dataclass(frozen=True, eq=False)
class DataPacketIn:
    """A data-plane first packet was punted (everything else)."""

    packet_in: object


@dataclass(frozen=True, eq=False)
class FlowRemovedIn:
    """A flow entry expired or was deleted on a datapath."""

    message: object


@dataclass(frozen=True, eq=False)
class PortStatsIn:
    """A PortStatsReply arrived."""

    message: object


@dataclass(frozen=True, eq=False)
class FlowStatsIn:
    """A FlowStatsReply arrived."""

    message: object


@dataclass(frozen=True, eq=False)
class BarrierReplyIn:
    """A BarrierReply arrived for the given xid."""

    dpid: int
    xid: int


@dataclass(frozen=True, eq=False)
class PathProofIn:
    """An egress switch reported a forwarding-accountability proof
    (carries the raw :class:`repro.openflow.messages.PathProofReport`)."""

    message: object


@dataclass(frozen=True, eq=False)
class TaggedPacketIn:
    """A frame still carrying a path tag was punted to the controller:
    it left its expected path (misroute evidence), so it must reach
    the accountability app, never the steering first-packet path."""

    packet_in: object
    tag: object  # pathproof.PathTag


@dataclass(frozen=True, eq=False)
class HostExpired:
    """The host tracker expired a silent host (carries its record)."""

    record: object


@dataclass(frozen=True, eq=False)
class HostMoved:
    """A known host was re-learned at a different switch/port (VM
    migration, wired-to-wifi roam).  ``record`` is the updated NIB row;
    the old location rides along for caches keyed by it."""

    record: object
    old_dpid: int
    old_port: int


@dataclass(frozen=True, eq=False)
class ElementExpired:
    """The service directory declared an element offline."""

    record: object


@dataclass(frozen=True, eq=False)
class FlowBlockRequested:
    """Some app wants this flow dropped at its ingress switch.

    ``session`` is the affected session when one exists; ``policy``
    names the policy (or attack) for the FLOW_BLOCKED event log line.
    """

    flow: object
    src: object  # ingress HostRecord
    session: Optional[object] = None
    policy: str = "default"
    attack: Optional[str] = None


@dataclass(frozen=True, eq=False)
class SourceBlockRequested:
    """Some app wants every frame from this MAC dropped at its ingress."""

    mac: str
    record: object  # HostRecord locating the ingress


@dataclass(frozen=True, eq=False)
class UplinksLost:
    """Switches lost fabric uplinks; sessions through them are dead."""

    dpids: Tuple[int, ...]


@dataclass(frozen=True, eq=False)
class PolicyReloaded:
    """The policy table swapped atomically to a new version.

    Carries the :class:`repro.core.policy.PolicyCommit` record of the
    swap.  Steering invalidates its path-rule cache (established
    sessions keep their installed rules), policy-engine logs the new
    version, monitor counts the reload.
    """

    commit: object  # PolicyCommit


@dataclass(frozen=True, eq=False)
class ConnTrackUpdateIn:
    """A stateful firewall element reported a connection-state
    transition over the in-band wire channel (decoded message rides
    along).  The service directory publishes it after certificate
    verification; observers log/count it."""

    message: object  # repro.core.messages.ConnTrackMessage


@dataclass(frozen=True, eq=False)
class PathViolation:
    """The accountability app attributed a forwarding violation.

    ``dpid`` is the accused datapath; ``reason`` is the proof-chain
    verdict (``mark-mismatch``/``chain-truncated``/...) or
    ``proof-silence`` when detected by the absence audit.  Steering
    reacts by quarantining and rerouting sessions off the switch.
    """

    dpid: int
    reason: str
    session_id: Optional[int] = None
    evidence: str = "egress-proof"  # "egress-proof" | "stray-tag" | "audit"


@dataclass(frozen=True, eq=False)
class SwitchQuarantined:
    """The controller quarantined a datapath after a PathViolation:
    no new waypoint placement there, existing sessions rerouted."""

    dpid: int
    reason: str


@dataclass(frozen=True, eq=False)
class SessionHandoffIn:
    """Another shard transferred a roaming host's sessions to this one
    (carries the :class:`repro.core.sharding.SessionHandoff`).  Steering
    adopts the records: re-resolve the path from the new location,
    re-install ingress rules, preserve the session ids."""

    handoff: object  # sharding.SessionHandoff


@dataclass(frozen=True, eq=False)
class AppLifecycleChanged:
    """A controller app changed lifecycle state at runtime.

    ``action`` is one of ``started``/``stopped``/``reloaded``/
    ``removed``/``crash-detected``/``restarted``.  Steering reacts by
    invalidating caches and draining state owned by the departed app;
    the shard fabric surfaces per-shard app churn through it.  The
    ``app`` attribute names the app; ``status`` is its typed
    :class:`~repro.core.apps.base.ServiceStatus` at publish time (None
    once an app is removed outright).
    """

    app: str
    action: str
    status: Optional[object] = None  # ServiceStatus


@dataclass(frozen=True, eq=False)
class RemoteRuleOpIn:
    """Another shard asked this one -- the owner of the rule's
    datapath -- to install or delete a flow rule (carries the
    :class:`repro.core.sharding.RemoteRuleOp`)."""

    op: object  # sharding.RemoteRuleOp


# ======================================================================
# The bus


@dataclass(frozen=True)
class Subscription:
    """One (event type -> handler) edge, for introspection."""

    event: str
    app: str
    handler: str
    priority: int


class EventBus:
    """Synchronous, deterministically ordered publish/subscribe.

    Handlers for an event type fire in ``(priority, subscription
    order)`` -- lower priority first, ties broken by wiring order.
    ``publish`` dispatches depth-first: events published from inside a
    handler are fully handled before the outer ``publish`` returns.
    """

    def __init__(self, metrics=None):
        self._handlers: Dict[Type, List[_Edge]] = {}
        self._seq = itertools.count()
        self._published = {}  # event type name -> Counter
        self._metrics = metrics

    def subscribe(
        self,
        event_type: Type,
        handler: Callable[[object], None],
        app: str = "?",
        priority: int = 0,
    ) -> Callable[[], None]:
        """Register ``handler`` for events of ``event_type``.

        Returns an unsubscribe callable (idempotent).
        """
        edge = _Edge(
            priority=priority,
            seq=next(self._seq),
            handler=handler,
            app=app,
        )
        edges = self._handlers.setdefault(event_type, [])
        edges.append(edge)
        edges.sort(key=lambda e: (e.priority, e.seq))

        def unsubscribe() -> None:
            # The removed flag (checked by in-flight publishes) makes
            # unsubscribing from inside a handler safe: the snapshot a
            # running publish iterates may still hold this edge, but it
            # will no longer be dispatched at that depth.
            edge.removed = True
            try:
                edges.remove(edge)
            except ValueError:
                pass

        return unsubscribe

    def publish(self, event: object) -> int:
        """Dispatch ``event`` to its subscribers; returns how many ran."""
        if self._metrics is not None:
            name = type(event).__name__
            counter = self._published.get(name)
            if counter is None:
                counter = self._metrics.counter(
                    "bus.events_published",
                    "Events published on the controller bus",
                    event=name,
                )
                self._published[name] = counter
            counter.inc()
        edges = self._handlers.get(type(event))
        if not edges:
            return 0
        delivered = 0
        # Iterate a snapshot so handlers may subscribe/unsubscribe
        # freely: a subscriber added during this publish first fires on
        # the *next* event, and one removed during this publish is
        # skipped (the removed flag) -- every remaining subscriber at
        # this depth runs exactly once, never twice, never skipped.
        for edge in list(edges):
            if edge.removed:
                continue
            edge.handler(event)
            delivered += 1
        return delivered

    def unsubscribe_app(self, app: str) -> int:
        """Remove every subscription edge registered under ``app``.

        The rollback path for transactional app registration: when an
        app's constructor raises partway through wiring, the partially
        registered handlers are unreachable through the app object, but
        they still carry its name.  Returns how many edges were removed.
        """
        removed = 0
        for edges in self._handlers.values():
            for edge in [e for e in edges if e.app == app]:
                edge.removed = True
                edges.remove(edge)
                removed += 1
        return removed

    def subscriptions(self) -> List[Subscription]:
        """Every subscription edge, in deterministic dispatch order."""
        result: List[Subscription] = []
        for event_type in sorted(self._handlers, key=lambda t: t.__name__):
            for edge in self._handlers[event_type]:
                handler_name = getattr(
                    edge.handler, "__name__", repr(edge.handler)
                )
                result.append(Subscription(
                    event=event_type.__name__,
                    app=edge.app,
                    handler=handler_name,
                    priority=edge.priority,
                ))
        return result


@dataclass
class _Edge:
    priority: int
    seq: int
    handler: Callable[[object], None]
    app: str = "?"
    removed: bool = False
    extras: dict = field(default_factory=dict, repr=False)
