"""Connection tracking for the stateful distributed firewall.

SDFW (PAPERS.md, "SDN-based Stateful Distributed Firewall") keeps
firewalling *stateful* across a fleet of distributed enforcement
points: a connection admitted by the ACL once is tracked through
NEW -> ESTABLISHED -> CLOSED, and the tracking table is replicated to
the peer firewalls, so user-grain failover lands sessions on a replica
that already knows them -- no ACL re-evaluation mid-flight, and
reply-direction traffic rides the entry instead of needing a mirrored
rule.

:class:`ConnTrackTable` is the per-element table (five-tuple keyed,
direction-aware, idle expiry); :class:`ConnTrackReplicationGroup` is
the deployment-level replication fabric between same-type elements:
``publish`` schedules ``apply_conntrack_update`` on every live peer
after a fixed replication delay on the *simulator* clock, so
replication stays inside the determinism contract (and is independent
of the OpenFlow control channel the chaos harness impairs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# Connection states.
NEW = "NEW"
ESTABLISHED = "ESTABLISHED"
CLOSED = "CLOSED"

DEFAULT_IDLE_TIMEOUT_S = 60.0
DEFAULT_REPLICATION_DELAY_S = 2e-3

# A connection five-tuple: (nw_src, nw_dst, nw_proto, tp_src, tp_dst).
# Network/transport identity only -- the steering chain rewrites MAC
# labels between elements, so L2 fields must not participate.
FiveTuple = Tuple[Optional[str], Optional[str], Optional[int],
                  Optional[int], Optional[int]]


def five_tuple_of(flow) -> FiveTuple:
    """The connection identity of a 9-tuple flow."""
    return (flow.nw_src, flow.nw_dst, flow.nw_proto,
            flow.tp_src, flow.tp_dst)


def reversed_five_tuple(key: FiveTuple) -> FiveTuple:
    nw_src, nw_dst, nw_proto, tp_src, tp_dst = key
    return (nw_dst, nw_src, nw_proto, tp_dst, tp_src)


@dataclass
class ConnTrackEntry:
    """One tracked connection, keyed by its initiator-direction tuple."""

    key: FiveTuple
    state: str
    created_at: float
    last_seen: float
    packets: int = 0


@dataclass(frozen=True)
class ConnTrackUpdate:
    """A replicated state transition (also the controller-report unit)."""

    key: FiveTuple
    state: str
    at: float
    origin: str  # element mac/name of the firewall that saw it


@dataclass
class ConnTrackTable:
    """Five-tuple -> connection state machine with idle expiry."""

    idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S
    _entries: Dict[FiveTuple, ConnTrackEntry] = field(default_factory=dict)
    established_total: int = 0
    closed_total: int = 0
    expired_total: int = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries.values())

    def lookup(self, key: FiveTuple) -> Optional[ConnTrackEntry]:
        """The entry tracking this tuple, in either direction."""
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries.get(reversed_five_tuple(key))
        return entry

    def observe(
        self, key: FiveTuple, now: float, origin: str
    ) -> Tuple[ConnTrackEntry, Optional[ConnTrackUpdate]]:
        """Record one admitted packet; returns the entry plus the state
        transition to replicate (None when nothing changed).

        A packet in the initiator direction of an unknown tuple opens a
        NEW entry; the first packet in the *reply* direction promotes
        it to ESTABLISHED (the firewall saw both ends talk).
        """
        entry = self._entries.get(key)
        update: Optional[ConnTrackUpdate] = None
        if entry is not None:
            entry.last_seen = now
            entry.packets += 1
            return entry, None
        reverse = self._entries.get(reversed_five_tuple(key))
        if reverse is not None:
            reverse.last_seen = now
            reverse.packets += 1
            if reverse.state == NEW:
                reverse.state = ESTABLISHED
                self.established_total += 1
                update = ConnTrackUpdate(
                    key=reverse.key, state=ESTABLISHED, at=now, origin=origin
                )
            return reverse, update
        entry = ConnTrackEntry(
            key=key, state=NEW, created_at=now, last_seen=now, packets=1
        )
        self._entries[key] = entry
        update = ConnTrackUpdate(key=key, state=NEW, at=now, origin=origin)
        return entry, update

    def close(
        self, key: FiveTuple, now: float, origin: str
    ) -> Optional[ConnTrackUpdate]:
        """TCP FIN/RST observed: mark the connection CLOSED."""
        entry = self.lookup(key)
        if entry is None or entry.state == CLOSED:
            return None
        entry.state = CLOSED
        entry.last_seen = now
        self.closed_total += 1
        return ConnTrackUpdate(
            key=entry.key, state=CLOSED, at=now, origin=origin
        )

    def apply_update(self, update: ConnTrackUpdate, now: float) -> None:
        """Merge a replicated transition (last-state-wins by the
        NEW -> ESTABLISHED -> CLOSED ordering; timestamps refresh)."""
        entry = self.lookup(update.key)
        if entry is None:
            self._entries[update.key] = ConnTrackEntry(
                key=update.key, state=update.state,
                created_at=update.at, last_seen=now,
            )
            if update.state == ESTABLISHED:
                self.established_total += 1
            elif update.state == CLOSED:
                self.closed_total += 1
            return
        rank = {NEW: 0, ESTABLISHED: 1, CLOSED: 2}
        if rank.get(update.state, 0) > rank.get(entry.state, 0):
            entry.state = update.state
            if update.state == ESTABLISHED:
                self.established_total += 1
            elif update.state == CLOSED:
                self.closed_total += 1
        entry.last_seen = max(entry.last_seen, now)

    def expire(self, now: float) -> List[ConnTrackEntry]:
        """Drop entries idle past the timeout (CLOSED entries expire at
        a quarter of it); returns what was dropped."""
        dropped = []
        for key, entry in list(self._entries.items()):
            limit = self.idle_timeout_s
            if entry.state == CLOSED:
                limit = self.idle_timeout_s / 4.0
            if now - entry.last_seen > limit:
                del self._entries[key]
                dropped.append(entry)
        self.expired_total += len(dropped)
        return dropped

    def states(self) -> Dict[str, int]:
        counts = {NEW: 0, ESTABLISHED: 0, CLOSED: 0}
        for entry in self._entries.values():
            counts[entry.state] = counts.get(entry.state, 0) + 1
        return counts


class ConnTrackReplicationGroup:
    """Replicates conntrack transitions across same-type elements.

    The deployment registers every stateful firewall of one service
    type here; an element publishing a transition has it applied on
    each live peer ``replication_delay_s`` later on the simulator
    clock.  Failed/hung peers are skipped at delivery time, but a
    *restarting* replica calls :meth:`resync` to bulk-pull the fleet's
    ESTABLISHED connections from a live peer before serving, so
    crash-restart closes the old DESIGN §7 gap.  What remains of the
    gap: transitions missed during a *hang* (the replica never
    restarts, so it never re-syncs) are lost to it until the
    connection's next transition.
    """

    def __init__(self, sim, replication_delay_s: float = DEFAULT_REPLICATION_DELAY_S):
        self.sim = sim
        self.replication_delay_s = replication_delay_s
        self.members: List[object] = []
        self.updates_published = 0
        self.updates_delivered = 0
        self.resyncs = 0
        self.entries_resynced = 0

    def resync(self, member) -> int:
        """Bulk state transfer for a replica coming back from a crash:
        copy every ESTABLISHED entry from the first live peer (in
        registration order, so same-seed runs pick the same donor)
        into ``member``'s table.  Returns the number of entries
        copied; 0 when no live peer remains (the restarted replica
        then rebuilds state from traffic alone)."""
        now = self.sim.now
        for peer in self.members:
            if peer is member:
                continue
            if getattr(peer, "failed", False) or getattr(peer, "hung", False):
                continue
            copied = 0
            for entry in peer.conntrack:
                if entry.state != ESTABLISHED:
                    continue
                member.conntrack.apply_update(
                    ConnTrackUpdate(
                        key=entry.key, state=entry.state,
                        at=entry.created_at,
                        origin=getattr(peer, "name", "peer"),
                    ),
                    now,
                )
                copied += 1
            self.resyncs += 1
            self.entries_resynced += copied
            return copied
        return 0

    def register(self, element) -> None:
        if element not in self.members:
            self.members.append(element)

    def publish(self, origin, update: ConnTrackUpdate) -> None:
        """Fan a transition out to every other member."""
        self.updates_published += 1
        for member in self.members:
            if member is origin:
                continue
            self.sim.schedule(
                self.replication_delay_s, self._deliver, member, update
            )

    def _deliver(self, member, update: ConnTrackUpdate) -> None:
        # Delivery-time liveness check: a crashed or hung replica
        # misses the update (consistency gap, not a queue).
        if getattr(member, "failed", False) or getattr(member, "hung", False):
            return
        self.updates_delivered += 1
        member.apply_conntrack_update(update)
