"""Service-element registry and certification (Section III.D.1).

The controller "can be aware of the service element as a host, but
cannot find out whether it is a service element, or what the network
service is" -- elements identify themselves through the in-band message
channel.  This module keeps the registry those messages populate:
which elements exist, what service each provides, its latest load
report, and whether its certificate checks out.  Elements whose online
messages stop arriving are marked offline and excluded from dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core import messages as svcmsg
from repro.core.loadbalance import ElementLoad

DEFAULT_LIVENESS_TIMEOUT_S = 5.0


@dataclass
class ServiceElementRecord:
    """Registry row for one VM-based service element."""

    mac: str
    service_type: str
    first_seen: float
    last_seen: float
    cpu: float = 0.0
    memory: float = 0.0
    pps: float = 0.0
    active_flows: int = 0
    online: bool = True
    reports: int = 0
    offline_count: int = 0  # liveness-expiry transitions survived
    recovered_count: int = 0  # re-certifications after an expiry


class CertificateError(ValueError):
    """An element presented a missing or invalid certificate."""


class ServiceRegistry:
    """All known service elements, by MAC, with liveness tracking."""

    def __init__(
        self,
        secret: str,
        liveness_timeout_s: float = DEFAULT_LIVENESS_TIMEOUT_S,
    ):
        self._secret = secret
        self.liveness_timeout_s = liveness_timeout_s
        self.elements: Dict[str, ServiceElementRecord] = {}
        self.rejected_macs: Dict[str, str] = {}  # mac -> reason

    # ------------------------------------------------------------------
    # Certification

    def issue_certificate(self, element_mac: str) -> str:
        """Provision a certificate for a legitimate element (done out of
        band by the administrator when the VM is created)."""
        return svcmsg.issue_certificate(self._secret, element_mac)

    def verify_certificate(self, element_mac: str, certificate: str) -> bool:
        return certificate == svcmsg.issue_certificate(self._secret, element_mac)

    # ------------------------------------------------------------------
    # Message intake

    def handle_online(self, message: svcmsg.OnlineMessage, now: float
                      ) -> ServiceElementRecord:
        """Apply an online (liveness + load) message.

        Raises :class:`CertificateError` for a bad certificate; the
        controller then blocks the element's traffic at its ingress
        switch.
        """
        if not self.verify_certificate(message.element_mac, message.certificate):
            self.rejected_macs[message.element_mac] = "bad-certificate"
            raise CertificateError(
                f"element {message.element_mac} failed certification"
            )
        record = self.elements.get(message.element_mac)
        if record is None:
            record = ServiceElementRecord(
                mac=message.element_mac,
                service_type=message.service_type,
                first_seen=now,
                last_seen=now,
            )
            self.elements[message.element_mac] = record
        if not record.online:
            # Re-certification after a liveness expiry: the element is
            # a dispatch candidate again from this report on.
            record.recovered_count += 1
        record.service_type = message.service_type
        record.last_seen = now
        record.cpu = message.cpu
        record.memory = message.memory
        record.pps = message.pps
        record.active_flows = message.active_flows
        record.online = True
        record.reports += 1
        return record

    def verify_event(self, message: svcmsg.EventReportMessage) -> None:
        """Certificate check for event reports (same policy)."""
        if not self.verify_certificate(message.element_mac, message.certificate):
            self.rejected_macs[message.element_mac] = "bad-certificate"
            raise CertificateError(
                f"element {message.element_mac} failed certification"
            )

    # ------------------------------------------------------------------
    # Liveness and queries

    def expire(self, now: float) -> List[ServiceElementRecord]:
        """Mark elements silent beyond the timeout as offline.

        An expired element is excluded from :meth:`candidates` until
        its next valid online message re-certifies it (at which point
        it returns as a dispatch candidate; the controller zeroes its
        balancer pending state when it expires, so it comes back
        unbiased).
        """
        expired = []
        for record in self.elements.values():
            if record.online and now - record.last_seen > self.liveness_timeout_s:
                record.online = False
                record.offline_count += 1
                expired.append(record)
        return expired

    def get(self, mac: str) -> Optional[ServiceElementRecord]:
        return self.elements.get(mac)

    def is_element(self, mac: str) -> bool:
        return mac in self.elements

    def online_elements(self, service_type: Optional[str] = None
                        ) -> List[ServiceElementRecord]:
        return [
            record
            for record in self.elements.values()
            if record.online
            and (service_type is None or record.service_type == service_type)
        ]

    def candidates(self, service_type: str) -> List[ElementLoad]:
        """Dispatcher-ready view of online elements of one service type."""
        return [
            ElementLoad(
                mac=record.mac,
                reported_pps=record.pps,
                reported_cpu=record.cpu,
                assigned_flows=record.active_flows,
                pending=0,
            )
            for record in self.online_elements(service_type)
        ]

    def service_types(self) -> List[str]:
        return sorted({r.service_type for r in self.elements.values()})

    def summary(self) -> dict:
        online = [r for r in self.elements.values() if r.online]
        return {
            "total": len(self.elements),
            "online": len(online),
            "by_type": {
                kind: sum(1 for r in online if r.service_type == kind)
                for kind in self.service_types()
            },
            "rejected": len(self.rejected_macs),
        }
