"""JSON export of the monitoring database (the paper's LAMP backend).

Section IV.D: "the monitoring component then gathers the information
and records it to the database of a remote web server", from which the
Flash front-end periodically fetches display data.  This module is
that interface boundary: it serializes the event database and
snapshots to plain JSON-compatible structures (and optionally to a
file), so any external front-end -- or a notebook -- can render the
topology, users, elements, link loads and attack markers, live or for
any replayed moment.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core.events import NetworkEvent
from repro.core.visualization import MonitoringComponent, Snapshot


def event_to_dict(event: NetworkEvent) -> Dict[str, object]:
    """One event row as the web DB would store it."""
    return event.to_dict()


def snapshot_to_dict(snapshot: Snapshot) -> Dict[str, object]:
    """The display payload the front-end's timer request would fetch."""
    return {
        "time": snapshot.time,
        "switches": sorted(snapshot.switches),
        "links": sorted(snapshot.links),
        "full_mesh": snapshot.full_mesh(),
        "users": [
            {
                "mac": user.mac,
                "ip": user.ip,
                "dpid": user.dpid,
                "online": user.online,
                "applications": list(user.applications),
                "attacks": user.attacks,
                "blocked": user.blocked,
            }
            for user in sorted(snapshot.users.values(), key=lambda u: u.mac)
        ],
        "elements": [
            {
                "mac": element.mac,
                "service_type": element.service_type,
                "dpid": element.dpid,
                "online": element.online,
                "cpu": element.cpu,
                "pps": element.pps,
            }
            for element in sorted(snapshot.elements.values(),
                                  key=lambda e: e.mac)
        ],
        "link_loads": [
            {"dpid": dpid, "port": port, "utilization": load}
            for (dpid, port), load in sorted(snapshot.link_loads.items())
        ],
        "active_attacks": list(snapshot.active_attacks),
    }


class WebDatabase:
    """File/JSON gateway over a :class:`MonitoringComponent`."""

    def __init__(self, monitoring: MonitoringComponent):
        self.monitoring = monitoring

    def live_view(self) -> Dict[str, object]:
        return snapshot_to_dict(self.monitoring.snapshot())

    def replay_view(self, until: float) -> Dict[str, object]:
        return snapshot_to_dict(self.monitoring.replay(until=until))

    def events(self, since: Optional[float] = None) -> List[Dict[str, object]]:
        # The shared event log is the single store; there is no second
        # "database" copy to page through.
        rows = self.monitoring.log.query(since=since)
        return [event_to_dict(event) for event in rows]

    def dump(self, path: str) -> int:
        """Write the full DB (events + live view) to a JSON file.

        Returns the number of event rows written.
        """
        payload = {
            "events": self.events(),
            "live": self.live_view(),
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=1)
        return len(payload["events"])

    @staticmethod
    def load(path: str) -> Dict[str, object]:
        """Read a dumped DB back (for offline analysis/rendering)."""
        with open(path) as handle:
            return json.load(handle)
