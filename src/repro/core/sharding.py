"""Sharded control plane: N controller shards over one physical network.

The single :class:`~repro.core.controller.LiveSecController` owns every
switch in the seed deployment -- the scaling seam ROADMAP names as the
blocker for million-user networks.  This module splits the control
plane into a **shard fabric** in the PEPS shape (PAPERS.md: enforcement
as a horizontally scalable service):

* :class:`ShardMap` -- a deterministic dpid -> shard partition.  On the
  fat-tree it is per-pod (every pod's edge-attached access switches
  share one shard); elsewhere it is a balanced contiguous split of the
  sorted dpid space.  The map is *mutable history*: re-homing a dead
  shard's switches rewrites the affected entries, so remote-rule
  routing always targets the current owner.
* :class:`ShardMember` -- one shard: a full ``LiveSecController``
  composition root (its own EventBus, apps, NIB, session table, event
  log, metrics registry) plus the fabric-facing surface (handoff
  collection/adoption entry points, the deferral set, a conntrack-state
  cache fed by its elements' in-band reports).
* :class:`ShardCoordinator` -- the replicated-state protocol on the
  simulator clock: a periodic sync round in which every live shard
  publishes a :class:`ShardHello` carrying its NIB location digest
  (the replicated-NIB exchange doubling as the liveness heartbeat),
  the federated service directory is refreshed from per-shard exports,
  published hosts (the gateway) are advertised into every shard, and
  shards whose hellos go silent past the liveness timeout are declared
  SHARD_DOWN and their switches re-homed onto the survivors over fresh
  secure channels.

Cross-shard concerns are explicit typed protocol, never shared state:

* **Remote rules** (:class:`RemoteRuleOp`): a session whose path
  crosses a shard boundary has its foreign-dpid rules delivered to the
  owning shard after ``INTER_SHARD_LATENCY_S`` and installed by *that*
  shard's pipeline.
* **Session handoff** (:class:`SessionHandoff`): a HOST_JOIN/HOST_MOVE
  observed by a shard that is not the host's previous owner triggers
  the handoff protocol -- new sessions for the host are deferred, the
  old shard serializes the host's session records (ids, policy,
  waypoint MACs, cached conntrack states) and tears down its rules
  without ending the sessions, and the destination shard re-installs
  ingress rules from the new location preserving the session ids.
* **Directory federation** (:class:`FederatedElement`): steering can
  place waypoints on elements homed to any live shard; an element's
  death propagates to every consumer shard in the next sync round.

Everything runs on the one shared simulator, so two same-seed sharded
runs stay event-for-event identical; :func:`combined_digest` folds the
per-shard event-log digests (in shard order) and the coordinator's own
log into the determinism digest the chaos harness compares.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.bus import ConnTrackUpdateIn, RemoteRuleOpIn, SessionHandoffIn
from repro.core.conntrack import CLOSED, five_tuple_of
from repro.core.events import EventKind, EventLog
from repro.core.loadbalance import ElementLoad
from repro.obs import MetricsRegistry
from repro.openflow.channel import SecureChannel

__all__ = [
    "INTER_SHARD_LATENCY_S",
    "SYNC_INTERVAL_S",
    "SHARD_LIVENESS_TIMEOUT_S",
    "ShardMap",
    "ShardHello",
    "SessionHandoffRecord",
    "SessionHandoff",
    "RemoteRuleOp",
    "FederatedElement",
    "ShardMember",
    "ShardCoordinator",
    "combined_digest",
]

# One-way latency of the inter-shard channel (handoffs, remote rule
# ops, handoff requests).  Modeled as a dedicated control network,
# independent of the OpenFlow channels the chaos harness impairs.
INTER_SHARD_LATENCY_S = 1e-3
# Sync-round cadence: hello/digest exchange, federation refresh,
# published-host advertisement, liveness check.
SYNC_INTERVAL_S = 0.5
# A shard whose last hello is older than this is declared down.  Two
# missed rounds plus slack: crash detection lands on the next round
# boundary after the timeout, so worst-case TTD is about 2.1s.
SHARD_LIVENESS_TIMEOUT_S = 1.6


@dataclass
class ShardMap:
    """Deterministic dpid -> shard ownership, rewritten on re-homing."""

    num_shards: int
    assignments: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def contiguous(cls, dpids: Sequence[int], num_shards: int) -> "ShardMap":
        """Balanced contiguous slices of the sorted dpid space."""
        ordered = sorted(dpids)
        if num_shards < 1:
            raise ValueError(f"need at least one shard (got {num_shards})")
        if num_shards > len(ordered):
            raise ValueError(
                f"{num_shards} shards for {len(ordered)} switches"
            )
        shard_map = cls(num_shards=num_shards)
        per_shard, extra = divmod(len(ordered), num_shards)
        cursor = 0
        for shard in range(num_shards):
            width = per_shard + (1 if shard < extra else 0)
            for dpid in ordered[cursor:cursor + width]:
                shard_map.assignments[dpid] = shard
            cursor += width
        return shard_map

    @classmethod
    def per_pod(cls, k: int) -> "ShardMap":
        """The fat-tree partition: pod ``p`` (its ``k/2`` edge-attached
        access switches, dpids ``p*(k/2)+1 .. (p+1)*(k/2)``) -> shard
        ``p``.  One shard per pod, ``k`` shards total."""
        if k < 2 or k % 2:
            raise ValueError(f"k must be even and >= 2 (got {k})")
        half = k // 2
        shard_map = cls(num_shards=k)
        for dpid in range(1, k * half + 1):
            shard_map.assignments[dpid] = (dpid - 1) // half
        return shard_map

    def owner(self, dpid: int) -> int:
        """The shard currently owning this datapath."""
        return self.assignments[dpid]

    def owned_by(self, shard: int) -> List[int]:
        """This shard's datapaths, ascending."""
        return sorted(
            dpid for dpid, owner in self.assignments.items() if owner == shard
        )

    def dpids(self) -> List[int]:
        return sorted(self.assignments)

    def rehome(
        self, dead_shard: int, live_shards: Sequence[int]
    ) -> List[Tuple[int, int]]:
        """Reassign a dead shard's datapaths round-robin over the
        survivors (sorted, so the outcome is seed-independent).
        Returns the ``(dpid, new_shard)`` moves in dpid order."""
        targets = sorted(live_shards)
        if not targets:
            raise ValueError("no live shards to re-home onto")
        moves = []
        for index, dpid in enumerate(self.owned_by(dead_shard)):
            new_shard = targets[index % len(targets)]
            self.assignments[dpid] = new_shard
            moves.append((dpid, new_shard))
        return moves

    def to_dict(self) -> Dict[int, List[int]]:
        return {
            shard: self.owned_by(shard) for shard in range(self.num_shards)
        }


# ----------------------------------------------------------------------
# Typed inter-shard messages


@dataclass(frozen=True)
class ShardHello:
    """One shard's sync-round heartbeat: liveness + its NIB digest."""

    shard_id: int
    at: float
    nib_digest: str
    hosts: int
    sessions: int


@dataclass(frozen=True)
class SessionHandoffRecord:
    """One session serialized for cross-shard transfer: identity,
    policy, waypoint placement, and the conntrack states the origin
    shard had cached for its five-tuple."""

    session_id: int
    flow: object  # FlowNineTuple (forward direction)
    src_mac: str
    dst_mac: str
    policy_name: str
    element_macs: Tuple[str, ...]
    created_at: float
    application: Optional[str]
    conntrack: Tuple[Tuple[tuple, str], ...] = ()


@dataclass(frozen=True)
class SessionHandoff:
    """The transfer unit for one roaming host's established sessions."""

    mac: str
    ip: Optional[str]
    from_shard: int
    to_shard: int
    records: Tuple[SessionHandoffRecord, ...] = ()


@dataclass(frozen=True)
class RemoteRuleOp:
    """A flow rule delivered to the shard owning its datapath."""

    op: str  # "add" | "delete"
    rule: object  # a steering FlowRule
    from_shard: int


@dataclass(frozen=True)
class FederatedElement:
    """One service element as exported into the federated directory."""

    mac: str
    service_type: str
    shard_id: int
    dpid: int
    port: int
    ip: Optional[str]
    pps: float
    cpu: float
    active_flows: int


# ----------------------------------------------------------------------
# Shard member


class ShardMember:
    """One shard of the fabric: a controller plus its protocol surface.

    Construction wires the member into its controller
    (``controller.shard``), subscribes to the controller's event log to
    observe HOST_JOIN/HOST_MOVE synchronously (the handoff trigger must
    fire before steering can set up a fresh session for the mover), and
    caches conntrack states from the shard's firewalls' in-band reports
    so a handoff can serialize them.
    """

    def __init__(self, shard_id: int, controller, coordinator):
        self.shard_id = shard_id
        self.controller = controller
        self.coordinator = coordinator
        self.failed = False
        # Hosts whose session state is in flight from another shard:
        # steering defers fresh sessions for them until the handoff
        # arrives (or an empty transfer clears them).
        self.pending_handoff: set = set()
        # Five-tuple -> last reported conntrack state from this shard's
        # stateful firewalls (the serialized-over-handoff state).
        self._conntrack: Dict[tuple, str] = {}
        controller.shard = self
        controller.log.subscribe(self._on_log_event)
        controller.bus.subscribe(
            ConnTrackUpdateIn, self._on_conntrack, app="shard-fabric"
        )
        coordinator.register(self)

    # -- observation hooks --------------------------------------------

    def _on_log_event(self, event) -> None:
        if self.failed:
            return
        if event.kind in (EventKind.HOST_JOIN, EventKind.HOST_MOVE):
            self.coordinator.host_seen(
                self,
                mac=event.data.get("mac"),
                ip=event.data.get("ip"),
                dpid=event.data.get("dpid"),
                port=event.data.get("port"),
            )

    def _on_conntrack(self, event) -> None:
        message = event.message
        if message.state == CLOSED:
            self._conntrack.pop(message.conn, None)
        else:
            self._conntrack[message.conn] = message.state

    # -- fabric surface used by the apps ------------------------------

    def session_deferred(self, mac: str) -> bool:
        """Is a handoff for this host still in flight?"""
        return mac in self.pending_handoff

    def install_remote(self, rule) -> bool:
        """Route a foreign-dpid rule install through the fabric."""
        return self.coordinator.remote_rule(self, "add", rule)

    def remove_remote(self, rule) -> bool:
        """Route a foreign-dpid rule delete through the fabric."""
        return self.coordinator.remote_rule(self, "delete", rule)

    def remote_candidates(self, service_type: str) -> List[ElementLoad]:
        """Waypoint candidates homed to other live shards."""
        return self.coordinator.remote_candidates(self, service_type)

    def restore_conntrack(
        self, states: Sequence[Tuple[tuple, str]]
    ) -> None:
        """Seed the conntrack cache from a handoff's serialized states,
        so a further move re-serializes them from here."""
        for key, state in states:
            self._conntrack[key] = state

    def adopt_host(self, mac, ip, dpid, port, is_element=False):
        """Accept a remote host record into this shard's NIB (no
        announcement, no HOST_JOIN event -- it is not ours)."""
        tracker = self.controller.app("host-tracker")
        return tracker.adopt_remote_host(
            mac, ip, dpid, port, is_element=is_element
        )

    # -- protocol endpoints (called by the coordinator) ----------------

    def hello(self, now: float) -> ShardHello:
        return ShardHello(
            shard_id=self.shard_id,
            at=now,
            nib_digest=self.controller.nib.location_digest(),
            hosts=len(self.controller.nib.hosts),
            sessions=len(self.controller.sessions),
        )

    def directory_export(self) -> List[dict]:
        directory = self.controller.app("service-directory")
        return directory.directory_export()

    def collect_handoff(
        self, mac: str, ip: Optional[str], to_shard: int
    ) -> SessionHandoff:
        """Serialize and release every session of a departing host.

        The origin shard's rules are deleted (locally and, for
        cross-shard rules, over the fabric) but the sessions are *not*
        ended -- their identity transfers to the destination shard.
        """
        steering = self.controller.app("steering")
        sessions = sorted(
            self.controller.sessions.sessions_of_user(mac),
            key=lambda s: s.session_id,
        )
        records = []
        for session in sessions:
            if session.blocked:
                continue
            states = []
            for key in (five_tuple_of(session.flow),
                        five_tuple_of(session.reverse_flow)):
                state = self._conntrack.get(key)
                if state is not None:
                    states.append((key, state))
            steering.release_session_for_handoff(session)
            records.append(SessionHandoffRecord(
                session_id=session.session_id,
                flow=session.flow,
                src_mac=session.src_mac,
                dst_mac=session.dst_mac,
                policy_name=session.policy_name,
                element_macs=tuple(session.element_macs),
                created_at=session.created_at,
                application=session.application,
                conntrack=tuple(states),
            ))
        return SessionHandoff(
            mac=mac, ip=ip, from_shard=self.shard_id,
            to_shard=to_shard, records=tuple(records),
        )

    def receive_handoff(self, handoff: SessionHandoff) -> None:
        self.pending_handoff.discard(handoff.mac)
        if self.failed:
            return
        self.controller.bus.publish(SessionHandoffIn(handoff=handoff))

    def receive_rule_op(self, op: RemoteRuleOp) -> None:
        if self.failed:
            return
        self.controller.bus.publish(RemoteRuleOpIn(op=op))

    # -- fault surface --------------------------------------------------

    def fail(self) -> None:
        """Crash this shard: its channels drop, its clock stops
        mattering.  Data-plane flow entries survive on the switches, so
        established sessions keep forwarding while the coordinator's
        liveness timeout runs down."""
        self.failed = True
        for channel in self.coordinator.channels_of(self):
            channel.disconnect()

    def restart(self) -> None:
        """Rejoin the fabric as an empty live shard.  The member's old
        switches stay with their re-homed owners; new ownership only
        arrives through future re-homing decisions."""
        self.failed = False
        self.pending_handoff.clear()
        self._conntrack.clear()
        self.coordinator.member_restarted(self)

    def app_status(self) -> Dict[str, str]:
        """Per-app lifecycle state on this shard's controller, by app
        name -- the fabric's runtime-ops surface: sharded members run
        their own app sets, and a member can stop/reload an app while
        its siblings keep theirs running."""
        return {
            name: status.state
            for name, status in self.controller.app_status().items()
        }


# ----------------------------------------------------------------------
# Coordinator


class ShardCoordinator:
    """The fabric's replicated-state protocol on the simulator clock."""

    def __init__(
        self,
        sim,
        shard_map: ShardMap,
        metrics: Optional[MetricsRegistry] = None,
        latency_s: float = INTER_SHARD_LATENCY_S,
        sync_interval_s: float = SYNC_INTERVAL_S,
        liveness_timeout_s: float = SHARD_LIVENESS_TIMEOUT_S,
        control_latency_s: float = 0.5e-3,
    ):
        self.sim = sim
        self.shard_map = shard_map
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.log = EventLog(metrics=self.metrics)
        self.latency_s = latency_s
        self.sync_interval_s = sync_interval_s
        self.liveness_timeout_s = liveness_timeout_s
        self.control_latency_s = control_latency_s
        self.members: List[ShardMember] = []
        # Physical surface for re-homing, registered by the deployment.
        self.switches: Dict[int, object] = {}
        self.channels: Dict[int, SecureChannel] = {}
        self._register_capacity: Optional[Callable] = None
        # Protocol state.
        self._last_hello: Dict[int, float] = {}
        self._hellos: Dict[int, ShardHello] = {}
        self._down: Dict[int, float] = {}  # shard -> declared-down time
        # mac -> (shard_id, dpid, port, ip): the fabric-wide host
        # location directory fed synchronously from shard logs.
        self._location: Dict[str, tuple] = {}
        self._federation: Dict[str, FederatedElement] = {}
        self._published: Dict[str, tuple] = {}  # mac -> (ip, dpid, port)
        self._hello_count = self.metrics.counter(
            "sharding.hellos", "Sync-round hello/digest exchanges"
        )
        self._handoff_count = self.metrics.counter(
            "sharding.handoff_sessions",
            "Sessions transferred between shards on host moves",
        )
        self._rule_ops = self.metrics.counter(
            "sharding.remote_rule_ops",
            "Flow rules routed to their owning shard over the fabric",
        )
        self._rule_drops = self.metrics.counter(
            "sharding.remote_rule_drops",
            "Remote rule ops dropped (owner shard dead or unknown dpid)",
        )
        self._rehomed = self.metrics.counter(
            "sharding.rehomed_switches",
            "Switches re-homed off dead shards onto survivors",
        )

    # -- membership -----------------------------------------------------

    def register(self, member: ShardMember) -> None:
        self.members.append(member)

    def member(self, shard_id: int) -> Optional[ShardMember]:
        for member in self.members:
            if member.shard_id == shard_id:
                return member
        return None

    def live_members(self) -> List[ShardMember]:
        return [
            member for member in self.members
            if not member.failed and member.shard_id not in self._down
        ]

    def channels_of(self, member: ShardMember) -> List[SecureChannel]:
        return [
            self.channels[dpid]
            for dpid in sorted(self.channels)
            if self.channels[dpid].controller is member.controller
        ]

    def attach_physical(
        self, switches: Dict[int, object], channels: Dict[int, SecureChannel],
        register_capacity: Optional[Callable] = None,
    ) -> None:
        """The deployment hands over its switch/channel registries so
        re-homing can mint fresh secure channels."""
        self.switches = switches
        self.channels = channels
        self._register_capacity = register_capacity

    def publish_host(self, mac: str, ip: Optional[str],
                     dpid: int, port: int) -> None:
        """Advertise a well-known host (the gateway) into every shard's
        NIB each sync round, so cross-shard destinations resolve."""
        self._published[mac] = (ip, dpid, port)

    def start(self) -> None:
        self.sim.every(
            self.sync_interval_s, self._sync_round,
            start=self.sim.now + self.sync_interval_s,
        )

    # -- the sync round -------------------------------------------------

    def _sync_round(self) -> None:
        now = self.sim.now
        exports: List[Tuple[ShardMember, List[dict]]] = []
        for member in self.members:
            if member.failed or member.shard_id in self._down:
                continue
            hello = member.hello(now)
            previous = self._hellos.get(member.shard_id)
            self._last_hello[member.shard_id] = now
            self._hellos[member.shard_id] = hello
            self._hello_count.inc()
            if previous is None or previous.nib_digest != hello.nib_digest:
                # Log only digest *changes*: the exchange is every
                # round, but steady state would drown the event log.
                self.log.emit(
                    now, EventKind.SHARD_HELLO,
                    shard=member.shard_id,
                    nib_digest=hello.nib_digest[:16],
                    hosts=hello.hosts, sessions=hello.sessions,
                )
            exports.append((member, member.directory_export()))
        self._check_liveness(now)
        self._refresh_federation(exports)
        self._advertise_published()

    def _check_liveness(self, now: float) -> None:
        for member in self.members:
            shard_id = member.shard_id
            if shard_id in self._down:
                continue
            last = self._last_hello.get(shard_id)
            if last is None or now - last <= self.liveness_timeout_s:
                continue
            self._declare_down(member, now)

    def _declare_down(self, member: ShardMember, now: float) -> None:
        shard_id = member.shard_id
        owned = self.shard_map.owned_by(shard_id)
        self._down[shard_id] = now
        self.log.emit(
            now, EventKind.SHARD_DOWN,
            shard=shard_id, dpids=tuple(owned),
            silent_s=round(now - self._last_hello.get(shard_id, 0.0), 6),
        )
        live = [m.shard_id for m in self.members
                if not m.failed and m.shard_id not in self._down]
        if not live:
            return  # nothing left to re-home onto
        for dpid, new_shard in self.shard_map.rehome(shard_id, live):
            self._rehome_switch(dpid, shard_id, new_shard, now)

    def _rehome_switch(
        self, dpid: int, dead_shard: int, new_shard: int, now: float
    ) -> None:
        switch = self.switches.get(dpid)
        target = self.member(new_shard)
        if switch is None or target is None:
            return
        channel = SecureChannel(
            self.sim, switch, target.controller,
            latency_s=self.control_latency_s,
        )
        channel.connect()
        switch.attach_metrics(target.controller.metrics)
        self.channels[dpid] = channel
        if self._register_capacity is not None:
            self._register_capacity(switch, target.controller)
        self._rehomed.inc()
        self.log.emit(
            now, EventKind.SHARD_REHOME,
            shard=dead_shard, dpid=dpid, new_shard=new_shard,
        )

    def member_restarted(self, member: ShardMember) -> None:
        self._down.pop(member.shard_id, None)
        self._last_hello[member.shard_id] = self.sim.now

    # -- federated service directory ------------------------------------

    def _refresh_federation(
        self, exports: List[Tuple[ShardMember, List[dict]]]
    ) -> None:
        previous = self._federation
        fresh: Dict[str, FederatedElement] = {}
        for member, rows in exports:
            for row in rows:
                fresh[row["mac"]] = FederatedElement(
                    mac=row["mac"],
                    service_type=row["service_type"],
                    shard_id=member.shard_id,
                    dpid=row["dpid"],
                    port=row["port"],
                    ip=row.get("ip"),
                    pps=row.get("pps", 0.0),
                    cpu=row.get("cpu", 0.0),
                    active_flows=row.get("active_flows", 0),
                )
        self._federation = fresh
        # Death propagation: an element gone from its origin's export
        # (crashed, expired, or its whole shard died) must stop being a
        # waypoint candidate everywhere *and* fail over the sessions of
        # shards that had borrowed it.
        for mac in sorted(previous):
            if mac in fresh:
                continue
            origin = previous[mac]
            for member in self.live_members():
                if member.shard_id == origin.shard_id:
                    continue  # the origin already ran its own expiry
                directory = member.controller.app("service-directory")
                directory.remote_element_down(mac)

    def remote_candidates(
        self, member: ShardMember, service_type: str
    ) -> List[ElementLoad]:
        loads: List[ElementLoad] = []
        for mac in sorted(self._federation):
            entry = self._federation[mac]
            if entry.service_type != service_type:
                continue
            if entry.shard_id == member.shard_id:
                continue
            origin = self.member(entry.shard_id)
            if origin is None or origin.failed or entry.shard_id in self._down:
                continue
            # The borrowing shard needs the element routable in its own
            # NIB before steering can compute a path through it.
            member.adopt_host(
                entry.mac, entry.ip, entry.dpid, entry.port, is_element=True
            )
            loads.append(ElementLoad(
                mac=entry.mac,
                reported_pps=entry.pps,
                reported_cpu=entry.cpu,
                assigned_flows=entry.active_flows,
                pending=0,
            ))
        return loads

    def _advertise_published(self) -> None:
        for mac in sorted(self._published):
            ip, dpid, port = self._published[mac]
            owner = self.shard_map.assignments.get(dpid)
            for member in self.live_members():
                if member.shard_id == owner:
                    continue  # the owner learns it from the wire
                member.adopt_host(mac, ip, dpid, port)

    # -- host location + session handoff --------------------------------

    def host_seen(self, member: ShardMember, mac, ip, dpid, port) -> None:
        """Synchronous location-directory update from a shard's
        HOST_JOIN/HOST_MOVE.  A host surfacing on a shard that is not
        its previous owner starts the handoff protocol *before*
        steering can act on the packet that revealed it."""
        if mac is None:
            return
        prior = self._location.get(mac)
        self._location[mac] = (member.shard_id, dpid, port, ip)
        if prior is None or prior[0] == member.shard_id:
            return
        old_shard = prior[0]
        old_member = self.member(old_shard)
        member.pending_handoff.add(mac)
        if (old_member is None or old_member.failed
                or old_shard in self._down):
            # The old owner is gone: nothing to transfer, do not defer.
            self.sim.schedule(
                self.latency_s, self._deliver_handoff, member,
                SessionHandoff(mac=mac, ip=ip, from_shard=old_shard,
                               to_shard=member.shard_id),
            )
            return
        self.sim.schedule(
            self.latency_s, self._request_handoff,
            old_member, member, mac, ip,
        )

    def _request_handoff(
        self, old_member: ShardMember, new_member: ShardMember,
        mac: str, ip: Optional[str],
    ) -> None:
        if old_member.failed:
            handoff = SessionHandoff(
                mac=mac, ip=ip, from_shard=old_member.shard_id,
                to_shard=new_member.shard_id,
            )
        else:
            handoff = old_member.collect_handoff(
                mac, ip, new_member.shard_id
            )
        self.sim.schedule(
            self.latency_s, self._deliver_handoff, new_member, handoff
        )

    def _deliver_handoff(
        self, member: ShardMember, handoff: SessionHandoff
    ) -> None:
        self._handoff_count.inc(len(handoff.records))
        self.log.emit(
            self.sim.now, EventKind.SESSION_HANDOFF,
            mac=handoff.mac, from_shard=handoff.from_shard,
            to_shard=handoff.to_shard, sessions=len(handoff.records),
        )
        member.receive_handoff(handoff)

    # -- remote rules ----------------------------------------------------

    def remote_rule(self, member: ShardMember, op: str, rule) -> bool:
        owner_shard = self.shard_map.assignments.get(rule.dpid)
        target = self.member(owner_shard) if owner_shard is not None else None
        if (target is None or target.failed
                or owner_shard in self._down):
            self._rule_drops.inc()
            return False
        self._rule_ops.inc()
        self.sim.schedule(
            self.latency_s, target.receive_rule_op,
            RemoteRuleOp(op=op, rule=rule, from_shard=member.shard_id),
        )
        return True

    # -- introspection ---------------------------------------------------

    def status(self) -> dict:
        """The ``repro shards`` view: ownership, liveness, digests."""
        shards = []
        for member in self.members:
            shard_id = member.shard_id
            hello = self._hellos.get(shard_id)
            shards.append({
                "shard": shard_id,
                "dpids": self.shard_map.owned_by(shard_id),
                "live": not member.failed and shard_id not in self._down,
                "hosts": hello.hosts if hello else 0,
                "sessions": hello.sessions if hello else 0,
                "nib_digest": hello.nib_digest if hello else None,
                "last_hello": self._last_hello.get(shard_id),
                # Runtime app lifecycle, per shard: app churn on one
                # member is visible without asking its controller.
                "apps": member.app_status(),
            })
        return {
            "num_shards": self.shard_map.num_shards,
            "shards": shards,
            "down": sorted(self._down),
            "federated_elements": len(self._federation),
            "handoff_sessions": int(self._handoff_count.value),
            "remote_rule_ops": int(self._rule_ops.value),
            "rehomed_switches": int(self._rehomed.value),
        }


def combined_digest(members: Sequence[ShardMember],
                    coordinator: Optional[ShardCoordinator] = None) -> str:
    """One determinism digest for a sharded run: the per-shard event
    logs folded in shard order plus the coordinator's own log, so the
    result is independent of anything but the events themselves."""
    digest = hashlib.sha256()
    for member in sorted(members, key=lambda m: m.shard_id):
        digest.update(
            f"shard {member.shard_id} "
            f"{member.controller.log.digest()}\n".encode()
        )
    if coordinator is not None:
        digest.update(f"coordinator {coordinator.log.digest()}\n".encode())
    return digest.hexdigest()
