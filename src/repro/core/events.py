"""Typed network events and the global event log.

Section III.D.2: "In LiveSec, we can master the network events by only
first few packets.  Because the log information is global, it is
convenient to manage the network by visualizing the network
environment, and locate the network problems by replaying the history
events."  Every controller subsystem appends here; the monitoring /
visualization layer subscribes and can reconstruct state at any past
time from the ordered log.

The log is *segmented* so it scales to paper-size deployments: events
live in fixed-size segments, each carrying its time bounds and
per-kind counts, so :meth:`EventLog.query` skips whole segments that
cannot contain a hit instead of scanning every event.  Old segments
can be *compacted* (``retention=``): high-churn sample kinds
(``ELEMENT_LOAD``, ``LINK_LOAD``) collapse to the last value per key
while discrete lifecycle events stay lossless.  The log also persists
as JSONL (:meth:`EventLog.save` / :meth:`EventLog.load` /
:meth:`EventLog.stream_to`), which is what ``python -m repro replay``
reconstructs past moments from.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    IO,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)


class EventKind:
    """Event type names (string constants, so logs stay greppable)."""

    SWITCH_JOIN = "switch-join"
    SWITCH_LEAVE = "switch-leave"
    LINK_UP = "link-up"
    LINK_DOWN = "link-down"
    HOST_JOIN = "host-join"
    HOST_LEAVE = "host-leave"
    HOST_MOVE = "host-move"
    ELEMENT_ONLINE = "element-online"
    ELEMENT_OFFLINE = "element-offline"
    ELEMENT_LOAD = "element-load"
    ELEMENT_REJECTED = "element-rejected"
    FLOW_START = "flow-start"
    FLOW_END = "flow-end"
    FLOW_STEERED = "flow-steered"
    FLOW_BLOCKED = "flow-blocked"
    ATTACK_DETECTED = "attack-detected"
    PROTOCOL_IDENTIFIED = "protocol-identified"
    LINK_LOAD = "link-load"
    POLICY_CHANGED = "policy-changed"
    FLOW_FAILOVER = "flow-failover"
    SWITCH_RESYNC = "switch-resync"
    FAULT_INJECTED = "fault-injected"
    PATH_VIOLATION = "path-violation"
    SWITCH_QUARANTINED = "switch-quarantined"
    CONNTRACK_STATE = "conntrack-state"
    SHARD_HELLO = "shard-hello"
    SHARD_DOWN = "shard-down"
    SHARD_REHOME = "shard-rehome"
    SESSION_HANDOFF = "session-handoff"
    APP_LIFECYCLE = "app-lifecycle"


#: High-churn periodic samples: compaction may collapse them to the
#: last value per key.  Every other kind is a discrete lifecycle event
#: and is never dropped.
SAMPLE_KINDS: Dict[str, Callable[[Mapping[str, object]], object]] = {
    EventKind.ELEMENT_LOAD: lambda data: data.get("mac"),
    EventKind.LINK_LOAD: lambda data: (data.get("dpid"), data.get("port")),
}


@dataclass(frozen=True)
class NetworkEvent:
    """One immutable entry in the global event log.

    ``seq`` is the log-assigned global sequence number (append order);
    it is bookkeeping, not content: it does not participate in
    equality, rendering, or the persisted form.
    """

    time: float
    kind: str
    data: Dict[str, object] = field(default_factory=dict)
    seq: int = field(default=-1, compare=False)

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in sorted(self.data.items()))
        return f"[{self.time:10.4f}] {self.kind:<22} {details}"

    def to_dict(self) -> Dict[str, object]:
        return {"time": self.time, "kind": self.kind, "data": dict(self.data)}

    @classmethod
    def from_dict(cls, row: Mapping[str, object]) -> "NetworkEvent":
        return cls(
            time=float(row["time"]),  # type: ignore[arg-type]
            kind=str(row["kind"]),
            data=dict(row.get("data", {})),  # type: ignore[arg-type]
        )

    def json_line(self) -> str:
        """The canonical one-line JSON form (persistence and digests).

        Canonical means sorted keys and no whitespace, so the digest of
        a stream is stable across a save/load round trip (tuples become
        lists either way).
        """
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"), default=_jsonify)


def _jsonify(value: object) -> object:
    if isinstance(value, (set, frozenset)):
        return sorted(value)  # pragma: no cover - defensive
    return str(value)


Subscriber = Callable[[NetworkEvent], None]

DEFAULT_SEGMENT_SIZE = 512


class _Segment:
    """One fixed-size slice of the log with its query-skip metadata."""

    __slots__ = ("events", "seq_first", "seq_last", "t_min", "t_max",
                 "counts", "compacted")

    def __init__(self) -> None:
        self.events: List[NetworkEvent] = []
        self.seq_first = -1
        self.seq_last = -1
        self.t_min = float("inf")
        self.t_max = float("-inf")
        self.counts: Dict[str, int] = {}
        self.compacted = False

    def append(self, event: NetworkEvent) -> None:
        if not self.events:
            self.seq_first = event.seq
        self.seq_last = event.seq
        self.events.append(event)
        self.t_min = min(self.t_min, event.time)
        self.t_max = max(self.t_max, event.time)
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1

    def compact(self) -> int:
        """Collapse sample kinds to last-value-per-key; return the
        number of events dropped.  Lifecycle events are untouched."""
        if self.compacted:
            return 0
        self.compacted = True
        last_for_key: Dict[Tuple[str, object], int] = {}
        for index, event in enumerate(self.events):
            key_fn = SAMPLE_KINDS.get(event.kind)
            if key_fn is not None:
                last_for_key[(event.kind, key_fn(event.data))] = index
        keep: List[NetworkEvent] = []
        for index, event in enumerate(self.events):
            key_fn = SAMPLE_KINDS.get(event.kind)
            if key_fn is None:
                keep.append(event)
            elif last_for_key[(event.kind, key_fn(event.data))] == index:
                keep.append(event)
        dropped = len(self.events) - len(keep)
        if dropped:
            self.events = keep
            self.counts = {}
            for event in keep:
                self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        return dropped


class EventLog:
    """An append-only, time-ordered, segmented event log.

    * ``segment_size`` — events per segment; a sealed segment's time
      bounds and per-kind counts let queries skip it wholesale.
    * ``retention`` — number of *sealed* segments kept raw.  ``None``
      (the default) keeps everything lossless; an integer N compacts
      segments older than the N newest sealed ones (sample kinds
      collapse to last-value-per-key, lifecycle kinds are kept).
    * subscribers see every event exactly once, in emit order, before
      ``emit`` returns — compaction never touches what subscribers
      already saw.
    """

    def __init__(
        self,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        retention: Optional[int] = None,
        metrics=None,
    ) -> None:
        if segment_size < 1:
            raise ValueError("segment_size must be >= 1")
        if retention is not None and retention < 0:
            raise ValueError("retention must be None or >= 0")
        self.segment_size = segment_size
        self.retention = retention
        self._segments: List[_Segment] = [_Segment()]
        self._subscribers: List[Subscriber] = []
        self._next_seq = 0
        self._size = 0
        self.compacted_events = 0
        self._stream: Optional[IO[str]] = None
        self._compacted_counter = None
        if metrics is not None:
            self.attach_metrics(metrics)

    # ------------------------------------------------------------------
    # Observability

    def attach_metrics(self, registry) -> None:
        """Register the log's gauges/counters on an obs registry."""
        registry.gauge(
            "eventlog.events", "Events currently retained in the log"
        ).set_function(lambda: float(self._size))
        registry.gauge(
            "eventlog.segments", "Segments (sealed + active) in the log"
        ).set_function(lambda: float(len(self._segments)))
        self._compacted_counter = registry.counter(
            "eventlog.compacted_total",
            "Sample events dropped by segment compaction",
        )

    # ------------------------------------------------------------------
    # Append path

    def emit(self, time: float, kind: str, **data: object) -> NetworkEvent:
        """Append an event and notify subscribers."""
        event = NetworkEvent(time=time, kind=kind, data=dict(data),
                             seq=self._next_seq)
        self._next_seq += 1
        self._append(event)
        if self._stream is not None:
            self._stream.write(event.json_line() + "\n")
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def _append(self, event: NetworkEvent) -> None:
        active = self._segments[-1]
        if len(active.events) >= self.segment_size:
            self._segments.append(_Segment())
            active = self._segments[-1]
            self._run_retention()
        active.append(event)
        self._size += 1

    def _run_retention(self) -> None:
        if self.retention is None:
            return
        sealed = len(self._segments) - 1
        for segment in self._segments[: max(0, sealed - self.retention)]:
            dropped = segment.compact()
            if dropped:
                self._size -= dropped
                self.compacted_events += dropped
                if self._compacted_counter is not None:
                    self._compacted_counter.inc(dropped)

    def subscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.append(subscriber)

    # ------------------------------------------------------------------
    # Read path

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[NetworkEvent]:
        for segment in self._segments:
            yield from segment.events

    def all(self) -> List[NetworkEvent]:
        return list(self)

    def events_after(self, seq: int) -> Iterator[NetworkEvent]:
        """Events with sequence number strictly greater than ``seq``,
        in log order (the checkpoint-delta iterator)."""
        for segment in self._segments:
            if segment.seq_last <= seq:
                continue
            for event in segment.events:
                if event.seq > seq:
                    yield event

    def query(
        self,
        kind: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        where: Optional[Callable[[NetworkEvent], bool]] = None,
    ) -> List[NetworkEvent]:
        """Filter the log by kind and/or time window and/or predicate.

        Whole segments are skipped via their per-kind counts and time
        bounds; only surviving segments are scanned.  Both ``since``
        and ``until`` are inclusive.
        """
        result: List[NetworkEvent] = []
        for segment in self._segments:
            if not segment.events:
                continue
            if kind is not None and kind not in segment.counts:
                continue
            if since is not None and segment.t_max < since:
                continue
            if until is not None and segment.t_min > until:
                continue
            for event in segment.events:
                if kind is not None and event.kind != kind:
                    continue
                if since is not None and event.time < since:
                    continue
                if until is not None and event.time > until:
                    continue
                if where is not None and not where(event):
                    continue
                result.append(event)
        return result

    def _query_linear(
        self,
        kind: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        where: Optional[Callable[[NetworkEvent], bool]] = None,
    ) -> List[NetworkEvent]:
        """The pre-segmentation reference scan (oracle for tests and
        the E16 bench): same semantics, no segment skipping."""
        result = []
        for event in self:
            if kind is not None and event.kind != kind:
                continue
            if since is not None and event.time < since:
                continue
            if until is not None and event.time > until:
                continue
            if where is not None and not where(event):
                continue
            result.append(event)
        return result

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for segment in self._segments:
            for kind, count in segment.counts.items():
                counts[kind] = counts.get(kind, 0) + count
        return counts

    def tail(self, n: int = 10) -> List[NetworkEvent]:
        if n <= 0:
            return []
        result: List[NetworkEvent] = []
        for segment in reversed(self._segments):
            take = segment.events[-(n - len(result)):]
            result = take + result
            if len(result) >= n:
                break
        return result

    def segment_stats(self) -> List[Dict[str, object]]:
        """Per-segment introspection (tests, ``repro replay --segments``)."""
        return [
            {
                "events": len(segment.events),
                "t_min": segment.t_min,
                "t_max": segment.t_max,
                "kinds": len(segment.counts),
                "compacted": segment.compacted,
            }
            for segment in self._segments
            if segment.events
        ]

    def digest(self, exclude_kinds: Optional[Iterable[str]] = None) -> str:
        """sha256 over the canonical JSONL form of the retained events.

        Stable across a :meth:`save`/:meth:`load` round trip, which is
        what ``make replay-smoke`` asserts.

        ``exclude_kinds`` drops the named kinds before hashing.  The
        fluid fast-forward equivalence checks use it to compare the
        *control-plane* record (lifecycle events) while ignoring
        ``SAMPLE_KINDS`` load samples, whose instantaneous values lead
        or lag by whatever packets were in flight at the sample tick.
        """
        skip = frozenset(exclude_kinds) if exclude_kinds is not None else None
        hasher = hashlib.sha256()
        for event in self:
            if skip is not None and event.kind in skip:
                continue
            hasher.update(event.json_line().encode())
            hasher.update(b"\n")
        return hasher.hexdigest()

    def control_digest(self) -> str:
        """:meth:`digest` restricted to discrete lifecycle events (the
        high-churn :data:`SAMPLE_KINDS` are excluded)."""
        return self.digest(exclude_kinds=SAMPLE_KINDS)

    # ------------------------------------------------------------------
    # Persistence (JSONL)

    def save(self, path: str) -> int:
        """Write the retained events as JSON Lines; returns the count."""
        count = 0
        with open(path, "w") as handle:
            for event in self:
                handle.write(event.json_line() + "\n")
                count += 1
        return count

    @classmethod
    def load(cls, path: str, **kwargs) -> "EventLog":
        """Rebuild a log from a JSONL file written by :meth:`save` or
        :meth:`stream_to` (``kwargs`` forward to the constructor)."""
        log = cls(**kwargs)
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                event = NetworkEvent(
                    time=float(row["time"]), kind=str(row["kind"]),
                    data=dict(row.get("data", {})), seq=log._next_seq,
                )
                log._next_seq += 1
                log._append(event)
        return log

    def stream_to(self, path: str) -> Callable[[], None]:
        """Append every future event to ``path`` as JSONL, as emitted.

        Returns a closer; call it (or :meth:`close_stream`) to flush
        and detach.  Only one stream sink at a time.
        """
        if self._stream is not None:
            raise RuntimeError("a stream sink is already attached")
        self._stream = open(path, "a", buffering=1)
        return self.close_stream

    def close_stream(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None
