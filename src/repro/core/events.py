"""Typed network events and the global event log.

Section III.D.2: "In LiveSec, we can master the network events by only
first few packets.  Because the log information is global, it is
convenient to manage the network by visualizing the network
environment, and locate the network problems by replaying the history
events."  Every controller subsystem appends here; the monitoring /
visualization layer subscribes and can reconstruct state at any past
time from the ordered log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


class EventKind:
    """Event type names (string constants, so logs stay greppable)."""

    SWITCH_JOIN = "switch-join"
    SWITCH_LEAVE = "switch-leave"
    LINK_UP = "link-up"
    LINK_DOWN = "link-down"
    HOST_JOIN = "host-join"
    HOST_LEAVE = "host-leave"
    HOST_MOVE = "host-move"
    ELEMENT_ONLINE = "element-online"
    ELEMENT_OFFLINE = "element-offline"
    ELEMENT_LOAD = "element-load"
    ELEMENT_REJECTED = "element-rejected"
    FLOW_START = "flow-start"
    FLOW_END = "flow-end"
    FLOW_STEERED = "flow-steered"
    FLOW_BLOCKED = "flow-blocked"
    ATTACK_DETECTED = "attack-detected"
    PROTOCOL_IDENTIFIED = "protocol-identified"
    LINK_LOAD = "link-load"
    POLICY_CHANGED = "policy-changed"
    FLOW_FAILOVER = "flow-failover"
    SWITCH_RESYNC = "switch-resync"
    FAULT_INJECTED = "fault-injected"


@dataclass(frozen=True)
class NetworkEvent:
    """One immutable entry in the global event log."""

    time: float
    kind: str
    data: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in sorted(self.data.items()))
        return f"[{self.time:10.4f}] {self.kind:<22} {details}"


Subscriber = Callable[[NetworkEvent], None]


class EventLog:
    """An append-only, time-ordered event log with subscriptions."""

    def __init__(self) -> None:
        self._events: List[NetworkEvent] = []
        self._subscribers: List[Subscriber] = []

    def __len__(self) -> int:
        return len(self._events)

    def emit(self, time: float, kind: str, **data: object) -> NetworkEvent:
        """Append an event and notify subscribers."""
        event = NetworkEvent(time=time, kind=kind, data=dict(data))
        self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.append(subscriber)

    def all(self) -> List[NetworkEvent]:
        return list(self._events)

    def query(
        self,
        kind: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        where: Optional[Callable[[NetworkEvent], bool]] = None,
    ) -> List[NetworkEvent]:
        """Filter the log by kind and/or time window and/or predicate."""
        result = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if since is not None and event.time < since:
                continue
            if until is not None and event.time > until:
                continue
            if where is not None and not where(event):
                continue
            result.append(event)
        return result

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def tail(self, n: int = 10) -> List[NetworkEvent]:
        return self._events[-n:]
