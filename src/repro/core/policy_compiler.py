"""Policy compiler: intents -> verified, normalized policy rows.

ROADMAP item 3.  Administrators write :class:`PolicyIntent` records --
named, CIDR work-zone selectors, service-chain references -- and
:func:`compile_intents` turns them into the normalized rows of a
:class:`CompiledPolicyTable`, running pairwise conflict detection over
the selectors' match spaces on the way:

* **shadowed** (error): a row that can never fire because an earlier
  row in match order covers its whole space with a different effect.
* **contradictory** (error): ALLOW vs DROP/CHAIN on overlapping space
  at *equal* priority, where stable insertion order -- not intent --
  decides the winner.  Overlap across different priorities is the
  legitimate narrow-exception-over-broad-rule idiom and is not flagged.
* **redundant** (warning): a covered row whose effect is identical to
  its coverer's; harmless, but dead weight in the scan.

Match spaces reuse the wildcard algebra of
:class:`repro.openflow.match.Match` (``is_subset_of`` / ``overlaps`` /
``intersection``) for the exact-valued fields, extended with integer
IPv4 intervals so CIDR blocks and octet prefixes participate in
containment/overlap reasoning rather than being treated as opaque.

A compile never touches any live table: the result is an immutable
artifact that :meth:`repro.core.policy.PolicyTable.apply_compiled`
swaps in atomically (or that a rejected compile simply discards,
leaving the previously committed table serving).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.packet import FlowNineTuple
from repro.openflow.match import Match

from repro.core.policy import (
    FailMode,
    FlowSelector,
    Granularity,
    Policy,
    PolicyAction,
    _table_order,
    ip_to_int,
    parse_cidr,
)


# ======================================================================
# Intents


@dataclass(frozen=True)
class PolicyIntent:
    """One administrator-facing statement of intent.

    ``src_zone`` / ``dst_zone`` are CIDR work-zone sugar that
    normalization folds into the selector's ``src_cidr`` / ``dst_cidr``
    (setting both the zone and the selector field is a contradiction
    and rejected)."""

    name: str
    action: PolicyAction
    selector: FlowSelector = field(default_factory=FlowSelector)
    src_zone: Optional[str] = None
    dst_zone: Optional[str] = None
    service_chain: Tuple[str, ...] = ()
    granularity: Granularity = Granularity.FLOW
    inspect_reply: bool = True
    priority: int = 100
    fail_mode: Optional[FailMode] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("intent needs a name")
        if self.src_zone is not None:
            parse_cidr(self.src_zone)
        if self.dst_zone is not None:
            parse_cidr(self.dst_zone)


_INTENT_FIELDS = {
    "name", "action", "selector", "src_zone", "dst_zone",
    "service_chain", "granularity", "inspect_reply", "priority",
    "fail_mode", "description",
}

_SELECTOR_FIELDS = {
    "src_mac", "dst_mac", "src_ip", "dst_ip",
    "src_ip_prefix", "dst_ip_prefix", "src_cidr", "dst_cidr",
    "nw_proto", "tp_src", "tp_dst", "vlan",
}


def intent_from_dict(entry: dict) -> PolicyIntent:
    """A :class:`PolicyIntent` from its JSON form (strict: unknown
    fields are rejected, matching the WireCodec convention)."""
    if not isinstance(entry, dict):
        raise ValueError(f"intent must be an object, got {type(entry).__name__}")
    unknown = set(entry) - _INTENT_FIELDS
    if unknown:
        raise ValueError(f"unknown intent field(s) {sorted(unknown)}")
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError("intent needs a non-empty string 'name'")
    try:
        action = PolicyAction(entry.get("action", "allow"))
    except ValueError:
        raise ValueError(
            f"intent {name!r}: unknown action {entry.get('action')!r}"
        ) from None
    selector_doc = entry.get("selector", {})
    if not isinstance(selector_doc, dict):
        raise ValueError(f"intent {name!r}: selector must be an object")
    unknown = set(selector_doc) - _SELECTOR_FIELDS
    if unknown:
        raise ValueError(
            f"intent {name!r}: unknown selector field(s) {sorted(unknown)}"
        )
    fail_mode = entry.get("fail_mode")
    return PolicyIntent(
        name=name,
        action=action,
        selector=FlowSelector(**selector_doc),
        src_zone=entry.get("src_zone"),
        dst_zone=entry.get("dst_zone"),
        service_chain=tuple(entry.get("service_chain", ())),
        granularity=Granularity(entry.get("granularity", "flow")),
        inspect_reply=bool(entry.get("inspect_reply", True)),
        priority=int(entry.get("priority", 100)),
        fail_mode=FailMode(fail_mode) if fail_mode is not None else None,
        description=str(entry.get("description", "")),
    )


def intent_to_dict(intent: PolicyIntent) -> dict:
    """The JSON form of an intent (only non-default fields emitted, so
    files stay reviewable)."""
    doc: dict = {"name": intent.name, "action": intent.action.value}
    selector = {
        name: getattr(intent.selector, name)
        for name in sorted(_SELECTOR_FIELDS)
        if getattr(intent.selector, name) is not None
    }
    if selector:
        doc["selector"] = selector
    if intent.src_zone is not None:
        doc["src_zone"] = intent.src_zone
    if intent.dst_zone is not None:
        doc["dst_zone"] = intent.dst_zone
    if intent.service_chain:
        doc["service_chain"] = list(intent.service_chain)
    if intent.granularity is not Granularity.FLOW:
        doc["granularity"] = intent.granularity.value
    if not intent.inspect_reply:
        doc["inspect_reply"] = False
    if intent.priority != 100:
        doc["priority"] = intent.priority
    if intent.fail_mode is not None:
        doc["fail_mode"] = intent.fail_mode.value
    if intent.description:
        doc["description"] = intent.description
    return doc


def intent_from_policy(policy: Policy) -> PolicyIntent:
    """Lift a normalized row back to intent form (used when emitting
    the v2 schema for a table built through the row-level API)."""
    return PolicyIntent(
        name=policy.name,
        action=policy.action,
        selector=policy.selector,
        service_chain=policy.service_chain,
        granularity=policy.granularity,
        inspect_reply=policy.inspect_reply,
        priority=policy.priority,
        fail_mode=policy.fail_mode,
    )


def normalize_intent(intent: PolicyIntent) -> Policy:
    """Lower one intent to a normalized :class:`Policy` row: zones fold
    into the selector's CIDR fields; structural constraints (CHAIN
    needs a chain, ...) are enforced by the Policy constructor."""
    selector = intent.selector
    updates = {}
    if intent.src_zone is not None:
        if selector.src_cidr is not None:
            raise ValueError(
                f"intent {intent.name!r}: both src_zone and selector.src_cidr set"
            )
        updates["src_cidr"] = intent.src_zone
    if intent.dst_zone is not None:
        if selector.dst_cidr is not None:
            raise ValueError(
                f"intent {intent.name!r}: both dst_zone and selector.dst_cidr set"
            )
        updates["dst_cidr"] = intent.dst_zone
    if updates:
        selector = FlowSelector(
            **{
                f: updates.get(f, getattr(selector, f))
                for f in _SELECTOR_FIELDS
            }
        )
    return Policy(
        name=intent.name,
        selector=selector,
        action=intent.action,
        service_chain=intent.service_chain,
        granularity=intent.granularity,
        inspect_reply=intent.inspect_reply,
        priority=intent.priority,
        fail_mode=intent.fail_mode,
    )


# ======================================================================
# Match spaces: Match wildcard algebra + IPv4 intervals

_Interval = Tuple[int, int]  # inclusive [lo, hi]


def _selector_match(selector: FlowSelector) -> Match:
    """The exact-valued fields of a selector as a Match (the IP
    constraints live in the interval layer; non-parseable exact IPs
    stay here as opaque pinned values)."""
    values: dict = {}
    if selector.src_mac is not None:
        values["dl_src"] = selector.src_mac
    if selector.dst_mac is not None:
        values["dl_dst"] = selector.dst_mac
    if selector.nw_proto is not None:
        values["nw_proto"] = selector.nw_proto
    if selector.tp_src is not None:
        values["tp_src"] = selector.tp_src
    if selector.tp_dst is not None:
        values["tp_dst"] = selector.tp_dst
    if selector.vlan is not None:
        values["dl_vlan"] = selector.vlan
    for side, exact in (("nw_src", selector.src_ip), ("nw_dst", selector.dst_ip)):
        if exact is not None:
            try:
                ip_to_int(exact)
            except ValueError:
                values[side] = exact  # opaque: interval layer can't see it
    return Match(**values)


def _prefix_interval(prefix: str) -> Optional[_Interval]:
    """The address interval of an octet-aligned string prefix, or None
    when the prefix doesn't reduce to whole octets (trailing-dot and
    bare forms both pad with .0 / .255)."""
    trimmed = prefix.rstrip(".")
    if not trimmed:
        return (0, 0xFFFFFFFF)
    parts = trimmed.split(".")
    if len(parts) > 4 or not all(p.isdigit() and int(p) <= 255 for p in parts):
        return None
    lo = parts + ["0"] * (4 - len(parts))
    hi = parts + ["255"] * (4 - len(parts))
    return (ip_to_int(".".join(lo)), ip_to_int(".".join(hi)))


def _cidr_interval(cidr: str) -> _Interval:
    network, length = parse_cidr(cidr)
    span = (1 << (32 - length)) - 1 if length < 32 else 0
    return (network, network + span)


def _ip_interval(
    exact: Optional[str], prefix: Optional[str], cidr: Optional[str]
) -> Optional[_Interval]:
    """The tightest address interval a selector side pins, or None when
    unconstrained (or constrained only by an opaque non-IPv4 string,
    which the Match layer carries instead).  An empty intersection --
    e.g. ``src_ip`` outside ``src_cidr`` -- collapses to a reversed
    interval, which the space algebra reads as unsatisfiable."""
    intervals: List[_Interval] = []
    if exact is not None:
        try:
            value = ip_to_int(exact)
        except ValueError:
            pass  # opaque, handled as a Match field
        else:
            intervals.append((value, value))
    if prefix is not None:
        bounds = _prefix_interval(prefix)
        if bounds is not None:
            intervals.append(bounds)
    if cidr is not None:
        intervals.append(_cidr_interval(cidr))
    if not intervals:
        return None
    lo = max(b[0] for b in intervals)
    hi = min(b[1] for b in intervals)
    return (lo, hi)


def _format_interval(bounds: Optional[_Interval], label: str) -> Optional[str]:
    if bounds is None:
        return None
    lo, hi = bounds

    def fmt(value: int) -> str:
        return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))

    if lo == hi:
        return f"{label}={fmt(lo)}"
    span = hi - lo + 1
    if lo & (span - 1) == 0 and span & (span - 1) == 0:
        length = 32 - span.bit_length() + 1
        return f"{label}={fmt(lo)}/{length}"
    return f"{label}={fmt(lo)}-{fmt(hi)}"


@dataclass(frozen=True)
class _Space:
    """One selector's match space: the Match projection of its exact
    fields plus optional src/dst IPv4 intervals."""

    match: Match
    src: Optional[_Interval]
    dst: Optional[_Interval]

    @classmethod
    def of(cls, selector: FlowSelector) -> "_Space":
        return cls(
            match=_selector_match(selector),
            src=_ip_interval(
                selector.src_ip, selector.src_ip_prefix, selector.src_cidr
            ),
            dst=_ip_interval(
                selector.dst_ip, selector.dst_ip_prefix, selector.dst_cidr
            ),
        )

    def empty(self) -> bool:
        """Unsatisfiable: no flow can ever match (e.g. src_ip outside
        src_cidr, or an interval contradicting an opaque exact IP)."""
        for bounds, opaque in (
            (self.src, self.match.nw_src), (self.dst, self.match.nw_dst)
        ):
            if bounds is not None:
                if bounds[0] > bounds[1]:
                    return True
                if opaque is not None:
                    return True  # opaque string can never be IPv4-in-range
        return False


def _interval_covers(outer: Optional[_Interval], inner: Optional[_Interval],
                     inner_opaque: Optional[str]) -> bool:
    if outer is None:
        return True
    if inner is None:
        # Inner is unconstrained on this side unless an opaque exact
        # value pins it -- which can never sit inside an IPv4 interval.
        return False
    return outer[0] <= inner[0] and inner[1] <= outer[1]


def _interval_overlap(
    a: Optional[_Interval], b: Optional[_Interval]
) -> Tuple[bool, Optional[_Interval]]:
    if a is None and b is None:
        return True, None
    lo = max(x[0] for x in (a, b) if x is not None)
    hi = min(x[1] for x in (a, b) if x is not None)
    if lo > hi:
        return False, None
    return True, (lo, hi)


def space_covers(outer: _Space, inner: _Space) -> bool:
    """Every flow in ``inner`` also lies in ``outer``."""
    if inner.empty():
        return True
    if not inner.match.is_subset_of(outer.match):
        return False
    if not _interval_covers(outer.src, inner.src, inner.match.nw_src):
        return False
    if not _interval_covers(outer.dst, inner.dst, inner.match.nw_dst):
        return False
    return True


def space_overlap(a: _Space, b: _Space) -> Optional[str]:
    """A printable description of the shared match space, or None when
    the two spaces are disjoint."""
    if a.empty() or b.empty():
        return None
    common = a.match.intersection(b.match)
    if common is None:
        return None
    src_ok, src = _interval_overlap(a.src, b.src)
    dst_ok, dst = _interval_overlap(a.dst, b.dst)
    if not src_ok or not dst_ok:
        return None
    # An opaque pinned IP on either side excludes any interval on the
    # same side (non-IPv4 strings never fall inside IPv4 ranges).
    if src is not None and common.nw_src is not None:
        return None
    if dst is not None and common.nw_dst is not None:
        return None
    parts = [
        part
        for part in (
            _format_interval(src, "nw_src"),
            _format_interval(dst, "nw_dst"),
        )
        if part is not None
    ]
    exact = str(common)
    if exact != "Match(any)":
        parts.append(exact[len("Match("):-1])
    return ", ".join(parts) if parts else "any flow"


# ======================================================================
# Conflict detection


@dataclass(frozen=True)
class Conflict:
    """One finding from the pairwise detector.

    ``policies`` names both rows in match order (the earlier/winning
    row first); ``overlap`` describes the shared match space."""

    kind: str        # "shadowed" | "contradictory" | "redundant" | "unsatisfiable" | "unknown-service"
    severity: str    # "error" | "warning"
    policies: Tuple[str, ...]
    overlap: str
    detail: str

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "policies": list(self.policies),
            "overlap": self.overlap,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        return (
            f"[{self.severity}] {self.kind}: {' vs '.join(self.policies)}"
            f" on {{{self.overlap}}} -- {self.detail}"
        )


def _effect(policy: Policy) -> Tuple[PolicyAction, Tuple[str, ...]]:
    return (policy.action, policy.service_chain)


def verify_rows(
    rows: Sequence[Policy],
    service_types: Optional[Iterable[str]] = None,
) -> List[Conflict]:
    """Pairwise conflict findings over rows already in match order.

    Also flags unsatisfiable selectors and, when ``service_types`` is
    given, chain references to service types the directory has never
    heard of."""
    findings: List[Conflict] = []
    known = set(service_types) if service_types is not None else None
    spaces = [_Space.of(p.selector) for p in rows]
    for policy, space in zip(rows, spaces):
        if space.empty():
            findings.append(Conflict(
                kind="unsatisfiable",
                severity="warning",
                policies=(policy.name,),
                overlap="(empty)",
                detail="selector constraints contradict each other;"
                       " no flow can ever match",
            ))
        if known is not None and policy.action is PolicyAction.CHAIN:
            missing = [t for t in policy.service_chain if t not in known]
            if missing:
                findings.append(Conflict(
                    kind="unknown-service",
                    severity="error",
                    policies=(policy.name,),
                    overlap="(n/a)",
                    detail=f"service chain references unknown service"
                           f" type(s) {missing}",
                ))
    for i, earlier in enumerate(rows):
        if spaces[i].empty():
            continue
        for j in range(i + 1, len(rows)):
            later = rows[j]
            if spaces[j].empty():
                continue
            overlap = space_overlap(spaces[i], spaces[j])
            if overlap is None:
                continue
            if space_covers(spaces[i], spaces[j]):
                # The later row can never fire.
                if _effect(earlier) == _effect(later):
                    findings.append(Conflict(
                        kind="redundant",
                        severity="warning",
                        policies=(earlier.name, later.name),
                        overlap=overlap,
                        detail=f"{later.name!r} is fully covered by"
                               f" {earlier.name!r} with the same effect;"
                               f" it only adds scan weight",
                    ))
                else:
                    findings.append(Conflict(
                        kind="shadowed",
                        severity="error",
                        policies=(earlier.name, later.name),
                        overlap=overlap,
                        detail=f"{later.name!r} ({later.action.value}) can"
                               f" never fire: {earlier.name!r}"
                               f" ({earlier.action.value}) wins its entire"
                               f" match space",
                    ))
            elif (
                earlier.priority == later.priority
                and earlier.action is not later.action
                and PolicyAction.ALLOW in (earlier.action, later.action)
            ):
                # Partial overlap at the same priority with opposed
                # effects: insertion order, not intent, decides.
                findings.append(Conflict(
                    kind="contradictory",
                    severity="error",
                    policies=(earlier.name, later.name),
                    overlap=overlap,
                    detail=f"{earlier.name!r} ({earlier.action.value}) and"
                           f" {later.name!r} ({later.action.value}) disagree"
                           f" on overlapping flows at equal priority"
                           f" {earlier.priority}; make priorities explicit",
                ))
    return findings


class PolicyConflictError(ValueError):
    """A verified commit or compile refused by error-severity findings."""

    def __init__(self, findings: Sequence[Conflict]):
        self.findings = list(findings)
        lines = "\n".join(f"  {f}" for f in self.findings)
        super().__init__(f"policy conflicts:\n{lines}")


# ======================================================================
# The compiled artifact


class CompiledPolicyTable:
    """An immutable, verified policy table.

    Rows are held in exactly the order a :class:`PolicyTable` would
    scan them (same stable sort key), so ``match`` is observably
    identical -- winner *and* scan count -- to the live table the
    artifact swaps into."""

    def __init__(
        self,
        rows: Sequence[Policy],
        default_action: PolicyAction = PolicyAction.ALLOW,
        version_hint: int = 0,
    ):
        if default_action is PolicyAction.CHAIN:
            raise ValueError("default action cannot be CHAIN")
        self._rows: Tuple[Policy, ...] = tuple(
            sorted(rows, key=_table_order)
        )
        self._by_name: Dict[str, Policy] = {p.name: p for p in self._rows}
        self.default_action = default_action
        self.version_hint = version_hint

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    def get(self, name: Optional[str]) -> Optional[Policy]:
        if name is None:
            return None
        return self._by_name.get(name)

    def match(self, flow: FlowNineTuple) -> Tuple[Optional[Policy], int]:
        """First match plus rows scanned (PolicyTable.match semantics)."""
        for scanned, policy in enumerate(self._rows, start=1):
            if policy.selector.matches(flow):
                return policy, scanned
        return None, len(self._rows)

    def lookup(self, flow: FlowNineTuple) -> Optional[Policy]:
        return self.match(flow)[0]

    def effective_action(self, flow: FlowNineTuple) -> PolicyAction:
        policy = self.lookup(flow)
        return policy.action if policy is not None else self.default_action


@dataclass
class CompileResult:
    """What a compile produced: the artifact (always built, even when
    rejected, so reports can point at concrete rows) plus findings."""

    table: CompiledPolicyTable
    findings: List[Conflict]
    intents: Tuple[PolicyIntent, ...]

    @property
    def errors(self) -> List[Conflict]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Conflict]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def report(self) -> str:
        """The human-readable compile report."""
        lines = [
            f"compiled {len(self.table)} polic"
            f"{'y' if len(self.table) == 1 else 'ies'} from"
            f" {len(self.intents)} intent(s):"
            f" {len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        ]
        lines.extend(str(f) for f in self.findings)
        lines.append("result: " + ("OK" if self.ok else "REJECTED"))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "policies": len(self.table),
            "intents": len(self.intents),
            "findings": [f.to_dict() for f in self.findings],
        }


def compile_intents(
    intents: Iterable[PolicyIntent],
    default_action: PolicyAction = PolicyAction.ALLOW,
    service_types: Optional[Iterable[str]] = None,
) -> CompileResult:
    """Normalize, order and verify a set of intents.

    Structural problems (duplicate names, malformed intents) raise
    immediately; semantic conflicts land in the result's findings, and
    ``result.ok`` gates whether the artifact should ever reach a live
    table."""
    intents = tuple(intents)
    names = [i.name for i in intents]
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        raise ValueError(f"duplicate intent names {duplicates}")
    rows = [normalize_intent(intent) for intent in intents]
    table = CompiledPolicyTable(rows, default_action=default_action)
    findings = verify_rows(list(table), service_types=service_types)
    return CompileResult(table=table, findings=findings, intents=intents)
