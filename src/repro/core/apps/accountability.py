"""Forwarding accountability: verify path proofs, quarantine liars.

SDNsec-style data-plane accountability for the steered sessions: the
ingress rule stamps a per-session :class:`~repro.openflow.pathproof.
PathDescriptor` onto the first frame action, every on-path switch
appends a keyed mark, and the egress switch reports the completed
chain back to the controller.  This app is the verifier:

* **egress proofs** (:class:`~repro.core.bus.PathProofIn`) are checked
  against the descriptor; the first divergent mark attributes the
  violation to a datapath,
* **stray tagged frames** (:class:`~repro.core.bus.TaggedPacketIn`)
  mean a frame left its expected path before the egress strip -- the
  last switch that stamped validly is the misrouter,
* a periodic **absence audit** catches tag-stripping switches that
  never let a proof complete: sessions whose proofs went silent vote
  for the datapaths they share, datapaths on still-healthy paths are
  exonerated, and what remains is accused of ``proof-silence``.

A violation immediately quarantines the datapath
(``controller.quarantined_dpids``): the policy engine stops placing
waypoints there and the steering app reroutes the sessions that
traverse it.  Detection latency is therefore the time-to-detect the
chaos harness measures.

The absence audit attributes by elimination, so its precision depends
on path diversity: with no healthy path sharing a suspect's links it
may over-approximate (documented in DESIGN.md's threat model).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.apps.base import App, AppContext
from repro.core.bus import (
    PathProofIn,
    PathViolation,
    SwitchQuarantined,
    TaggedPacketIn,
)
from repro.core.events import EventKind
from repro.openflow import pathproof

AUDIT_INTERVAL_S = 0.5
# A session whose egress proofs go silent for this long (while the
# session is still live) is considered stalled by the absence audit.
PROOF_SILENCE_THRESHOLD_S = 1.0


class AccountabilityApp(App):
    """Verifies forwarding proofs and quarantines misbehaving switches."""

    name = "accountability"

    def __init__(self, ctx: AppContext):
        super().__init__(ctx)
        self.listen(PathProofIn, self.on_path_proof)
        self.listen(TaggedPacketIn, self.on_tagged_packet)
        # session_id -> sim time of the last *valid* egress proof.
        self._last_proof_at: Dict[int, float] = {}
        self._proof_counts: Dict[int, int] = {}
        self._proofs_valid = ctx.metrics.counter(
            "accountability.proofs", "Egress path proofs verified",
            result="valid",
        )
        self._proofs_invalid = ctx.metrics.counter(
            "accountability.proofs", "Egress path proofs verified",
            result="invalid",
        )
        self._violations = ctx.metrics.counter(
            "accountability.violations", "Path violations attributed",
        )

    def start(self) -> None:
        self.every(AUDIT_INTERVAL_S, self._audit)

    # ------------------------------------------------------------------
    # Evidence intake

    def on_path_proof(self, event: PathProofIn) -> None:
        report = event.message
        descriptor = report.descriptor
        verdict = pathproof.verify_proof(
            self.ctx.controller.secret, descriptor, report.marks
        )
        if verdict.valid:
            self._proofs_valid.inc()
            self._last_proof_at[descriptor.session_id] = self.ctx.sim.now
            self._proof_counts[descriptor.session_id] = (
                self._proof_counts.get(descriptor.session_id, 0) + 1
            )
            return
        self._proofs_invalid.inc()
        self._raise_violation(
            verdict.offending_dpid, verdict.reason,
            session_id=descriptor.session_id, evidence="egress-proof",
        )

    def on_tagged_packet(self, event: TaggedPacketIn) -> None:
        """A frame still carrying its tag was punted off-path: the last
        switch whose mark verifies is the one that misrouted it."""
        descriptor = event.tag.descriptor
        expected = pathproof.expected_marks(
            self.ctx.controller.secret, descriptor
        )
        prefix = 0
        for got, want in zip(event.tag.marks, expected):
            if got != want:
                break
            prefix += 1
        if prefix >= 1:
            offender = descriptor.dpids[prefix - 1]
        else:
            # No valid mark at all: accuse the ingress, the only switch
            # that saw the frame for certain.
            offender = descriptor.dpids[0]
        self._raise_violation(
            offender, "off-path-frame",
            session_id=descriptor.session_id, evidence="stray-tag",
        )

    # ------------------------------------------------------------------
    # Absence audit (tag-strip detection)

    def _audit(self) -> None:
        now = self.ctx.sim.now
        quarantined = self.ctx.controller.quarantined_dpids
        stalled = []
        healthy_dpids = []
        live_ids = set()
        for session in self.ctx.sessions:
            if session.path_descriptor is None or session.blocked:
                continue
            live_ids.add(session.session_id)
            last = self._last_proof_at.get(session.session_id)
            # Grace for fresh sessions: silence is measured from the
            # last proof, or from creation if none arrived yet.
            base = last if last is not None else session.created_at
            if now - base > PROOF_SILENCE_THRESHOLD_S:
                stalled.append(session)
            elif last is not None:
                for dpid in session.dpids_on_path():
                    if dpid not in healthy_dpids:
                        healthy_dpids.append(dpid)
        # Bound the proof maps to live sessions.
        for sid in list(self._last_proof_at):
            if sid not in live_ids:
                self._last_proof_at.pop(sid, None)
                self._proof_counts.pop(sid, None)
        if not stalled:
            return
        suspects: Optional[set] = None
        for session in stalled:
            dpids = set(session.dpids_on_path())
            suspects = dpids if suspects is None else suspects & dpids
        suspects -= set(healthy_dpids)
        suspects -= set(quarantined)
        for dpid in sorted(suspects):
            self._raise_violation(
                dpid, "proof-silence", session_id=None, evidence="audit"
            )

    # ------------------------------------------------------------------
    # Verdict

    def _raise_violation(
        self,
        dpid: int,
        reason: str,
        session_id: Optional[int],
        evidence: str,
    ) -> None:
        controller = self.ctx.controller
        if dpid in controller.quarantined_dpids:
            return  # already acted on; proofs keep streaming in
        self._violations.inc()
        self.ctx.log.emit(
            self.ctx.sim.now, EventKind.PATH_VIOLATION,
            dpid=dpid, reason=reason, evidence=evidence,
            session=-1 if session_id is None else session_id,
        )
        self.ctx.bus.publish(PathViolation(
            dpid=dpid, reason=reason, session_id=session_id,
            evidence=evidence,
        ))
        controller.quarantined_dpids[dpid] = reason
        self.ctx.log.emit(
            self.ctx.sim.now, EventKind.SWITCH_QUARANTINED,
            dpid=dpid, reason=reason,
        )
        self.ctx.bus.publish(SwitchQuarantined(dpid=dpid, reason=reason))
