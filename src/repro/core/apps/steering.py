"""Session steering: rule computation, install, failover, teardown.

The enforcement half of interactive policy enforcement (IV.A): first
packets become *sessions* -- both directions' flow entries computed
over the NIB's logical full mesh, steered through the policy engine's
resolved waypoints, and pushed through the batched install pipeline.
The same app owns every way a session's rules change afterwards:
idle-timeout teardown, ingress blocking on attack verdicts, element
failover re-steering, switch-reconnect resync, and fabric-uplink-loss
invalidation.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import List, Optional, Tuple

from repro.core.apps.base import App, AppContext
from repro.core.bus import (
    AppLifecycleChanged,
    BarrierReplyIn,
    DataPacketIn,
    ElementExpired,
    FlowBlockRequested,
    FlowRemovedIn,
    HostExpired,
    HostMoved,
    LinkDiscovered,
    LinkTimedOut,
    PolicyReloaded,
    RemoteRuleOpIn,
    SessionHandoffIn,
    SourceBlockRequested,
    SwitchJoined,
    SwitchLeft,
    SwitchQuarantined,
    UplinksLost,
)
from repro.core.events import EventKind
from repro.core.nib import HostRecord
from repro.core.policy import FailMode, Policy
from repro.core.routing import (
    PathRuleCache,
    RoutingError,
    RuleSpec,
    drop_rule,
    source_block_rule,
)
from repro.core.sessions import Session
from repro.net.packet import FlowNineTuple, extract_nine_tuple
from repro.openflow import messages as ofmsg
from repro.openflow.actions import Output, PopPathTag, PushPathTag
from repro.openflow.pathproof import PathDescriptor
from repro.openflow.pipeline import InstallPipeline

FAILOVER_OUTCOMES = ("recovered", "fail-open", "fail-closed", "torn-down")


class SteeringApp(App):
    """Turns first packets into installed, policy-steered sessions."""

    name = "steering"

    def __init__(
        self,
        ctx: AppContext,
        install_timeout_s: float,
        install_batching: bool = True,
    ):
        super().__init__(ctx)
        self.config = {
            "install_timeout_s": install_timeout_s,
            "install_batching": install_batching,
        }
        self.pipeline = InstallPipeline(
            ctx.controller,
            timeout_s=install_timeout_s,
            batching=install_batching,
            metrics=ctx.metrics,
        )
        # Ingress rule-computation cache: repeated PacketIns for a
        # long-lived flow identity (a session idling out and re-forming)
        # skip the whole path computation.  Any event that can change
        # the NIB facts the rules embed -- host locations, uplink
        # ports, the element chain -- invalidates it wholesale.
        self.rule_cache = PathRuleCache()
        self._setup_metrics()
        self.listen(DataPacketIn, self.on_data_packet)
        self.listen(FlowRemovedIn, self.on_flow_removed)
        self.listen(BarrierReplyIn, self.on_barrier_reply)
        self.listen(SwitchJoined, self.on_switch_joined)
        self.listen(SwitchLeft, self.on_switch_left)
        self.listen(HostExpired, self.on_host_expired)
        self.listen(ElementExpired, self.on_element_expired)
        self.listen(UplinksLost, self.on_uplinks_lost)
        self.listen(FlowBlockRequested, self.on_flow_block_requested)
        self.listen(SourceBlockRequested, self.on_source_block_requested)
        self.listen(LinkDiscovered, self.on_topology_changed)
        self.listen(LinkTimedOut, self.on_topology_changed)
        self.listen(HostMoved, self.on_topology_changed)
        self.listen(PolicyReloaded, self.on_policy_reloaded)
        self.listen(SwitchQuarantined, self.on_switch_quarantined)
        self.listen(SessionHandoffIn, self.on_session_handoff)
        self.listen(RemoteRuleOpIn, self.on_remote_rule_op)
        self.listen(AppLifecycleChanged, self.on_app_lifecycle)

    def _setup_metrics(self) -> None:
        registry = self.ctx.metrics
        self._flow_setup_rules_hist = registry.histogram(
            "controller.flow_setup_rules",
            "Flow entries installed per end-to-end session setup",
        )
        self._flow_setup_wall_hist = registry.histogram(
            "controller.flow_setup_wall_s",
            "Wall-clock time to compute and install one session",
        )
        # Session lifetime is a *simulated-time* span.
        self._session_duration_hist = registry.histogram(
            "controller.session_duration_s",
            "Simulated lifetime of ended sessions",
            clock=lambda: self.ctx.sim.now,
        )
        self._rules_resynced = registry.counter(
            "controller.rules_resynced",
            "Flow entries re-pushed to a switch on reconnect",
        )
        self._failover_counters = {
            outcome: registry.counter(
                "controller.failover",
                "Sessions re-steered after an element went offline",
                outcome=outcome,
            )
            for outcome in FAILOVER_OUTCOMES
        }
        # Pull-mode gauges over the cache's own counters: nothing is
        # added to the session-setup hot path.
        cache = self.rule_cache
        registry.gauge(
            "controller.routing_cache_hits",
            "Session setups answered from the path-rule cache",
        ).set_function(lambda: cache.hits)
        registry.gauge(
            "controller.routing_cache_misses",
            "Session setups that computed their path rules",
        ).set_function(lambda: cache.misses)
        registry.gauge(
            "controller.routing_cache_invalidations",
            "Wholesale cache clears on topology/location change",
        ).set_function(lambda: cache.invalidations)
        registry.gauge(
            "controller.routing_cache_size", "Cached path-rule sets",
        ).set_function(lambda: len(cache))

    # ==================================================================
    # First packets -> sessions

    def on_data_packet(self, event: DataPacketIn) -> None:
        packet_in = event.packet_in
        frame = packet_in.frame
        host_tracker = self.peer("host-tracker")
        periphery = host_tracker.is_periphery_port(
            packet_in.dpid, packet_in.in_port
        )
        flow = extract_nine_tuple(frame)

        if periphery is not True:
            # A transit copy flooded through the legacy fabric, or a
            # punt from a switch whose uplink is still undiscovered.
            # Deliver locally if the destination sits on this switch,
            # but never install state or learn locations from it.
            self.ctx.count("transit_ignored")
            dst = self.ctx.nib.host_by_mac(frame.dst)
            if (
                dst is not None
                and dst.dpid == packet_in.dpid
                and packet_in.buffer_id is not None
            ):
                self.ctx.controller.send_packet_out(
                    packet_in.dpid, actions=(Output(dst.port),),
                    buffer_id=packet_in.buffer_id,
                )
            return

        existing = self.ctx.sessions.lookup(flow)
        if existing is not None:
            self._release_along_session(packet_in, existing)
            return

        # Orphaned mid-chain frame: its destination MAC is a service
        # element's, i.e. it was rewritten by a (since torn down)
        # steering chain and missed the element switch's entries.  It
        # must neither teach us locations (its source MAC is the
        # *original* sender, nowhere near this port) nor form a
        # session (the real flow will re-punt at its true ingress and
        # re-form; the transport retransmits the lost packet).
        dst_record_early = self.ctx.nib.host_by_mac(frame.dst)
        if (
            dst_record_early is not None
            and dst_record_early.is_element
            and frame.src != dst_record_early.mac
        ):
            self.ctx.count("orphan_chain_frames")
            return

        # Learn-or-refresh: a packet from a periphery port is location
        # evidence and liveness evidence at once.
        src = host_tracker.learn_host(
            frame.src, flow.nw_src, packet_in.dpid, packet_in.in_port
        )
        # Shard fabric: if this host's session state is still in flight
        # from its previous owner shard, forming a fresh session now
        # would collide with the adopted one.  Drop the packet; the
        # transport retries after the (millisecond-scale) handoff.
        shard = self.ctx.controller.shard
        if shard is not None and shard.session_deferred(frame.src):
            self.ctx.count("handoff_deferred")
            return
        dst = self.ctx.nib.host_by_mac(frame.dst)
        if dst is None:
            # Destination location unknown: fall back to a periphery
            # flood of this one packet; the session forms on a retry.
            host_tracker.periphery_flood(
                frame, exclude=(packet_in.dpid, packet_in.in_port)
            )
            return

        decision = self.peer("policy-engine").decide(flow, src)
        if decision.verdict == "block":
            self._block_flow(flow, src, policy_name=decision.policy_name)
            return

        try:
            with self._flow_setup_wall_hist.time():
                self._install_session(
                    packet_in, flow, src, dst,
                    decision.waypoints, decision.element_macs,
                    decision.policy,
                )
        except RoutingError:
            # Topology discovery has not converged; deliver nothing and
            # let the application retry.
            self.ctx.count("routing_deferred")

    def _compute_session_rules(
        self,
        flow: FlowNineTuple,
        src: HostRecord,
        dst: HostRecord,
        waypoints: List[HostRecord],
        policy: Optional[Policy],
        session_id: int,
    ) -> Tuple[List[RuleSpec], Optional[PathDescriptor]]:
        """Both directions' flow entries for one session (rules[0] is
        the forward ingress entry, the only one arming teardown), plus
        the forward path's accountability descriptor (None when
        accountability is disabled)."""
        forward = self.rule_cache.path_rules(
            self.ctx.nib, flow, src, dst, waypoints,
            idle_timeout=self.ctx.controller.idle_timeout_s,
            cookie=session_id,
        )
        inspect_reply = policy.inspect_reply if policy is not None else False
        reverse_waypoints = list(reversed(waypoints)) if inspect_reply else []
        reverse = self.rule_cache.path_rules(
            self.ctx.nib, flow.reversed(), dst, src, reverse_waypoints,
            idle_timeout=self.ctx.controller.idle_timeout_s,
            cookie=session_id,
        )
        # Only the *forward* ingress entry arms session teardown.  The
        # reply direction of a one-way flow is legitimately idle; its
        # expiry must not kill an active session (the teardown deletes
        # the reverse entries anyway, and a late reply packet simply
        # punts and re-forms the session from the other side).
        reverse[0] = dc_replace(reverse[0], send_flow_removed=False)
        descriptor = None
        # Gate on *active*, not merely enabled: a stopped or crashed
        # accountability app must not keep collecting proof obligations
        # nobody will ever audit.
        if self.ctx.controller.accountability_active():
            forward, descriptor = self._decorate_accountability(
                forward, session_id
            )
        return forward + reverse, descriptor

    def _decorate_accountability(
        self, forward: List[RuleSpec], session_id: int
    ) -> Tuple[List[RuleSpec], PathDescriptor]:
        """Arm the forward path with its SDNsec-style proof chain.

        The ingress rule pushes the per-session path descriptor (the
        expected dpid sequence in rule-traversal order: a waypoint's
        switch legitimately appears twice) and the egress rule pops it
        just before delivery, triggering the proof report.  The cache
        hands back rules whose action tuples may be shared between
        sessions, so decorated rules are rebuilt with ``dc_replace``
        rather than mutated in place -- the descriptor embeds the
        session id and must be unique per session."""
        descriptor = PathDescriptor.for_path(
            self.ctx.controller.secret, session_id,
            [rule.dpid for rule in forward],
        )
        forward = list(forward)
        first = forward[0]
        forward[0] = dc_replace(
            first, actions=(PushPathTag(descriptor),) + tuple(first.actions)
        )
        last = forward[-1]
        actions = list(last.actions)
        for index in range(len(actions) - 1, -1, -1):
            if isinstance(actions[index], Output):
                actions.insert(index, PopPathTag())
                break
        forward[-1] = dc_replace(last, actions=tuple(actions))
        return forward, descriptor

    def _install_session(
        self,
        packet_in: ofmsg.PacketIn,
        flow: FlowNineTuple,
        src: HostRecord,
        dst: HostRecord,
        waypoints: List[HostRecord],
        element_macs: Tuple[str, ...],
        policy: Optional[Policy],
    ) -> None:
        session_id = self.ctx.sessions.next_id()
        rules, descriptor = self._compute_session_rules(
            flow, src, dst, waypoints, policy, session_id
        )
        session = self.ctx.sessions.create(
            flow=flow,
            src_mac=src.mac,
            dst_mac=dst.mac,
            policy_name=policy.name if policy else None,
            element_macs=element_macs,
            rules=rules,
            now=self.ctx.sim.now,
            session_id=session_id,
        )
        session.path_descriptor = descriptor
        # "All above flow entries can be calculated and enforced
        # simultaneously" -- the ingress FlowMod releases the buffered
        # first packet through the freshly installed actions.
        for rule in rules:
            buffer_id = (
                packet_in.buffer_id
                if rule is rules[0] and rule.dpid == packet_in.dpid
                else None
            )
            self._install_rule(rule, buffer_id=buffer_id)
        self.ctx.count("flows_installed")
        self._flow_setup_rules_hist.observe(len(rules))
        self.ctx.log.emit(
            self.ctx.sim.now, EventKind.FLOW_START,
            session=session.session_id, user_mac=src.mac, dst_mac=dst.mac,
            policy=policy.name if policy else "default",
            rules=len(rules),
        )
        if element_macs:
            self.ctx.log.emit(
                self.ctx.sim.now, EventKind.FLOW_STEERED,
                session=session.session_id,
                elements=",".join(element_macs),
            )

    # ==================================================================
    # Rule routing: local pipeline vs. inter-shard fabric

    def _install_rule(self, rule: RuleSpec, buffer_id=None) -> None:
        """Install one flow entry, routing it over the shard fabric
        when its datapath is homed to another shard."""
        controller = self.ctx.controller
        shard = controller.shard
        if shard is not None and rule.dpid not in controller.switches:
            if shard.install_remote(rule):
                self.ctx.count("remote_rules_sent")
            else:
                self.ctx.count("remote_rules_dropped")
            return
        self.pipeline.install(rule, buffer_id=buffer_id)

    def _delete_rule(self, rule: RuleSpec) -> None:
        """Delete one flow entry, locally or over the shard fabric."""
        controller = self.ctx.controller
        if rule.dpid in controller.switches:
            controller.send_flow_mod(
                rule.dpid,
                command=ofmsg.FlowMod.DELETE_STRICT,
                match=rule.match,
                priority=rule.priority,
            )
            return
        shard = controller.shard
        if shard is not None:
            shard.remove_remote(rule)

    def on_remote_rule_op(self, event: RemoteRuleOpIn) -> None:
        """Apply a rule op another shard routed to us (we own its
        datapath -- possibly freshly, through re-homing)."""
        op = event.op
        rule = op.rule
        if rule.dpid not in self.ctx.controller.switches:
            self.ctx.count("remote_rules_unowned")
            return
        if op.op == "add":
            self.pipeline.install(rule)
        else:
            self.ctx.controller.send_flow_mod(
                rule.dpid,
                command=ofmsg.FlowMod.DELETE_STRICT,
                match=rule.match,
                priority=rule.priority,
            )
        self.ctx.count("remote_rules_applied")

    def _release_along_session(
        self, packet_in: ofmsg.PacketIn, session: Session
    ) -> None:
        """A packet of an already-installed session was punted (it raced
        the FlowMods): push it through the session's ingress actions."""
        if session.blocked or packet_in.buffer_id is None:
            return
        for rule in session.rules:
            if rule.dpid == packet_in.dpid and rule.match.matches(
                packet_in.frame, packet_in.in_port
            ):
                self.ctx.controller.send_packet_out(
                    packet_in.dpid, actions=rule.actions,
                    buffer_id=packet_in.buffer_id,
                )
                return

    # ==================================================================
    # Blocking

    def _block_flow(
        self,
        flow: FlowNineTuple,
        src: HostRecord,
        policy_name: str,
        session: Optional[Session] = None,
        attack: Optional[str] = None,
    ) -> None:
        """Install the ingress drop: the flow dies at the entrance."""
        self.pipeline.install(drop_rule(
            flow, src, cookie=session.session_id if session else 0,
        ))
        if session is not None:
            session.blocked = True
        self.ctx.count("flows_blocked")
        data = dict(user_mac=src.mac, dpid=src.dpid)
        if attack is not None:
            data["attack"] = attack
        else:
            data["policy"] = policy_name
        self.ctx.log.emit(self.ctx.sim.now, EventKind.FLOW_BLOCKED, **data)

    def on_flow_block_requested(self, event: FlowBlockRequested) -> None:
        self._block_flow(
            event.flow, event.src, policy_name=event.policy,
            session=event.session, attack=event.attack,
        )

    def on_source_block_requested(self, event: SourceBlockRequested) -> None:
        self.pipeline.install(source_block_rule(event.mac, event.record))

    # ==================================================================
    # Teardown

    def on_flow_removed(self, event: FlowRemovedIn) -> None:
        message = event.message
        session = self.ctx.sessions.by_id(message.cookie)
        if session is None:
            return
        if message.packets > 0:
            # The session carried traffic: both endpoints were alive
            # until the idle timeout started counting (i.e. until
            # idle_timeout before the removal, not until now).
            active_until = (
                self.ctx.sim.now - self.ctx.controller.idle_timeout_s
            )
            for mac in (session.src_mac, session.dst_mac):
                record = self.ctx.nib.host_by_mac(mac)
                if record is not None:
                    record.last_seen = max(record.last_seen, active_until)
        self.teardown_session(
            session,
            skip_rule=(message.dpid, message.match),
            packets=message.packets,
            bytes_=message.bytes,
        )

    def teardown_session(
        self,
        session: Session,
        skip_rule: Optional[Tuple[int, object]] = None,
        packets: int = 0,
        bytes_: int = 0,
    ) -> None:
        for rule in session.rules:
            if skip_rule is not None and (
                rule.dpid == skip_rule[0] and rule.match == skip_rule[1]
            ):
                continue
            self._delete_rule(rule)
        self.ctx.balancer.release(session.flow)
        self.ctx.balancer.release(session.reverse_flow)
        self.ctx.sessions.end(session)
        self._session_duration_hist.observe(
            self.ctx.sim.now - session.created_at
        )
        self.ctx.log.emit(
            self.ctx.sim.now, EventKind.FLOW_END,
            session=session.session_id, user_mac=session.src_mac,
            packets=packets, bytes=bytes_,
            duration=self.ctx.sim.now - session.created_at,
        )

    def on_host_expired(self, event: HostExpired) -> None:
        for session in self.ctx.sessions.sessions_of_user(event.record.mac):
            self.teardown_session(session)

    def on_uplinks_lost(self, event: UplinksLost) -> None:
        self.rule_cache.clear()
        for dpid in event.dpids:
            for session in list(self.ctx.sessions):
                if any(rule.dpid == dpid for rule in session.rules):
                    self.teardown_session(session)

    def on_topology_changed(self, event) -> None:
        """A NIB fact the cached rules embed changed (new/removed link
        changes uplink ports; a moved host invalidates paths through
        its old location): drop every memoized path."""
        self.rule_cache.clear()

    def on_policy_reloaded(self, event: PolicyReloaded) -> None:
        """New policy table: every memoized ingress decision may now be
        wrong, so the path-rule cache is invalidated wholesale.
        Established sessions keep their installed rules -- the paper's
        interactive model re-consults policy on the *next* first packet,
        not retroactively."""
        self.rule_cache.clear()

    def on_app_lifecycle(self, event: AppLifecycleChanged) -> None:
        """A peer app was stopped/reloaded/removed at runtime.

        The memoized path rules may embed facts the departed app
        owned, so the cache is invalidated wholesale; and when the
        *accountability* app leaves, sessions still carrying its proof
        obligations are drained onto undecorated rules -- waypoint
        logic must not outlive the app that audits it."""
        if event.app == self.name:
            return
        self.rule_cache.clear()
        if event.app == "accountability" and event.action in (
            "stopped", "removed", "crash-detected"
        ):
            self._drain_accountability()

    def _drain_accountability(self) -> None:
        """Strip path-proof decoration from every accountable session.

        Each session's rules are recomputed with the accountability
        gate now off and swapped in place (same chain, same ingress
        entry -- traffic keeps flowing, just untagged), and its
        descriptor is dropped so a later accountability restart starts
        from a clean slate instead of auditing sessions whose proof
        chain it never armed."""
        for session in list(self.ctx.sessions):
            if session.path_descriptor is None or session.blocked:
                continue
            src = self.ctx.nib.host_by_mac(session.src_mac)
            dst = self.ctx.nib.host_by_mac(session.dst_mac)
            waypoints = [
                self.ctx.nib.host_by_mac(mac)
                for mac in session.element_macs
            ]
            policy = self.ctx.policies.get(session.policy_name)
            if src is None or dst is None or None in waypoints:
                # The path can't be recomputed (a endpoint or waypoint
                # left the NIB); at minimum stop expecting proofs.
                session.path_descriptor = None
                continue
            try:
                new_rules, descriptor = self._compute_session_rules(
                    session.flow, src, dst, waypoints, policy,
                    session.session_id,
                )
            except RoutingError:
                session.path_descriptor = None
                continue
            self._replace_session_rules(session, new_rules)
            session.path_descriptor = descriptor

    # ==================================================================
    # Switch lifecycle: resync and install-abort

    def on_switch_joined(self, event: SwitchJoined) -> None:
        """Re-push this datapath's share of the session store.

        A reconnecting switch's flow table may have lost entries (or
        the whole switch rebooted): the session store is authoritative,
        so every live session's rules for this dpid are reinstalled.
        ADD semantics make this idempotent -- entries that survived are
        replaced in place, with no FlowRemoved.  Stale datapath entries
        for sessions the controller no longer tracks simply idle out.
        """
        self.rule_cache.clear()
        dpid = event.handle.dpid
        resynced = 0
        for session in self.ctx.sessions:
            if session.blocked:
                continue
            for rule in session.rules:
                if rule.dpid == dpid:
                    self.pipeline.install(rule)
                    resynced += 1
        if resynced:
            self._rules_resynced.inc(resynced)
            self.ctx.log.emit(self.ctx.sim.now, EventKind.SWITCH_RESYNC,
                              dpid=dpid, rules=resynced)

    def on_switch_left(self, event: SwitchLeft) -> None:
        self.rule_cache.clear()
        # Abort in-flight installs: retrying against a dead channel is
        # pointless, and a reconnect resyncs the full session state.
        self.pipeline.abort_datapath(event.handle.dpid)

    def on_barrier_reply(self, event: BarrierReplyIn) -> None:
        self.pipeline.on_barrier_reply(event.dpid, event.xid)

    # ==================================================================
    # Element failover

    def on_element_expired(self, event: ElementExpired) -> None:
        # Cached chains through the dead element must not be replayed
        # by a failover re-steer or a re-forming session.
        self.rule_cache.clear()
        affected = [
            session
            for session in self.ctx.sessions.sessions_via_element(
                event.record.mac
            )
            if not session.blocked
        ]
        for session in affected:
            self._failover_session(session, event.record.mac)

    def on_switch_quarantined(self, event: SwitchQuarantined) -> None:
        """A datapath was convicted by the accountability app: stop
        trusting it as a service-element location.  Sessions whose
        chain runs through an element homed on the quarantined switch
        are re-steered exactly like an element-death failover (the
        policy engine now filters quarantined locations, so the
        replacement chain lands elsewhere).  Pure transit through the
        switch is left alone -- the fabric may offer no alternative
        path, and transit stamping still works under a skip-waypoint
        compromise."""
        self.rule_cache.clear()
        affected = []
        for session in self.ctx.sessions:
            if session.blocked:
                continue
            for mac in session.element_macs:
                record = self.ctx.nib.host_by_mac(mac)
                if record is not None and record.dpid == event.dpid:
                    affected.append((session, mac))
                    break
        for session, mac in affected:
            self._failover_session(
                session, mac, cause=f"quarantine:{event.reason}"
            )

    def _failover_session(
        self, session: Session, dead_mac: str,
        cause: Optional[str] = None,
    ) -> None:
        """Re-steer a live session whose chain lost an element.

        The chain is re-dispatched through the balancer over the
        surviving elements; if no healthy element remains the policy's
        fail mode decides: *open* routes the session directly
        (uninspected), *closed* blocks it at the ingress.  ``cause``
        annotates the FLOW_FAILOVER event when the element did not die
        but its switch was quarantined."""
        outcome = self._attempt_failover(session, dead_mac)
        self._failover_counters[outcome].inc()
        data = dict(
            session=session.session_id, dead_element=dead_mac,
            outcome=outcome, user_mac=session.src_mac,
        )
        if cause is not None:
            data["cause"] = cause
        self.ctx.log.emit(
            self.ctx.sim.now, EventKind.FLOW_FAILOVER, **data
        )

    def _attempt_failover(self, session: Session, dead_mac: str) -> str:
        engine = self.peer("policy-engine")
        src = self.ctx.nib.host_by_mac(session.src_mac)
        dst = self.ctx.nib.host_by_mac(session.dst_mac)
        policy = self.ctx.policies.get(session.policy_name)
        # Free the whole chain's assignments before re-resolving:
        # surviving chain members would otherwise be counted twice
        # when the balancer assigns the replacement chain.
        self.ctx.balancer.release(session.flow)
        self.ctx.balancer.release(session.reverse_flow)
        if src is None or dst is None or policy is None:
            self.teardown_session(session)
            return "torn-down"
        resolved = engine.resolve_chain(policy, session.flow, src)
        if resolved is None:
            if engine.effective_fail_mode(policy) is FailMode.CLOSED:
                self._block_flow(
                    session.flow, src, policy_name=policy.name,
                    session=session,
                )
                return "fail-closed"
            waypoints: List[HostRecord] = []
            element_macs: List[str] = []
            outcome = "fail-open"
        else:
            waypoints, element_macs = resolved
            outcome = "recovered"
        try:
            new_rules, descriptor = self._compute_session_rules(
                session.flow, src, dst, waypoints, policy, session.session_id
            )
        except RoutingError:
            self.teardown_session(session)
            return "torn-down"
        self._replace_session_rules(session, new_rules)
        session.element_macs = tuple(element_macs)
        session.path_descriptor = descriptor
        return outcome

    def _replace_session_rules(
        self, session: Session, new_rules: List[RuleSpec]
    ) -> None:
        """Swap a session's installed entries for a new set, in place.

        New entries go in first: an old entry whose (dpid, match,
        priority) is reused is *replaced* by the FlowMod ADD rather
        than deleted -- critically this covers the ingress entry, whose
        deletion would raise a FlowRemoved carrying the session cookie
        and tear the session down mid-failover.  Old entries not
        reused are deleted silently (only the ingress entry ever
        carries ``send_flow_removed``, and it is always reused: same
        flow, same ingress port, same priority)."""
        new_keys = {(r.dpid, r.match, r.priority) for r in new_rules}
        for rule in new_rules:
            self._install_rule(rule)
        for rule in session.rules:
            if (rule.dpid, rule.match, rule.priority) in new_keys:
                continue
            self._delete_rule(rule)
        session.rules = new_rules

    # ==================================================================
    # Session handoff (shard fabric)

    def release_session_for_handoff(self, session: Session) -> None:
        """Origin-shard half of a cross-shard host move: pull the
        session's flow entries and balancer assignments, drop it from
        the table -- but emit no FLOW_END and take no duration sample.
        The session's identity continues on the destination shard."""
        # Remove from the table first: the DELETE of the ingress entry
        # raises a FlowRemoved carrying the session cookie, which must
        # find nothing to tear down when it arrives.
        self.ctx.sessions.end(session)
        for rule in session.rules:
            self._delete_rule(rule)
        self.ctx.balancer.release(session.flow)
        self.ctx.balancer.release(session.reverse_flow)
        self.ctx.count("sessions_handed_off")

    def on_session_handoff(self, event: SessionHandoffIn) -> None:
        """Destination-shard half: re-form each transferred session
        from the mover's new location, preserving its identity (id,
        created_at, application) and re-resolving its waypoint chain
        through our balancer so load accounting stays truthful."""
        handoff = event.handoff
        shard = self.ctx.controller.shard
        engine = self.peer("policy-engine")
        for record in handoff.records:
            src = self.ctx.nib.host_by_mac(record.src_mac)
            dst = self.ctx.nib.host_by_mac(record.dst_mac)
            policy = (
                self.ctx.policies.get(record.policy_name)
                if record.policy_name else None
            )
            if src is None or dst is None:
                self.ctx.count("handoff_dropped")
                continue
            if self.ctx.sessions.lookup(record.flow) is not None:
                self.ctx.count("handoff_duplicate")
                continue
            waypoints: List[HostRecord] = []
            element_macs: Tuple[str, ...] = ()
            if policy is not None and record.element_macs:
                resolved = engine.resolve_chain(policy, record.flow, src)
                if resolved is not None:
                    chain, macs = resolved
                    waypoints = chain
                    element_macs = tuple(macs)
                elif engine.effective_fail_mode(policy) is FailMode.CLOSED:
                    session = self.ctx.sessions.create(
                        flow=record.flow, src_mac=record.src_mac,
                        dst_mac=record.dst_mac,
                        policy_name=record.policy_name,
                        element_macs=(), rules=[],
                        now=record.created_at,
                        session_id=record.session_id,
                    )
                    self._block_flow(
                        record.flow, src, policy_name=record.policy_name,
                        session=session,
                    )
                    continue
            try:
                rules, descriptor = self._compute_session_rules(
                    record.flow, src, dst, waypoints, policy,
                    record.session_id,
                )
            except RoutingError:
                self.ctx.count("handoff_dropped")
                continue
            session = self.ctx.sessions.create(
                flow=record.flow, src_mac=record.src_mac,
                dst_mac=record.dst_mac, policy_name=record.policy_name,
                element_macs=element_macs, rules=rules,
                now=record.created_at, session_id=record.session_id,
            )
            session.application = record.application
            session.path_descriptor = descriptor
            for rule in rules:
                self._install_rule(rule)
            if shard is not None and record.conntrack:
                shard.restore_conntrack(record.conntrack)
            self.ctx.count("sessions_adopted")
            self.ctx.log.emit(
                self.ctx.sim.now, EventKind.SESSION_HANDOFF,
                session=record.session_id, user_mac=record.src_mac,
                from_shard=handoff.from_shard, elements=len(element_macs),
            )
