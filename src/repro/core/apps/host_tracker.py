"""Host tracking: location discovery, directory proxy, announcements.

The paper's Section III.C.2 machinery as one app: ARP frames are both
*location evidence* (learned into the NIB) and *directory queries*
(answered from the NIB instead of flooding the fabric); DHCP is
proxied the same way; silent hosts expire; and the legacy fabric is
taught where MACs live through rate-limited gratuitous-ARP
announcements flooded out of switch uplinks.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core import messages as svcmsg
from repro.core.apps.base import App, AppContext
from repro.core.bus import ArpIn, DhcpIn, HostExpired, HostMoved, UplinksLost
from repro.core.events import EventKind
from repro.core.nib import HostRecord
from repro.net import packet as pkt
from repro.net.packet import Ethernet
from repro.openflow.actions import Output

HOST_EXPIRY_INTERVAL_S = 5.0
ANNOUNCE_REFRESH_INTERVAL_S = 60.0
ANNOUNCE_MIN_GAP_S = 0.25


class HostTrackerApp(App):
    """Learns host locations, proxies ARP/DHCP, announces, expires."""

    name = "host-tracker"

    def __init__(self, ctx: AppContext):
        super().__init__(ctx)
        self._last_announce = {}
        self.listen(ArpIn, self.on_arp)
        self.listen(DhcpIn, self.on_dhcp)
        # After the steering app (priority 0) tore the dead-path
        # sessions down: re-teach the legacy fabric over the surviving
        # uplinks.
        self.listen(UplinksLost, self.on_uplinks_lost, priority=10)

    def start(self) -> None:
        self.every(HOST_EXPIRY_INTERVAL_S, self.expire_hosts)
        self.every(ANNOUNCE_REFRESH_INTERVAL_S, self.refresh_announcements)

    # ------------------------------------------------------------------
    # Periphery classification

    def is_periphery_port(self, dpid: int, port: int) -> Optional[bool]:
        """True/False once the switch's uplinks are known, None before.

        A dual-homed AS switch has several Legacy-Switching ports; a
        port is periphery only when it is none of them.
        """
        uplinks = self.ctx.nib.uplink_ports(dpid)
        if not uplinks:
            return None
        return port not in uplinks

    # ------------------------------------------------------------------
    # ARP / location discovery / directory proxy

    def on_arp(self, event: ArpIn) -> None:
        packet_in, arp = event.packet_in, event.arp
        self.ctx.count("arp_in")
        periphery = self.is_periphery_port(packet_in.dpid, packet_in.in_port)
        if periphery:
            self.learn_host(
                mac=arp.sender_mac,
                ip=arp.sender_ip,
                dpid=packet_in.dpid,
                port=packet_in.in_port,
            )
        if not arp.is_request:
            # Unicast reply: deliver to the target if we know where it is.
            target = self.ctx.nib.host_by_mac(arp.target_mac)
            if target is not None:
                self.ctx.controller.send_packet_out(
                    target.dpid, actions=(Output(target.port),),
                    frame=packet_in.frame,
                )
            return
        decision = self.ctx.directory.handle_arp_request(arp)
        if decision.action == "reply":
            assert decision.reply_frame is not None
            self.ctx.controller.send_packet_out(
                packet_in.dpid,
                actions=(Output(packet_in.in_port),),
                frame=decision.reply_frame,
            )
        elif decision.action == "flood":
            self.periphery_flood(
                packet_in.frame, exclude=(packet_in.dpid, packet_in.in_port)
            )

    def learn_host(self, mac: str, ip: Optional[str], dpid: int, port: int,
                   is_element: bool = False) -> HostRecord:
        """Learn-or-refresh one host location; logs join/move events."""
        # Distinguish a genuine join from a move *before* the NIB
        # overwrites the record: inferring the difference from the
        # record's timestamps afterwards mis-labels a host that roams
        # (e.g. wired -> wifi) at the same instant it was first
        # learned, because first_seen == last_seen then looks like a
        # fresh join.
        prior = self.ctx.nib.host_by_mac(mac)
        moved = prior is not None and (prior.dpid != dpid or prior.port != port)
        record, is_new = self.ctx.nib.learn_host(
            mac=mac, ip=ip, dpid=dpid, port=port, now=self.ctx.sim.now,
            is_element=is_element,
        )
        if is_new:
            kind = EventKind.HOST_MOVE if moved else EventKind.HOST_JOIN
            if not record.is_element:
                self.ctx.log.emit(self.ctx.sim.now, kind,
                                  mac=mac, ip=ip, dpid=dpid, port=port)
            if moved:
                assert prior is not None
                self.ctx.bus.publish(
                    HostMoved(record, old_dpid=prior.dpid, old_port=prior.port)
                )
            self.announce_host(record)
        return record

    def adopt_remote_host(
        self,
        mac: str,
        ip: Optional[str],
        dpid: int,
        port: int,
        is_element: bool = False,
    ) -> HostRecord:
        """Accept a fabric-advertised host location into the NIB.

        No join/move events, no announcement: the owning shard already
        did both.  The adopted record only makes remote destinations
        and borrowed waypoints routable from this shard."""
        record, _ = self.ctx.nib.learn_host(
            mac=mac, ip=ip, dpid=dpid, port=port, now=self.ctx.sim.now,
            is_element=is_element,
        )
        return record

    def announce_host(self, record: HostRecord, force: bool = False) -> None:
        """Teach the legacy fabric where this MAC lives by flooding a
        gratuitous ARP out of the host's switch uplink.

        Rate-limited per MAC (announcements are flooded to every AS
        switch, so a feedback loop must never be able to amplify
        them); ``force`` bypasses the limiter for failover refreshes,
        where re-teaching the fabric immediately is the whole point.
        """
        uplink = self.ctx.nib.uplink_port(record.dpid)
        if uplink is None or record.dpid not in self.ctx.controller.switches:
            return
        last = self._last_announce.get(record.mac)
        if not force and last is not None and \
                self.ctx.sim.now - last < ANNOUNCE_MIN_GAP_S:
            return
        self._last_announce[record.mac] = self.ctx.sim.now
        announce = pkt.make_arp_request(
            record.mac, record.ip or "0.0.0.0", record.ip or "0.0.0.0"
        )
        self.ctx.controller.send_packet_out(
            record.dpid, actions=(Output(uplink),), frame=announce
        )

    def refresh_announcements(self, force: bool = False) -> None:
        """Re-announce every known host into the legacy fabric (also
        called once by the deployment after discovery converges)."""
        for record in list(self.ctx.nib.hosts.values()):
            self.announce_host(record, force=force)

    def on_uplinks_lost(self, event: UplinksLost) -> None:
        # The legacy fabric's MAC tables still point hosts at the dead
        # paths; flooding fresh announcements out of the surviving
        # uplinks re-teaches it.
        self.refresh_announcements(force=True)

    def periphery_flood(self, frame: Ethernet,
                        exclude: Tuple[int, int]) -> None:
        """Directory-proxy fallback for unknown ARP targets: deliver a
        copy to every Network-Periphery port, never into the fabric."""
        for dpid, handle in self.ctx.controller.switches.items():
            uplinks = self.ctx.nib.uplink_ports(dpid)
            if not uplinks:
                continue
            outputs = tuple(
                Output(port)
                for port in handle.ports
                if port not in uplinks and (dpid, port) != exclude
            )
            if outputs:
                self.ctx.controller.send_packet_out(
                    dpid, actions=outputs, frame=frame.clone()
                )

    # ------------------------------------------------------------------
    # DHCP proxy

    def on_dhcp(self, event: DhcpIn) -> None:
        packet_in, dhcp = event.packet_in, event.dhcp
        response = self.ctx.directory.handle_dhcp(dhcp)
        if response is None:
            return
        reply = Ethernet(
            src=svcmsg.CONTROLLER_MAC,
            dst=dhcp.client_mac,
            ethertype=0x0800,
            size=300,
            payload=None,
        )
        reply.payload = response  # type: ignore[assignment]
        self.ctx.controller.send_packet_out(
            packet_in.dpid, actions=(Output(packet_in.in_port),), frame=reply
        )

    # ------------------------------------------------------------------
    # Expiry

    def expire_hosts(self) -> None:
        # A host with a live (unblocked) session is demonstrably
        # present even if it has not ARPed lately -- keep it.
        now = self.ctx.sim.now
        for record in self.ctx.nib.hosts.values():
            if now - record.last_seen <= self.ctx.nib.host_timeout_s:
                continue
            if any(
                not session.blocked
                for session in self.ctx.sessions.sessions_of_user(record.mac)
            ):
                record.last_seen = now
        for record in self.ctx.nib.expire_hosts(now):
            if not record.is_element:
                self.ctx.log.emit(
                    now, EventKind.HOST_LEAVE, mac=record.mac, ip=record.ip,
                )
            self.ctx.bus.publish(HostExpired(record))
