"""The app framework: shared context, the App base class, lifecycle.

A LiveSec *app* is one cohesive slice of control logic (host tracking,
steering, monitoring, ...) wired onto the controller's event bus.  The
composition root constructs every app with an :class:`AppContext` --
the shared-state surfaces (NIB, sessions, registry, policies, event
log) plus the bus, the simulator, and the controller itself for the
OpenFlow senders -- then calls :meth:`App.start` once wiring is
complete so apps can register their periodic timers.

Apps talk to each other two ways:

* **events** for notifications (publish on the bus; subscribers react),
* **peer calls** for request/response (``self.peer("host-tracker")``)
  when the caller needs a return value, e.g. learning a host.

Every app has a *runtime lifecycle*: wiring (:meth:`App.listen`) and
timers (:meth:`App.every`) are retained so :meth:`App.stop` can undo
them completely -- after a stop, no bus subscription and no periodic
callback of the app survives.  The lifecycle state machine is

    constructed --start()--> running --stop()--> stopped
                               |
                          (crash_app)
                               v
                            crashed

and :meth:`App.status` renders the current state as a typed
:class:`ServiceStatus` row (the ``python -m repro ops`` view).  Each
app carries its construction ``config`` (the kwargs the composition
root or a reload passed), hashed canonically so the controller can
skip no-op reloads.

Every app counts the events it handles in its own metric namespace
(``app.<name>.events{event=...}``); the ``python -m repro apps``
command renders those counters next to the subscription table.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Type

from repro.core.bus import EventBus, Subscription

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import LiveSecController

#: Lifecycle states an app moves through.
APP_CONSTRUCTED = "constructed"
APP_RUNNING = "running"
APP_STOPPED = "stopped"
APP_CRASHED = "crashed"


def config_hash(config: Dict[str, object]) -> str:
    """sha256 over the canonical JSON form of an app config dict.

    Canonical (sorted keys, no whitespace, repr fallback) so two
    equal configs always hash equal and a reload with an unchanged
    config can be detected and skipped.
    """
    canonical = json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=repr
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class ServiceStatus:
    """One app's typed runtime-operations row (``repro ops``).

    ``state`` is one of the lifecycle states above; ``subscriptions``
    and ``timers`` count the app's live bus edges and periodic series;
    ``events_handled`` sums the per-event dispatch counters;
    ``config`` and ``config_hash`` describe the construction kwargs
    the reload check compares against.
    """

    name: str
    state: str
    subscriptions: int
    timers: int
    events_handled: int
    started_at: Optional[float]
    config: Dict[str, object] = field(default_factory=dict)
    config_hash: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "state": self.state,
            "subscriptions": self.subscriptions,
            "timers": self.timers,
            "events_handled": self.events_handled,
            "started_at": self.started_at,
            "config": dict(self.config),
            "config_hash": self.config_hash,
        }


@dataclass
class AppContext:
    """Everything an app may touch, handed over by the composition root.

    The shared tables (``nib``, ``sessions``, ``registry``,
    ``policies``) are the single source of truth between apps -- apps
    never cache copies of each other's state.  ``count`` increments
    one of the controller's legacy diagnostics counters by name.
    """

    sim: object
    bus: EventBus
    controller: "LiveSecController"
    nib: object
    policies: object
    registry: object
    balancer: object
    sessions: object
    directory: object
    log: object
    metrics: object
    count: Callable[[str], None]


class App:
    """Base class for NOX-style controller apps.

    Subclasses set :attr:`name`, wire their subscriptions in
    ``__init__`` via :meth:`listen`, and register periodic work in
    :meth:`start` (called by the composition root after every app is
    constructed, in a fixed order -- timer registration order is part
    of the deterministic dispatch contract).  Timers must go through
    :meth:`every` -- never ``ctx.sim.every`` directly -- so a stopped
    app never fires a late periodic callback.
    """

    name: str = "app"

    def __init__(self, ctx: AppContext):
        self.ctx = ctx
        self._event_counters: Dict[str, object] = {}
        self._subscriptions: List[Subscription] = []
        # Lifecycle: retained unsubscribe callables and timer handles,
        # so stop() can fully unwire the app.
        self._unsubscribes: List[Callable[[], None]] = []
        self._timers: List[object] = []  # EventHandles from every()
        self.state = APP_CONSTRUCTED
        self.started_at: Optional[float] = None
        # The construction kwargs, recorded by subclasses with knobs
        # (the controller reconstructs from this on restart/reload).
        self.config: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Wiring helpers

    def listen(
        self, event_type: Type, handler: Callable[[object], None],
        priority: int = 0,
    ) -> None:
        """Subscribe ``handler`` to ``event_type`` on the bus, counting
        every delivery in this app's metric namespace.  The returned
        unsubscribe callable is retained for :meth:`stop`."""
        event_name = event_type.__name__
        counter = self.ctx.metrics.counter(
            f"app.{self.name}.events",
            f"Bus events handled by the {self.name!r} app",
            event=event_name,
        )
        self._event_counters[event_name] = counter

        def counted(event, _handler=handler, _counter=counter):
            _counter.inc()
            _handler(event)

        counted.__name__ = getattr(handler, "__name__", "handler")
        self._unsubscribes.append(self.ctx.bus.subscribe(
            event_type, counted, app=self.name, priority=priority
        ))

    def every(self, interval: float, callback: Callable, *args,
              **kwargs) -> object:
        """Register a periodic timer owned by this app's lifecycle.

        Thin wrapper over ``ctx.sim.every`` that retains the series
        handle so :meth:`stop` cancels it.  All app timers -- whether
        registered in :meth:`start` or lazily from a handler -- must
        come through here.
        """
        handle = self.ctx.sim.every(interval, callback, *args, **kwargs)
        self._timers.append(handle)
        return handle

    def peer(self, name: str) -> "App":
        """Another app by name (request/response style coupling)."""
        return self.ctx.controller.app(name)

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> None:
        """Register periodic timers; called once after wiring."""

    def _mark_started(self) -> None:
        """Transition to running (the controller calls this around
        :meth:`start` so subclasses don't repeat the bookkeeping)."""
        self.state = APP_RUNNING
        self.started_at = self.ctx.sim.now

    def stop(self) -> None:
        """Unwire the app completely: every bus subscription is
        removed and every periodic timer cancelled.  Idempotent.
        Shared state the app wrote (NIB rows, sessions) is left to its
        peers -- stopping an observer must not perturb the data path.
        """
        self._teardown(APP_STOPPED)

    def _teardown(self, final_state: str) -> None:
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()
        for handle in self._timers:
            handle.cancel()
        self._timers.clear()
        self.state = final_state

    # ------------------------------------------------------------------
    # Introspection (the ``apps`` / ``ops`` CLI commands render these)

    def counters(self) -> Dict[str, int]:
        """Per-event handled counts, by event type name."""
        return {
            event: int(counter.value)
            for event, counter in sorted(self._event_counters.items())
        }

    def subscriptions(self) -> List[Subscription]:
        """This app's subscription edges, in dispatch order."""
        return [
            sub for sub in self.ctx.bus.subscriptions()
            if sub.app == self.name
        ]

    def config_hash(self) -> str:
        """Canonical hash of this app's construction config."""
        return config_hash(self.config)

    def status(self) -> ServiceStatus:
        """The typed runtime-operations row for this app."""
        return ServiceStatus(
            name=self.name,
            state=self.state,
            subscriptions=len(self._unsubscribes),
            timers=len(self._timers),
            events_handled=sum(self.counters().values()),
            started_at=self.started_at,
            config=dict(self.config),
            config_hash=self.config_hash(),
        )

    def describe(self) -> dict:
        """One JSON-friendly overview row for the ``apps`` command."""
        doc = (self.__doc__ or "").strip().splitlines()
        return {
            "name": self.name,
            "summary": doc[0] if doc else "",
            "state": self.state,
            "subscriptions": [
                {
                    "event": sub.event,
                    "handler": sub.handler,
                    "priority": sub.priority,
                }
                for sub in self.subscriptions()
            ],
            "counters": self.counters(),
        }
