"""The app framework: shared context and the App base class.

A LiveSec *app* is one cohesive slice of control logic (host tracking,
steering, monitoring, ...) wired onto the controller's event bus.  The
composition root constructs every app with an :class:`AppContext` --
the shared-state surfaces (NIB, sessions, registry, policies, event
log) plus the bus, the simulator, and the controller itself for the
OpenFlow senders -- then calls :meth:`App.start` once wiring is
complete so apps can register their periodic timers.

Apps talk to each other two ways:

* **events** for notifications (publish on the bus; subscribers react),
* **peer calls** for request/response (``self.peer("host-tracker")``)
  when the caller needs a return value, e.g. learning a host.

Every app counts the events it handles in its own metric namespace
(``app.<name>.events{event=...}``); the ``python -m repro apps``
command renders those counters next to the subscription table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Type

from repro.core.bus import EventBus, Subscription

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import LiveSecController


@dataclass
class AppContext:
    """Everything an app may touch, handed over by the composition root.

    The shared tables (``nib``, ``sessions``, ``registry``,
    ``policies``) are the single source of truth between apps -- apps
    never cache copies of each other's state.  ``count`` increments
    one of the controller's legacy diagnostics counters by name.
    """

    sim: object
    bus: EventBus
    controller: "LiveSecController"
    nib: object
    policies: object
    registry: object
    balancer: object
    sessions: object
    directory: object
    log: object
    metrics: object
    count: Callable[[str], None]


class App:
    """Base class for NOX-style controller apps.

    Subclasses set :attr:`name`, wire their subscriptions in
    ``__init__`` via :meth:`listen`, and register periodic work in
    :meth:`start` (called by the composition root after every app is
    constructed, in a fixed order -- timer registration order is part
    of the deterministic dispatch contract).
    """

    name: str = "app"

    def __init__(self, ctx: AppContext):
        self.ctx = ctx
        self._event_counters: Dict[str, object] = {}
        self._subscriptions: List[Subscription] = []

    # ------------------------------------------------------------------
    # Wiring helpers

    def listen(
        self, event_type: Type, handler: Callable[[object], None],
        priority: int = 0,
    ) -> None:
        """Subscribe ``handler`` to ``event_type`` on the bus, counting
        every delivery in this app's metric namespace."""
        event_name = event_type.__name__
        counter = self.ctx.metrics.counter(
            f"app.{self.name}.events",
            f"Bus events handled by the {self.name!r} app",
            event=event_name,
        )
        self._event_counters[event_name] = counter

        def counted(event, _handler=handler, _counter=counter):
            _counter.inc()
            _handler(event)

        counted.__name__ = getattr(handler, "__name__", "handler")
        self.ctx.bus.subscribe(
            event_type, counted, app=self.name, priority=priority
        )

    def peer(self, name: str) -> "App":
        """Another app by name (request/response style coupling)."""
        return self.ctx.controller.app(name)

    def start(self) -> None:
        """Register periodic timers; called once after wiring."""

    # ------------------------------------------------------------------
    # Introspection (the ``apps`` CLI command renders these)

    def counters(self) -> Dict[str, int]:
        """Per-event handled counts, by event type name."""
        return {
            event: int(counter.value)
            for event, counter in sorted(self._event_counters.items())
        }

    def subscriptions(self) -> List[Subscription]:
        """This app's subscription edges, in dispatch order."""
        return [
            sub for sub in self.ctx.bus.subscriptions()
            if sub.app == self.name
        ]

    def describe(self) -> dict:
        """One JSON-friendly overview row for the ``apps`` command."""
        doc = (self.__doc__ or "").strip().splitlines()
        return {
            "name": self.name,
            "summary": doc[0] if doc else "",
            "subscriptions": [
                {
                    "event": sub.event,
                    "handler": sub.handler,
                    "priority": sub.priority,
                }
                for sub in self.subscriptions()
            ],
            "counters": self.counters(),
        }
