"""Topology maintenance: switch membership and the logical link mesh.

Keeps the NIB's switch and link tables in sync with what the
controller framework reports (channel up/down, LLDP confirmations and
timeouts), logs the corresponding events, and -- when link loss
shrinks a switch's uplink set -- publishes :class:`UplinksLost` so the
steering app can tear down the sessions forwarding into the dead path
and the host tracker can re-teach the legacy fabric.
"""

from __future__ import annotations

from repro.core.apps.base import App, AppContext
from repro.core.bus import (
    LinkDiscovered,
    LinkTimedOut,
    SwitchJoined,
    SwitchLeft,
    UplinksLost,
)
from repro.core.events import EventKind


class TopologyApp(App):
    """Mirrors switch joins/leaves and LLDP links into the NIB."""

    name = "topology"

    def __init__(self, ctx: AppContext):
        super().__init__(ctx)
        # Priority -10: the NIB must reflect the new topology before
        # any other app (e.g. steering's resync) reacts to the event.
        self.listen(SwitchJoined, self.on_switch_joined, priority=-10)
        self.listen(SwitchLeft, self.on_switch_left, priority=-10)
        self.listen(LinkDiscovered, self.on_link_discovered)
        self.listen(LinkTimedOut, self.on_link_timed_out)

    def on_switch_joined(self, event: SwitchJoined) -> None:
        handle = event.handle
        self.ctx.nib.add_switch(
            handle.dpid, handle.name, handle.ports, self.ctx.sim.now
        )
        self.ctx.log.emit(self.ctx.sim.now, EventKind.SWITCH_JOIN,
                          dpid=handle.dpid, name=handle.name)

    def on_switch_left(self, event: SwitchLeft) -> None:
        self.ctx.nib.remove_switch(event.handle.dpid)
        self.ctx.log.emit(self.ctx.sim.now, EventKind.SWITCH_LEAVE,
                          dpid=event.handle.dpid)

    def on_link_discovered(self, event: LinkDiscovered) -> None:
        link = event.link
        pair_was_known = (
            self.ctx.nib.link(link.src_dpid, link.dst_dpid) is not None
        )
        self.ctx.nib.learn_link(
            link.src_dpid, link.src_port, link.dst_dpid, link.dst_port,
            self.ctx.sim.now,
        )
        if not pair_was_known:
            self.ctx.log.emit(
                self.ctx.sim.now, EventKind.LINK_UP,
                src_dpid=link.src_dpid, src_port=link.src_port,
                dst_dpid=link.dst_dpid, dst_port=link.dst_port,
            )

    def on_link_timed_out(self, event: LinkTimedOut) -> None:
        link = event.link
        # Dual-homed pairs have several port pairs; rebuild the NIB's
        # link table from what discovery still confirms, and only
        # report the logical link down when no path remains.
        before = {
            dpid: self.ctx.nib.uplink_ports(dpid)
            for dpid in self.ctx.nib.switches
        }
        self.ctx.nib.rebuild_links(
            self.ctx.controller.known_links(), self.ctx.sim.now
        )
        if self.ctx.nib.link(link.src_dpid, link.dst_dpid) is None:
            # Ports ride along so the monitoring view can drop the dead
            # ports' link-load readings.
            self.ctx.log.emit(
                self.ctx.sim.now, EventKind.LINK_DOWN,
                src_dpid=link.src_dpid, src_port=link.src_port,
                dst_dpid=link.dst_dpid, dst_port=link.dst_port,
            )
        # Fabric failover: a switch whose uplink set shrank may have
        # live sessions forwarding into the dead path -- and those
        # entries never idle out, because the (blackholed) traffic
        # keeps refreshing them.  Publish the loss; steering tears the
        # affected sessions down, then the host tracker re-announces.
        lost = tuple(
            dpid for dpid, old_uplinks in before.items()
            if (new := self.ctx.nib.uplink_ports(dpid))
            and old_uplinks - new
        )
        if lost:
            self.ctx.bus.publish(UplinksLost(dpids=lost))
