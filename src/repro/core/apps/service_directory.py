"""The service-element directory: wire messages, liveness, verdicts.

Owns the in-band element channel of Section III.D.1: ONLINE liveness
and load reports feed the service registry and the load balancer;
EVENT reports (attack detected, protocol identified, scan verdicts)
are verified against the element's certificate and turned into
blocking or log events.  Malformed or uncertified traffic gets the
offending source blocked at its ingress switch.

Decoding itself lives in the versioned codecs of
:mod:`repro.core.messages`; this app only handles *decoded, typed*
messages -- a malformed payload never reaches the handlers.
"""

from __future__ import annotations

from typing import Optional

from repro.core import messages as svcmsg
from repro.core.apps.base import App, AppContext
from repro.core.bus import (
    ConnTrackUpdateIn,
    ElementExpired,
    FlowBlockRequested,
    ServiceFrameIn,
    SourceBlockRequested,
)
from repro.core.events import EventKind
from repro.core.nib import HostRecord
from repro.core.services import CertificateError, ServiceElementRecord
from repro.core.sessions import Session

REGISTRY_EXPIRY_INTERVAL_S = 1.0


class ServiceDirectoryApp(App):
    """Tracks service elements and reacts to their reports."""

    name = "service-directory"

    def __init__(self, ctx: AppContext):
        super().__init__(ctx)
        self.listen(ServiceFrameIn, self.on_service_frame)

    def start(self) -> None:
        self.every(REGISTRY_EXPIRY_INTERVAL_S, self.expire_elements)

    # ------------------------------------------------------------------
    # Wire messages

    def on_service_frame(self, event: ServiceFrameIn) -> None:
        self.ctx.count("service_messages")
        packet_in = event.packet_in
        mac = packet_in.frame.src
        try:
            message = svcmsg.decode(event.payload)
        except svcmsg.MessageFormatError:
            self._reject_element(packet_in, mac, reason="malformed-message")
            return
        try:
            if isinstance(message, svcmsg.OnlineMessage):
                self._handle_online(packet_in, message)
            elif isinstance(message, svcmsg.ConnTrackMessage):
                self._handle_conntrack(message)
            else:
                self._handle_event_report(message)
        except CertificateError:
            self._reject_element(packet_in, mac, reason="bad-certificate")

    def _handle_online(self, packet_in, message: svcmsg.OnlineMessage) -> None:
        # Capture the prior liveness *before* handle_online refreshes
        # the record (which always leaves it online): an element
        # returning from an expiry must re-log ELEMENT_ONLINE.
        prior = self.ctx.registry.get(message.element_mac)
        was_online = prior is not None and prior.online
        record = self.ctx.registry.handle_online(message, self.ctx.sim.now)
        came_back = not was_online
        host = self.peer("host-tracker").learn_host(
            mac=message.element_mac,
            ip=None,
            dpid=packet_in.dpid,
            port=packet_in.in_port,
            is_element=True,
        )
        self.ctx.balancer.on_load_report(message.element_mac)
        if came_back or record.reports == 1:
            self.ctx.log.emit(
                self.ctx.sim.now, EventKind.ELEMENT_ONLINE,
                mac=message.element_mac,
                service_type=message.service_type,
                dpid=host.dpid,
            )
        self.ctx.log.emit(
            self.ctx.sim.now, EventKind.ELEMENT_LOAD,
            mac=message.element_mac, cpu=message.cpu, pps=message.pps,
            flows=message.active_flows,
        )

    def _handle_conntrack(self, message: svcmsg.ConnTrackMessage) -> None:
        """A stateful firewall reported a connection-state transition:
        certify it, log it for the global view, and publish it for
        observers (accountability, monitoring)."""
        self.ctx.registry.verify_event(message)
        self.ctx.count("conntrack_reports")
        self.ctx.log.emit(
            self.ctx.sim.now, EventKind.CONNTRACK_STATE,
            element=message.element_mac,
            state=message.state,
            conn=",".join(
                "" if part is None else str(part) for part in message.conn
            ),
        )
        self.ctx.bus.publish(ConnTrackUpdateIn(message=message))

    def _handle_event_report(
        self, message: svcmsg.EventReportMessage
    ) -> None:
        self.ctx.registry.verify_event(message)
        session = self._find_session_for_report(message)
        if message.kind == "attack":
            self._block_attack(message, session)
        elif message.kind == "protocol":
            application = message.detail.get("application", "unknown")
            user_mac = session.src_mac if session else (
                message.flow.dl_src if message.flow else "?"
            )
            if session is not None:
                session.application = application
            self.ctx.log.emit(
                self.ctx.sim.now, EventKind.PROTOCOL_IDENTIFIED,
                user_mac=user_mac, application=application,
                element=message.element_mac,
            )
        else:
            # Other service results (virus, content, ...) are logged as
            # attacks for blocking purposes only when flagged malicious.
            if message.detail.get("verdict") == "malicious":
                self._block_attack(message, session)
            else:
                self.ctx.log.emit(
                    self.ctx.sim.now, EventKind.PROTOCOL_IDENTIFIED,
                    user_mac=message.flow.dl_src if message.flow else "?",
                    application=(
                        f"{message.kind}:{message.detail.get('result', '?')}"
                    ),
                    element=message.element_mac,
                )

    def _find_session_for_report(
        self, message: svcmsg.EventReportMessage
    ) -> Optional[Session]:
        """Map a reported flow back to its session.

        The element sees frames whose dl_dst was rewritten to its own
        MAC, so an exact 9-tuple lookup can fail; fall back to matching
        the sessions steered through that element on the stable fields.
        """
        if message.flow is None:
            return None
        direct = self.ctx.sessions.lookup(message.flow)
        if direct is not None:
            return direct
        for session in self.ctx.sessions.sessions_via_element(
            message.element_mac
        ):
            for candidate in (session.flow, session.reverse_flow):
                # Compare on the network/transport identity only: the
                # MAC labels the element saw may have been rewritten by
                # the steering chain (dl_dst always, dl_src for chains
                # of two or more elements).
                if (
                    candidate.nw_src == message.flow.nw_src
                    and candidate.nw_dst == message.flow.nw_dst
                    and candidate.nw_proto == message.flow.nw_proto
                    and candidate.tp_src == message.flow.tp_src
                    and candidate.tp_dst == message.flow.tp_dst
                ):
                    return session
        return None

    def _block_attack(
        self,
        message: svcmsg.EventReportMessage,
        session: Optional[Session],
    ) -> None:
        """Report the attack; the steering app installs the ingress drop."""
        attack_type = message.detail.get("attack", "unknown")
        if session is not None:
            flow = session.flow
            user_mac = session.src_mac
        elif message.flow is not None:
            flow = message.flow
            user_mac = message.flow.dl_src
        else:
            return
        src = self.ctx.nib.host_by_mac(user_mac)
        self.ctx.log.emit(
            self.ctx.sim.now, EventKind.ATTACK_DETECTED,
            user_mac=user_mac, attack=attack_type,
            element=message.element_mac,
            dpid=src.dpid if src else -1,
        )
        if src is None:
            return
        self.ctx.bus.publish(FlowBlockRequested(
            flow=flow, src=src, session=session, attack=attack_type,
        ))

    def _reject_element(self, packet_in, mac: str, reason: str) -> None:
        """Uncertified/malformed element traffic: drop at the ingress."""
        record = self.ctx.nib.host_by_mac(mac)
        if record is None:
            record = HostRecord(
                mac=mac, ip=None, dpid=packet_in.dpid, port=packet_in.in_port,
                first_seen=self.ctx.sim.now, last_seen=self.ctx.sim.now,
            )
        self.ctx.bus.publish(SourceBlockRequested(mac=mac, record=record))
        self.ctx.log.emit(
            self.ctx.sim.now, EventKind.ELEMENT_REJECTED, mac=mac, reason=reason
        )

    # ------------------------------------------------------------------
    # Shard federation

    def directory_export(self) -> list:
        """This shard's contribution to the federated directory: every
        online element homed on a switch this shard currently owns,
        with its NIB location and last reported load."""
        rows = []
        for mac in sorted(self.ctx.registry.elements):
            record = self.ctx.registry.elements[mac]
            if not record.online:
                continue
            host = self.ctx.nib.host_by_mac(mac)
            if host is None or host.dpid not in self.ctx.controller.switches:
                continue
            rows.append({
                "mac": mac,
                "service_type": record.service_type,
                "dpid": host.dpid,
                "port": host.port,
                "ip": host.ip,
                "pps": record.pps,
                "cpu": record.cpu,
                "active_flows": record.active_flows,
            })
        return rows

    def remote_element_down(self, mac: str) -> None:
        """Fabric notification: an element this shard had borrowed as a
        waypoint is gone from its origin's export.  Mirrors the local
        expiry path so sessions steered through it fail over."""
        host = self.ctx.nib.host_by_mac(mac)
        if host is None or not host.is_element:
            return
        record = self.ctx.registry.get(mac)
        if record is None:
            record = ServiceElementRecord(
                mac=mac, service_type="remote",
                first_seen=self.ctx.sim.now, last_seen=self.ctx.sim.now,
                online=False,
            )
        elif record.online:
            record.online = False
        self.ctx.nib.remove_host(mac)
        self.ctx.balancer.forget_element(mac)
        self.ctx.log.emit(
            self.ctx.sim.now, EventKind.ELEMENT_OFFLINE, mac=mac,
            service_type=record.service_type,
        )
        self.ctx.bus.publish(ElementExpired(record))

    # ------------------------------------------------------------------
    # Liveness expiry

    def expire_elements(self) -> None:
        for record in self.ctx.registry.expire(self.ctx.sim.now):
            self.ctx.log.emit(
                self.ctx.sim.now, EventKind.ELEMENT_OFFLINE, mac=record.mac,
                service_type=record.service_type,
            )
            self.ctx.balancer.forget_element(record.mac)
            self.ctx.bus.publish(ElementExpired(record))
