"""Monitoring: stats polling, link-load accounting, flow-stats fan-out.

The read-only side of Section III.D: a periodic port-stats poll turns
per-port byte counters into LINK_LOAD event-log lines (normalized
against registered line rates), and flow-stats replies fan out to
subscribed consumers (the flow-control service, dashboards) without
the monitor interpreting them.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.apps.base import App, AppContext
from repro.core.bus import FlowStatsIn, PolicyReloaded, PortStatsIn
from repro.core.events import EventKind
from repro.openflow import messages as ofmsg

DEFAULT_STATS_INTERVAL_S = 1.0


class MonitorApp(App):
    """Polls switch statistics and publishes load observations."""

    name = "monitor"

    def __init__(
        self, ctx: AppContext, stats_interval_s: Optional[float] = None
    ):
        super().__init__(ctx)
        self.stats_interval_s = stats_interval_s
        self.config = {"stats_interval_s": stats_interval_s}
        self._port_capacity: Dict[Tuple[int, int], float] = {}
        self._last_port_sample: Dict[Tuple[int, int], Tuple[int, float]] = {}
        self._flow_stats_listeners: list = []
        self._policy_reloads = ctx.metrics.counter(
            "controller.policy_reloads",
            "Atomic policy-table swaps observed on the bus",
        )
        self.listen(PortStatsIn, self.on_port_stats)
        self.listen(FlowStatsIn, self.on_flow_stats)
        self.listen(PolicyReloaded, self.on_policy_reloaded)

    def start(self) -> None:
        if self.stats_interval_s is not None:
            self.every(self.stats_interval_s, self.poll_stats)

    # ------------------------------------------------------------------
    # Port stats -> link load

    def register_port_capacity(self, dpid: int, port: int, bps: float) -> None:
        """Tell the monitor a port's line rate so it can normalize load."""
        self._port_capacity[(dpid, port)] = bps

    def poll_stats(self) -> None:
        for dpid in list(self.ctx.controller.switches):
            self.ctx.controller.request_port_stats(dpid)

    def on_port_stats(self, event: PortStatsIn) -> None:
        reply = event.message
        now = self.ctx.sim.now
        for port, stats in reply.stats.items():
            key = (reply.dpid, port)
            tx_bytes = int(stats["tx_bytes"])
            previous = self._last_port_sample.get(key)
            self._last_port_sample[key] = (tx_bytes, now)
            if previous is None:
                continue
            prev_bytes, prev_time = previous
            elapsed = now - prev_time
            if elapsed <= 0:
                continue
            rate_bps = (tx_bytes - prev_bytes) * 8.0 / elapsed
            capacity = self._port_capacity.get(key)
            utilization = rate_bps / capacity if capacity else 0.0
            if rate_bps > 0:
                self.ctx.log.emit(
                    now, EventKind.LINK_LOAD,
                    dpid=reply.dpid, port=port,
                    rate_bps=rate_bps, utilization=min(1.0, utilization),
                )

    # ------------------------------------------------------------------
    # Flow stats fan-out

    def subscribe_flow_stats(
        self, callback: Callable[[ofmsg.FlowStatsReply], None]
    ) -> Callable[[], None]:
        """Register a flow-stats consumer; returns an unsubscriber."""
        self._flow_stats_listeners.append(callback)

        def unsubscribe() -> None:
            try:
                self._flow_stats_listeners.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def on_flow_stats(self, event: FlowStatsIn) -> None:
        for listener in list(self._flow_stats_listeners):
            listener(event.message)

    # ------------------------------------------------------------------
    # Policy lifecycle

    def on_policy_reloaded(self, event: PolicyReloaded) -> None:
        self._policy_reloads.inc()
