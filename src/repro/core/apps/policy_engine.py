"""Policy decisions: lookup, chain resolution, fail-mode arbitration.

A pure decision service (IV.A): given a first packet's nine-tuple and
its ingress host, produce the verdict the steering app enforces --
allow, drop, or steer through a resolved chain of service-element
waypoints.  Separating *decision* from *enforcement* is what lets the
failover path reuse exactly the same chain resolution the first-packet
path uses (and is the PEPS-style layering the refactor is after).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.apps.base import App, AppContext
from repro.core.bus import PolicyReloaded
from repro.core.events import EventKind
from repro.core.nib import HostRecord
from repro.core.policy import FailMode, Policy, PolicyAction
from repro.net.packet import FlowNineTuple


@dataclass
class PolicyDecision:
    """What to do with one first packet.

    ``verdict`` is ``'allow'`` (install a plain two-hop session,
    possibly with a resolved ``waypoints`` chain) or ``'block'``
    (install an ingress drop).  ``policy_name`` labels the event-log
    line; ``policy`` rides along for rule parameters (inspect_reply).
    """

    verdict: str  # "allow" | "block"
    policy: Optional[Policy] = None
    waypoints: List[HostRecord] = field(default_factory=list)
    element_macs: Tuple[str, ...] = ()

    @property
    def policy_name(self) -> str:
        return self.policy.name if self.policy is not None else "default"


class PolicyEngineApp(App):
    """Resolves policies into enforceable decisions."""

    name = "policy-engine"

    def __init__(self, ctx: AppContext):
        super().__init__(ctx)
        self._policy_scan_hist = ctx.metrics.histogram(
            "controller.policy_lookup_scans",
            "Policy-table rows scanned per first-packet lookup",
        )
        self.listen(PolicyReloaded, self.on_policy_reloaded)

    # ------------------------------------------------------------------
    # Policy lifecycle

    def on_policy_reloaded(self, event: PolicyReloaded) -> None:
        """Record the atomic swap in the event log: the new version and
        which policies came and went."""
        commit = event.commit
        self.ctx.log.emit(
            self.ctx.sim.now, EventKind.POLICY_CHANGED,
            version=commit.version,
            policies=commit.policies,
            added=list(commit.added),
            removed=list(commit.removed),
            source=commit.source,
        )

    # ------------------------------------------------------------------
    # First-packet decision

    def decide(self, flow: FlowNineTuple, src: HostRecord) -> PolicyDecision:
        """The full first-packet pipeline: match, resolve, fail-mode."""
        policy, scanned = self.ctx.policies.match(flow)
        self._policy_scan_hist.observe(scanned)
        if policy is not None:
            # Hit accounting is the engine's call, not the lookup's:
            # read-only consumers must not inflate hits.
            self.ctx.policies.record_hit(policy)
        action = (
            policy.action if policy is not None
            else self.ctx.policies.default_action
        )
        if action is PolicyAction.DROP:
            return PolicyDecision(verdict="block", policy=policy)
        if action is not PolicyAction.CHAIN:
            return PolicyDecision(verdict="allow", policy=policy)
        assert policy is not None
        resolved = self.resolve_chain(policy, flow, src)
        if resolved is None:
            if self.effective_fail_mode(policy) is FailMode.CLOSED:
                return PolicyDecision(verdict="block", policy=policy)
            self.ctx.count("no_element_fallback")
            return PolicyDecision(verdict="allow", policy=policy)
        waypoints, element_macs = resolved
        return PolicyDecision(
            verdict="allow", policy=policy,
            waypoints=waypoints, element_macs=tuple(element_macs),
        )

    # ------------------------------------------------------------------
    # Chain resolution (shared with the failover path)

    def resolve_chain(
        self, policy: Policy, flow: FlowNineTuple, src: HostRecord
    ) -> Optional[Tuple[List[HostRecord], List[str]]]:
        """Pick one element per chained service type via the balancer.

        Elements homed on a quarantined datapath (convicted by the
        accountability app) are never picked: a compromised switch
        must not sit on the inspection path of new or re-steered
        sessions."""
        quarantined = self.ctx.controller.quarantined_dpids
        waypoints: List[HostRecord] = []
        element_macs: List[str] = []
        for service_type in policy.service_chain:
            candidates = self.ctx.registry.candidates(service_type)
            located = []
            for candidate in candidates:
                record = self.ctx.nib.host_by_mac(candidate.mac)
                if record is None or record.dpid in quarantined:
                    continue
                located.append(candidate)
            if not located:
                # Federated fallback: borrow a waypoint homed to another
                # shard (adopted into our NIB by the coordinator) only
                # when no local element of the type survives -- keeping
                # the common case O(local elements).
                shard = self.ctx.controller.shard
                if shard is not None:
                    for candidate in shard.remote_candidates(service_type):
                        record = self.ctx.nib.host_by_mac(candidate.mac)
                        if record is None or record.dpid in quarantined:
                            continue
                        located.append(candidate)
            if not located:
                return None
            chosen = self.ctx.balancer.assign(
                located, flow,
                user=src.mac,
                granularity=policy.granularity,
            )
            record = self.ctx.nib.host_by_mac(chosen)
            assert record is not None
            waypoints.append(record)
            element_macs.append(chosen)
        return waypoints, element_macs

    def effective_fail_mode(self, policy: Optional[Policy]) -> FailMode:
        """The fail mode governing a chained policy with no healthy
        element: the policy's own, else inherited from the controller's
        ``on_no_element`` default."""
        if policy is not None and policy.fail_mode is not None:
            return policy.fail_mode
        if self.ctx.controller.on_no_element == "drop":
            return FailMode.CLOSED
        return FailMode.OPEN
