"""NOX-style controller apps.

Each app owns one concern of the LiveSec controller and communicates
with the others over the event bus (:mod:`repro.core.bus`) and the
shared state surfaces handed to it in its :class:`AppContext`.  The
composition root (:class:`repro.core.controller.LiveSecController`)
instantiates them in a fixed order, which -- together with the bus's
deterministic dispatch -- keeps the fault-injection digests
reproducible.
"""

from repro.core.apps.accountability import AccountabilityApp
from repro.core.apps.base import App, AppContext
from repro.core.apps.host_tracker import HostTrackerApp
from repro.core.apps.monitor import MonitorApp
from repro.core.apps.policy_engine import PolicyDecision, PolicyEngineApp
from repro.core.apps.service_directory import ServiceDirectoryApp
from repro.core.apps.steering import SteeringApp
from repro.core.apps.topology import TopologyApp

__all__ = [
    "AccountabilityApp",
    "App",
    "AppContext",
    "HostTrackerApp",
    "TopologyApp",
    "ServiceDirectoryApp",
    "PolicyDecision",
    "PolicyEngineApp",
    "SteeringApp",
    "MonitorApp",
]
