"""Network visualization and history replay (Sections IV.D, V.B.4).

The paper's WebUI shows, live: the (full-mesh) logical topology, user
join/leave, link load, which user consumes which application service,
and where attacks happen -- and can replay history.  The Flash/LAMP
stack is replaced by an in-process monitoring component: it subscribes
to the global :class:`~repro.core.events.EventLog` (the single source
of truth -- there is no second "database" copy), maintains the live
view, and takes a snapshot *checkpoint* every ``checkpoint_interval``
events.  :meth:`MonitoringComponent.replay` then starts from the
nearest checkpoint at or before the requested moment and folds only
the delta -- O(events since checkpoint), not O(whole history).

:func:`render_snapshot` produces the text rendering used by the
examples, the Figure 7/8 benches, and ``python -m repro replay``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.events import EventKind, EventLog, NetworkEvent

DEFAULT_CHECKPOINT_INTERVAL = 256
DEFAULT_MAX_CHECKPOINTS = 64


@dataclass
class UserView:
    """What the WebUI shows about one user."""

    mac: str
    ip: Optional[str]
    dpid: int
    online: bool = True
    applications: List[str] = field(default_factory=list)
    attacks: int = 0
    blocked: bool = False


@dataclass
class ElementView:
    """What the WebUI shows about one service element."""

    mac: str
    service_type: str
    dpid: int
    online: bool = True
    cpu: float = 0.0
    pps: float = 0.0


@dataclass
class Snapshot:
    """The WebUI's world state at one moment."""

    time: float
    switches: List[int] = field(default_factory=list)
    links: List[Tuple[int, int]] = field(default_factory=list)
    users: Dict[str, UserView] = field(default_factory=dict)
    elements: Dict[str, ElementView] = field(default_factory=dict)
    link_loads: Dict[Tuple[int, int], float] = field(default_factory=dict)
    active_attacks: List[dict] = field(default_factory=list)

    def online_users(self) -> List[UserView]:
        return [u for u in self.users.values() if u.online]

    def full_mesh(self) -> bool:
        """Every switch pair connected, treating links as undirected
        (LLDP records whichever direction discovery confirmed first)."""
        dpids = self.switches
        if len(dpids) < 2:
            return True
        have = {frozenset(pair) for pair in self.links}
        return all(
            frozenset((a, b)) in have
            for a in dpids for b in dpids if a != b
        )


@dataclass
class _Checkpoint:
    """A materialized snapshot of the fold at one point in the log."""

    seq: int  # sequence number of the last folded event
    time: float  # that event's timestamp
    state: Snapshot


class MonitoringComponent:
    """Event-sourced live view + checkpointed history replay."""

    def __init__(
        self,
        log: EventLog,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        max_checkpoints: int = DEFAULT_MAX_CHECKPOINTS,
    ):
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if max_checkpoints < 2:
            raise ValueError("max_checkpoints must be >= 2")
        self.log = log
        self.checkpoint_interval = checkpoint_interval
        self.max_checkpoints = max_checkpoints
        self._state = Snapshot(time=0.0)
        self._applied = 0
        self._checkpoints: List[_Checkpoint] = []
        log.subscribe(self._on_event)
        # A log loaded from disk already holds history: fold it so the
        # live view (and the checkpoint ladder) covers it too.
        for event in log:
            self._on_event(event)

    # ------------------------------------------------------------------
    # Live view

    def _on_event(self, event: NetworkEvent) -> None:
        _apply_event(self._state, event)
        self._applied += 1
        if self._applied % self.checkpoint_interval == 0:
            self._checkpoints.append(_Checkpoint(
                seq=event.seq,
                time=self._state.time,
                state=copy.deepcopy(self._state),
            ))
            if len(self._checkpoints) > self.max_checkpoints:
                # Thin to every second checkpoint (the newest is kept)
                # and double the interval: coverage stays logarithmic,
                # memory stays bounded.
                self._checkpoints = self._checkpoints[1::2]
                self.checkpoint_interval *= 2

    def snapshot(self) -> Snapshot:
        """A deep copy of the current world state."""
        return copy.deepcopy(self._state)

    def checkpoints(self) -> List[Tuple[int, float]]:
        """The (seq, time) ladder, oldest first (introspection)."""
        return [(c.seq, c.time) for c in self._checkpoints]

    # ------------------------------------------------------------------
    # History replay

    def replay(self, until: Optional[float] = None) -> Snapshot:
        """Reconstruct the world state as of time ``until`` from the
        recorded history, starting at the nearest checkpoint."""
        state, _seq = self._replay_from_checkpoint(until)
        if until is not None:
            state.time = until
        return state

    def _replay_from_checkpoint(
        self, until: Optional[float]
    ) -> Tuple[Snapshot, int]:
        """The O(delta) fold; returns (state, seq of last event folded)."""
        checkpoint = None
        for candidate in reversed(self._checkpoints):
            if until is None or candidate.time <= until:
                checkpoint = candidate
                break
        if checkpoint is None:
            state, seq = Snapshot(time=0.0), -1
        else:
            state, seq = copy.deepcopy(checkpoint.state), checkpoint.seq
        for event in self.log.events_after(seq):
            if until is not None and event.time > until:
                break
            _apply_event(state, event)
            seq = event.seq
        return state, seq

    def _replay_linear(self, until: Optional[float] = None) -> Snapshot:
        """The pre-checkpoint reference fold from t=0 (oracle for the
        equivalence property tests and the E16 bench)."""
        state = Snapshot(time=0.0)
        for event in self.log:
            if until is not None and event.time > until:
                break
            _apply_event(state, event)
        if until is not None:
            state.time = until
        return state

    def replay_series(self, times: List[float]) -> Iterator[Snapshot]:
        """Snapshots at each requested time.

        Ascending runs of ``times`` are replayed incrementally with a
        forward cursor; a rewind (a moment earlier than its
        predecessor) restarts from the nearest checkpoint instead of
        silently reusing the too-advanced cursor state.
        """
        state = Snapshot(time=0.0)
        stream = self.log.events_after(-1)
        pending = next(stream, None)
        previous: Optional[float] = None
        for moment in times:
            if previous is not None and moment < previous:
                state, seq = self._replay_from_checkpoint(moment)
                stream = self.log.events_after(seq)
                pending = next(stream, None)
            while pending is not None and pending.time <= moment:
                _apply_event(state, pending)
                pending = next(stream, None)
            previous = moment
            view = copy.deepcopy(state)
            view.time = moment
            yield view


def _apply_event(state: Snapshot, event: NetworkEvent) -> None:
    """The WebUI state machine: fold one event into the snapshot."""
    data = event.data
    state.time = event.time
    if event.kind == EventKind.SWITCH_JOIN:
        dpid = int(data["dpid"])  # type: ignore[arg-type]
        if dpid not in state.switches:
            state.switches.append(dpid)
    elif event.kind == EventKind.SWITCH_LEAVE:
        dpid = int(data["dpid"])  # type: ignore[arg-type]
        if dpid in state.switches:
            state.switches.remove(dpid)
        state.links = [l for l in state.links if dpid not in l]
        state.link_loads = {
            key: load for key, load in state.link_loads.items()
            if key[0] != dpid
        }
    elif event.kind == EventKind.LINK_UP:
        pair = (int(data["src_dpid"]), int(data["dst_dpid"]))  # type: ignore[arg-type]
        if pair not in state.links:
            state.links.append(pair)
    elif event.kind == EventKind.LINK_DOWN:
        ends = {int(data["src_dpid"]), int(data["dst_dpid"])}  # type: ignore[arg-type]
        state.links = [l for l in state.links if set(l) != ends]
        # The dead link's ports stop carrying traffic; drop their load
        # readings (older recordings may lack the port fields).
        for dpid_key, port_key in (("src_dpid", "src_port"),
                                   ("dst_dpid", "dst_port")):
            if port_key in data:
                state.link_loads.pop(
                    (int(data[dpid_key]), int(data[port_key])),  # type: ignore[arg-type]
                    None,
                )
    elif event.kind == EventKind.HOST_JOIN:
        mac = str(data["mac"])
        existing = state.users.get(mac)
        if existing is None:
            state.users[mac] = UserView(
                mac=mac,
                ip=data.get("ip"),  # type: ignore[arg-type]
                dpid=int(data["dpid"]),  # type: ignore[arg-type]
                online=True,
            )
        else:
            # A returning user keeps their accumulated record
            # (applications, attacks, blocked) -- only presence and
            # attachment change.
            existing.online = True
            existing.ip = data.get("ip", existing.ip)  # type: ignore[assignment]
            existing.dpid = int(data["dpid"])  # type: ignore[arg-type]
    elif event.kind == EventKind.HOST_MOVE:
        mac = str(data["mac"])
        if mac in state.users:
            user = state.users[mac]
            user.dpid = int(data["dpid"])  # type: ignore[arg-type]
            user.online = True  # moving proves presence
    elif event.kind == EventKind.HOST_LEAVE:
        mac = str(data["mac"])
        if mac in state.users:
            state.users[mac].online = False
    elif event.kind == EventKind.ELEMENT_ONLINE:
        mac = str(data["mac"])
        state.elements[mac] = ElementView(
            mac=mac,
            service_type=str(data.get("service_type", "?")),
            dpid=int(data.get("dpid", 0)),  # type: ignore[arg-type]
            online=True,
        )
        state.users.pop(mac, None)  # elements are not users
    elif event.kind == EventKind.ELEMENT_LOAD:
        mac = str(data["mac"])
        if mac in state.elements:
            state.elements[mac].cpu = float(data.get("cpu", 0.0))  # type: ignore[arg-type]
            state.elements[mac].pps = float(data.get("pps", 0.0))  # type: ignore[arg-type]
    elif event.kind == EventKind.ELEMENT_OFFLINE:
        mac = str(data["mac"])
        if mac in state.elements:
            state.elements[mac].online = False
    elif event.kind == EventKind.PROTOCOL_IDENTIFIED:
        mac = str(data.get("user_mac", ""))
        app = str(data.get("application", "?"))
        if mac in state.users and app not in state.users[mac].applications:
            state.users[mac].applications.append(app)
    elif event.kind == EventKind.ATTACK_DETECTED:
        mac = str(data.get("user_mac", ""))
        if mac in state.users:
            state.users[mac].attacks += 1
        state.active_attacks.append(dict(data))
    elif event.kind == EventKind.FLOW_BLOCKED:
        mac = str(data.get("user_mac", ""))
        if mac in state.users:
            state.users[mac].blocked = True
    elif event.kind == EventKind.LINK_LOAD:
        key = (int(data["dpid"]), int(data["port"]))  # type: ignore[arg-type]
        state.link_loads[key] = float(data["utilization"])  # type: ignore[arg-type]


def render_snapshot(snapshot: Snapshot) -> str:
    """Text rendering of a snapshot (stands in for the Flash WebUI)."""
    lines = [
        f"=== LiveSec view @ t={snapshot.time:.2f}s ===",
        f"switches: {sorted(snapshot.switches)}"
        f"  logical full-mesh: {'yes' if snapshot.full_mesh() else 'NO'}",
    ]
    online = snapshot.online_users()
    lines.append(f"users online: {len(online)}")
    for user in sorted(online, key=lambda u: u.mac):
        apps = ",".join(user.applications) or "-"
        flags = []
        if user.attacks:
            flags.append(f"attacks={user.attacks}")
        if user.blocked:
            flags.append("BLOCKED")
        lines.append(
            f"  {user.mac} ip={user.ip or '?'} sw={user.dpid}"
            f" apps={apps} {' '.join(flags)}".rstrip()
        )
    offline = [u for u in snapshot.users.values() if not u.online]
    if offline:
        lines.append(f"users left: {sorted(u.mac for u in offline)}")
    lines.append(f"service elements: {len(snapshot.elements)}")
    for element in sorted(snapshot.elements.values(), key=lambda e: e.mac):
        status = "up" if element.online else "DOWN"
        lines.append(
            f"  {element.mac} type={element.service_type} sw={element.dpid}"
            f" cpu={element.cpu:.2f} pps={element.pps:.0f} [{status}]"
        )
    if snapshot.link_loads:
        hot = sorted(
            snapshot.link_loads.items(), key=lambda kv: -kv[1]
        )[:5]
        lines.append("hottest links:")
        for (dpid, port), load in hot:
            lines.append(f"  sw{dpid} port {port}: {load * 100:.1f}%")
    if snapshot.active_attacks:
        lines.append(f"attacks so far: {len(snapshot.active_attacks)}")
    return "\n".join(lines)
