"""Network visualization and history replay (Sections IV.D, V.B.4).

The paper's WebUI shows, live: the (full-mesh) logical topology, user
join/leave, link load, which user consumes which application service,
and where attacks happen -- and can replay history.  The Flash/LAMP
stack is replaced by an in-process monitoring component: it subscribes
to the global :class:`~repro.core.events.EventLog` (the "monitoring
component ... records it to the database"), maintains the live view,
and reconstructs any past moment by replaying the ordered log.

:func:`render_snapshot` produces the text rendering used by the
examples and the Figure 7/8 benches.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.events import EventKind, EventLog, NetworkEvent


@dataclass
class UserView:
    """What the WebUI shows about one user."""

    mac: str
    ip: Optional[str]
    dpid: int
    online: bool = True
    applications: List[str] = field(default_factory=list)
    attacks: int = 0
    blocked: bool = False


@dataclass
class ElementView:
    """What the WebUI shows about one service element."""

    mac: str
    service_type: str
    dpid: int
    online: bool = True
    cpu: float = 0.0
    pps: float = 0.0


@dataclass
class Snapshot:
    """The WebUI's world state at one moment."""

    time: float
    switches: List[int] = field(default_factory=list)
    links: List[Tuple[int, int]] = field(default_factory=list)
    users: Dict[str, UserView] = field(default_factory=dict)
    elements: Dict[str, ElementView] = field(default_factory=dict)
    link_loads: Dict[Tuple[int, int], float] = field(default_factory=dict)
    active_attacks: List[dict] = field(default_factory=list)

    def online_users(self) -> List[UserView]:
        return [u for u in self.users.values() if u.online]

    def full_mesh(self) -> bool:
        dpids = self.switches
        if len(dpids) < 2:
            return True
        have = set(self.links)
        return all(
            (a, b) in have for a in dpids for b in dpids if a != b
        )


class MonitoringComponent:
    """Event-sourced live view + history replay."""

    def __init__(self, log: EventLog):
        self.log = log
        self._state = Snapshot(time=0.0)
        self.database: List[NetworkEvent] = []  # the "remote web server" DB
        log.subscribe(self._on_event)

    # ------------------------------------------------------------------
    # Live view

    def _on_event(self, event: NetworkEvent) -> None:
        self.database.append(event)
        _apply_event(self._state, event)

    def snapshot(self) -> Snapshot:
        """A deep copy of the current world state."""
        return copy.deepcopy(self._state)

    # ------------------------------------------------------------------
    # History replay

    def replay(self, until: Optional[float] = None) -> Snapshot:
        """Reconstruct the world state as of time ``until`` purely from
        the recorded event history."""
        state = Snapshot(time=0.0)
        for event in self.database:
            if until is not None and event.time > until:
                break
            _apply_event(state, event)
        if until is not None:
            state.time = until
        return state

    def replay_series(self, times: List[float]) -> Iterator[Snapshot]:
        """Snapshots at each requested time, replayed incrementally."""
        state = Snapshot(time=0.0)
        index = 0
        events = self.database
        for moment in times:
            while index < len(events) and events[index].time <= moment:
                _apply_event(state, events[index])
                index += 1
            state.time = moment
            yield copy.deepcopy(state)


def _apply_event(state: Snapshot, event: NetworkEvent) -> None:
    """The WebUI state machine: fold one event into the snapshot."""
    data = event.data
    state.time = event.time
    if event.kind == EventKind.SWITCH_JOIN:
        dpid = int(data["dpid"])  # type: ignore[arg-type]
        if dpid not in state.switches:
            state.switches.append(dpid)
    elif event.kind == EventKind.SWITCH_LEAVE:
        dpid = int(data["dpid"])  # type: ignore[arg-type]
        if dpid in state.switches:
            state.switches.remove(dpid)
        state.links = [l for l in state.links if dpid not in l]
    elif event.kind == EventKind.LINK_UP:
        pair = (int(data["src_dpid"]), int(data["dst_dpid"]))  # type: ignore[arg-type]
        if pair not in state.links:
            state.links.append(pair)
    elif event.kind == EventKind.LINK_DOWN:
        pair = (int(data["src_dpid"]), int(data["dst_dpid"]))  # type: ignore[arg-type]
        if pair in state.links:
            state.links.remove(pair)
    elif event.kind == EventKind.HOST_JOIN:
        mac = str(data["mac"])
        state.users[mac] = UserView(
            mac=mac,
            ip=data.get("ip"),  # type: ignore[arg-type]
            dpid=int(data["dpid"]),  # type: ignore[arg-type]
            online=True,
        )
    elif event.kind == EventKind.HOST_MOVE:
        mac = str(data["mac"])
        if mac in state.users:
            state.users[mac].dpid = int(data["dpid"])  # type: ignore[arg-type]
    elif event.kind == EventKind.HOST_LEAVE:
        mac = str(data["mac"])
        if mac in state.users:
            state.users[mac].online = False
    elif event.kind == EventKind.ELEMENT_ONLINE:
        mac = str(data["mac"])
        state.elements[mac] = ElementView(
            mac=mac,
            service_type=str(data.get("service_type", "?")),
            dpid=int(data.get("dpid", 0)),  # type: ignore[arg-type]
            online=True,
        )
        state.users.pop(mac, None)  # elements are not users
    elif event.kind == EventKind.ELEMENT_LOAD:
        mac = str(data["mac"])
        if mac in state.elements:
            state.elements[mac].cpu = float(data.get("cpu", 0.0))  # type: ignore[arg-type]
            state.elements[mac].pps = float(data.get("pps", 0.0))  # type: ignore[arg-type]
    elif event.kind == EventKind.ELEMENT_OFFLINE:
        mac = str(data["mac"])
        if mac in state.elements:
            state.elements[mac].online = False
    elif event.kind == EventKind.PROTOCOL_IDENTIFIED:
        mac = str(data.get("user_mac", ""))
        app = str(data.get("application", "?"))
        if mac in state.users and app not in state.users[mac].applications:
            state.users[mac].applications.append(app)
    elif event.kind == EventKind.ATTACK_DETECTED:
        mac = str(data.get("user_mac", ""))
        if mac in state.users:
            state.users[mac].attacks += 1
        state.active_attacks.append(dict(data))
    elif event.kind == EventKind.FLOW_BLOCKED:
        mac = str(data.get("user_mac", ""))
        if mac in state.users:
            state.users[mac].blocked = True
    elif event.kind == EventKind.LINK_LOAD:
        key = (int(data["dpid"]), int(data["port"]))  # type: ignore[arg-type]
        state.link_loads[key] = float(data["utilization"])  # type: ignore[arg-type]


def render_snapshot(snapshot: Snapshot) -> str:
    """Text rendering of a snapshot (stands in for the Flash WebUI)."""
    lines = [
        f"=== LiveSec view @ t={snapshot.time:.2f}s ===",
        f"switches: {sorted(snapshot.switches)}"
        f"  logical full-mesh: {'yes' if snapshot.full_mesh() else 'NO'}",
    ]
    online = snapshot.online_users()
    lines.append(f"users online: {len(online)}")
    for user in sorted(online, key=lambda u: u.mac):
        apps = ",".join(user.applications) or "-"
        flags = []
        if user.attacks:
            flags.append(f"attacks={user.attacks}")
        if user.blocked:
            flags.append("BLOCKED")
        lines.append(
            f"  {user.mac} ip={user.ip or '?'} sw={user.dpid}"
            f" apps={apps} {' '.join(flags)}".rstrip()
        )
    offline = [u for u in snapshot.users.values() if not u.online]
    if offline:
        lines.append(f"users left: {sorted(u.mac for u in offline)}")
    lines.append(f"service elements: {len(snapshot.elements)}")
    for element in sorted(snapshot.elements.values(), key=lambda e: e.mac):
        status = "up" if element.online else "DOWN"
        lines.append(
            f"  {element.mac} type={element.service_type} sw={element.dpid}"
            f" cpu={element.cpu:.2f} pps={element.pps:.0f} [{status}]"
        )
    if snapshot.link_loads:
        hot = sorted(
            snapshot.link_loads.items(), key=lambda kv: -kv[1]
        )[:5]
        lines.append("hottest links:")
        for (dpid, port), load in hot:
            lines.append(f"  sw{dpid} port {port}: {load * 100:.1f}%")
    if snapshot.active_attacks:
        lines.append(f"attacks so far: {len(snapshot.active_attacks)}")
    return "\n".join(lines)
