"""End-to-end routing and service-element traversal (III.C.3, IV.A).

The Access-Switching layer is a logical full mesh, so any end-to-end
delivery is "abstract two-hop routing": one flow entry at the ingress
AS switch and one at the egress AS switch.  Steering a flow through an
off-path service element composes the same primitive twice with a
destination-MAC rewrite, producing exactly the four entries the paper
enumerates in Section IV.A:

  i)   ingress switch: match the original 9-tuple at the user port,
       rewrite dl_dst to the element's MAC, forward to the uplink;
  ii)  element's switch: match the rewritten flow arriving on the
       uplink, forward to the element's port;
  iii) element's switch: match the same rewritten flow arriving *from
       the element's port*, restore dl_dst to the real target (and
       relabel dl_src as the element, keeping the legacy fabric's MAC
       learning truthful about where frames are emitted), forward to
       the uplink;
  iv)  egress switch: match that flow on the uplink, restore the
       original dl_src, forward to the target's port.

:func:`compute_path_rules` generalizes this to any number of chained
waypoints and to hosts/elements sharing a switch.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

from repro.core.nib import HostRecord, NetworkInformationBase
from repro.net.packet import FlowNineTuple
from repro.openflow.actions import Action, Output, SetDlDst, SetDlSrc
from repro.openflow.match import Match

FORWARD_PRIORITY = 100
DROP_PRIORITY = 200
DEFAULT_IDLE_TIMEOUT_S = 5.0


class RoutingError(Exception):
    """Raised when the NIB lacks the information to route a flow."""


@dataclass(frozen=True)
class RuleSpec:
    """A flow entry to install on one datapath."""

    dpid: int
    match: Match
    actions: Tuple[Action, ...]
    priority: int = FORWARD_PRIORITY
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT_S
    hard_timeout: float = 0.0
    cookie: int = 0
    send_flow_removed: bool = False

    def describe(self) -> str:
        acts = ",".join(str(a) for a in self.actions) or "drop"
        return f"dpid={self.dpid} {self.match} -> {acts}"


def compute_path_rules(
    nib: NetworkInformationBase,
    flow: FlowNineTuple,
    src: HostRecord,
    dst: HostRecord,
    waypoints: Sequence[HostRecord] = (),
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT_S,
    cookie: int = 0,
) -> List[RuleSpec]:
    """Flow entries realizing src -> waypoints... -> dst for ``flow``.

    ``flow.dl_dst`` must be the real destination MAC (what the source
    host put on the wire after ARP resolution).  The first returned
    rule is always the ingress rule (it carries ``send_flow_removed``
    so the controller learns when the session ends).

    Raises :class:`RoutingError` when an uplink port is not yet known
    (LLDP discovery has not confirmed the switch's logical links).
    """
    path: List[HostRecord] = [src, *waypoints, dst]
    rules: List[RuleSpec] = []
    # Labels the frame carries when it leaves each path node.  dl_dst:
    # the real destination until the ingress rewrite, then each
    # waypoint's MAC, then the real destination again.  dl_src: the
    # real source on the first leg, then -- for legs that cross the
    # legacy fabric -- the *emitting waypoint's* MAC.  The source
    # rewrite is load-bearing: the fabric's MAC learning tracks source
    # addresses, and a frame leaving the element's switch with the
    # original host's source MAC would teach the fabric that the host
    # lives behind the element's switch, blackholing replies.  With
    # the rewrite, every fabric-crossing frame's source matches the
    # switch it is emitted from; the egress switch restores the
    # original source before final delivery.
    arrival_dst = flow.dl_dst
    arrival_src = flow.dl_src

    for index in range(len(path) - 1):
        node = path[index]
        nxt = path[index + 1]
        is_last_hop = index == len(path) - 2
        next_dst = dst.mac if is_last_hop else nxt.mac

        hop_flow = flow._replace(dl_dst=arrival_dst, dl_src=arrival_src)
        same_switch = node.dpid == nxt.dpid

        if same_switch:
            # Local hand-off: no fabric involved, no src rewrite
            # needed; restore the original source when delivering to
            # the final host after an earlier rewrite.
            rewrite: Tuple[Action, ...] = ()
            if next_dst != arrival_dst:
                rewrite += (SetDlDst(next_dst),)
            if is_last_hop and arrival_src != flow.dl_src:
                rewrite += (SetDlSrc(flow.dl_src),)
            rules.append(
                RuleSpec(
                    dpid=node.dpid,
                    match=Match.from_nine_tuple(hop_flow, in_port=node.port),
                    actions=rewrite + (Output(nxt.port),),
                    idle_timeout=idle_timeout,
                    cookie=cookie,
                )
            )
            if not is_last_hop:
                arrival_dst = next_dst
                # arrival_src unchanged: local hop, no rewrite.
            continue

        out_uplink = nib.uplink_port(node.dpid)
        in_uplink = nib.uplink_port(nxt.dpid)
        if out_uplink is None or in_uplink is None:
            raise RoutingError(
                f"uplink unknown for dpid {node.dpid} or {nxt.dpid}"
                " (topology discovery incomplete)"
            )
        # Source label on the wire for this leg: the emitting node's
        # own MAC when it is a waypoint (index > 0), else the host's.
        leg_src = node.mac if index > 0 else flow.dl_src
        rewrite = ()
        if leg_src != arrival_src:
            rewrite += (SetDlSrc(leg_src),)
        if next_dst != arrival_dst:
            rewrite += (SetDlDst(next_dst),)
        rules.append(
            RuleSpec(
                dpid=node.dpid,
                match=Match.from_nine_tuple(hop_flow, in_port=node.port),
                actions=rewrite + (Output(out_uplink),),
                idle_timeout=idle_timeout,
                cookie=cookie,
            )
        )
        at_next_actions: Tuple[Action, ...] = ()
        if is_last_hop and leg_src != flow.dl_src:
            at_next_actions += (SetDlSrc(flow.dl_src),)
        rules.append(
            RuleSpec(
                dpid=nxt.dpid,
                match=Match.from_nine_tuple(
                    flow._replace(dl_dst=next_dst, dl_src=leg_src),
                    in_port=in_uplink,
                ),
                actions=at_next_actions + (Output(nxt.port),),
                idle_timeout=idle_timeout,
                cookie=cookie,
            )
        )
        arrival_dst = next_dst
        arrival_src = leg_src

    if not rules:
        raise RoutingError("empty path")
    first = rules[0]
    rules[0] = replace(first, send_flow_removed=True)
    return rules


class PathRuleCache:
    """LRU memo for :func:`compute_path_rules`.

    Session setup is the controller's hot path, and the rules it
    computes are a pure function of the flow identity, the *locations*
    of the endpoints and waypoints, and the NIB's uplink-port mapping.
    The first three are the cache key (locations are snapshotted as
    ``(mac, dpid, port)``, so a host that moves simply keys
    differently); the uplink mapping is the one hidden dependency, so
    the owner must :meth:`clear` on topology events (link discovered /
    timed out, switch left, uplinks lost) -- the steering app wires
    those, plus host-move and element-failover events for safety.

    Entries are cached cookie-free and re-cookied per session on hit,
    so one long-lived flow identity re-forming a session skips the
    whole path computation.
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 (got {max_entries})")
        self.max_entries = max_entries
        self._rules: "OrderedDict[tuple, Tuple[RuleSpec, ...]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._rules)

    @staticmethod
    def _location(record: HostRecord) -> Tuple[str, int, int]:
        return (record.mac, record.dpid, record.port)

    def path_rules(
        self,
        nib: NetworkInformationBase,
        flow: FlowNineTuple,
        src: HostRecord,
        dst: HostRecord,
        waypoints: Sequence[HostRecord] = (),
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT_S,
        cookie: int = 0,
    ) -> List[RuleSpec]:
        """Memoized :func:`compute_path_rules` (same signature/result)."""
        key = (
            flow,
            self._location(src),
            self._location(dst),
            tuple(self._location(w) for w in waypoints),
            idle_timeout,
        )
        cached = self._rules.get(key)
        if cached is None:
            self.misses += 1
            cached = tuple(compute_path_rules(
                nib, flow, src, dst, waypoints,
                idle_timeout=idle_timeout, cookie=0,
            ))
            self._rules[key] = cached
            if len(self._rules) > self.max_entries:
                self._rules.popitem(last=False)
        else:
            self.hits += 1
            self._rules.move_to_end(key)
        if cookie == 0:
            return list(cached)
        return [replace(rule, cookie=cookie) for rule in cached]

    def clear(self) -> None:
        """Drop every cached path (topology/location facts changed)."""
        if self._rules:
            self.invalidations += 1
            self._rules.clear()


def drop_rule(
    flow: FlowNineTuple,
    ingress: HostRecord,
    hard_timeout: float = 0.0,
    cookie: int = 0,
) -> RuleSpec:
    """A drop entry blocking ``flow`` at its ingress switch.

    Section IV.A: after an attack report "LiveSec controller will then
    modify relevant flow entries with the drop action in the ingress
    AS switch, to block this flow at the entrance."
    """
    return RuleSpec(
        dpid=ingress.dpid,
        match=Match.from_nine_tuple(flow, in_port=ingress.port),
        actions=(),
        priority=DROP_PRIORITY,
        idle_timeout=0.0,
        hard_timeout=hard_timeout,
        cookie=cookie,
    )


def source_block_rule(
    src_mac: str,
    ingress: HostRecord,
    cookie: int = 0,
) -> RuleSpec:
    """Drop *everything* a host sends (used for uncertified elements and
    quarantined users): wildcard match on the source MAC at its port."""
    return RuleSpec(
        dpid=ingress.dpid,
        match=Match(in_port=ingress.port, dl_src=src_mac),
        actions=(),
        priority=DROP_PRIORITY + 10,
        idle_timeout=0.0,
        cookie=cookie,
    )
