"""Network Information Base: the controller's global state.

Section I: "LiveSec employs a global controller to obtain the entire
network information, e.g. network logical topology and Network
Information Base (NIB)".  The NIB unifies the paper's *routing table*
(host locations learned from ARP, Section III.C.2) and *link table*
(logical port mapping between AS switches, learned from LLDP and
bidirectional ARP), plus the switch inventory.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

DEFAULT_HOST_TIMEOUT_S = 120.0


@dataclass
class HostRecord:
    """The routing-table row for one discovered host.

    ``dpid``/``port`` give the AS switch and Network-Periphery port the
    host is attached to -- the paper's ``src-sw`` and ``src-sw-inport``.
    """

    mac: str
    ip: Optional[str]
    dpid: int
    port: int
    first_seen: float
    last_seen: float
    is_element: bool = False


@dataclass
class LogicalLink:
    """The link-table row between two AS switches.

    ``src_port`` is the paper's ``src-sw-outport`` (the Legacy-Switching
    port of the source switch); ``dst_port`` is ``dst-sw-inport``.
    """

    src_dpid: int
    src_port: int
    dst_dpid: int
    dst_port: int
    last_seen: float


@dataclass
class SwitchRecord:
    """One connected AS switch or OF Wi-Fi AP."""

    dpid: int
    name: str
    ports: Tuple[int, ...]
    joined_at: float


class NetworkInformationBase:
    """Unified, queryable view of switches, hosts and logical links."""

    def __init__(self, host_timeout_s: float = DEFAULT_HOST_TIMEOUT_S):
        self.host_timeout_s = host_timeout_s
        self.hosts: Dict[str, HostRecord] = {}  # keyed by MAC
        self._hosts_by_ip: Dict[str, str] = {}  # ip -> mac
        self.links: Dict[Tuple[int, int], LogicalLink] = {}
        self.switches: Dict[int, SwitchRecord] = {}
        self._uplink_ports: Dict[int, set] = {}

    # ------------------------------------------------------------------
    # Switches

    def add_switch(self, dpid: int, name: str, ports: Tuple[int, ...],
                   now: float) -> SwitchRecord:
        record = SwitchRecord(dpid=dpid, name=name, ports=ports, joined_at=now)
        self.switches[dpid] = record
        return record

    def remove_switch(self, dpid: int) -> None:
        self.switches.pop(dpid, None)
        for key in [k for k in self.links if dpid in k]:
            del self.links[key]
        self._recompute_uplinks()
        for mac in [m for m, h in self.hosts.items() if h.dpid == dpid]:
            self.remove_host(mac)

    # ------------------------------------------------------------------
    # Hosts (the routing table)

    def learn_host(
        self,
        mac: str,
        ip: Optional[str],
        dpid: int,
        port: int,
        now: float,
        is_element: bool = False,
    ) -> Tuple[HostRecord, bool]:
        """Record or refresh a host location.

        Returns ``(record, is_new)`` where ``is_new`` is also True for
        a host that moved to a different switch/port (VM migration,
        Section III.D.1).
        """
        existing = self.hosts.get(mac)
        moved = existing is not None and (
            existing.dpid != dpid or existing.port != port
        )
        if existing is None or moved:
            record = HostRecord(
                mac=mac,
                ip=ip or (existing.ip if existing else None),
                dpid=dpid,
                port=port,
                first_seen=existing.first_seen if existing else now,
                last_seen=now,
                is_element=is_element or (existing.is_element if existing else False),
            )
            self.hosts[mac] = record
            if record.ip:
                self._hosts_by_ip[record.ip] = mac
            return record, True
        existing.last_seen = now
        if ip:
            existing.ip = ip
            self._hosts_by_ip[ip] = mac
        if is_element:
            existing.is_element = True
        return existing, False

    def remove_host(self, mac: str) -> Optional[HostRecord]:
        record = self.hosts.pop(mac, None)
        if record is not None and record.ip:
            self._hosts_by_ip.pop(record.ip, None)
        return record

    def host_by_mac(self, mac: str) -> Optional[HostRecord]:
        return self.hosts.get(mac)

    def host_by_ip(self, ip: str) -> Optional[HostRecord]:
        mac = self._hosts_by_ip.get(ip)
        return self.hosts.get(mac) if mac else None

    def expire_hosts(self, now: float) -> List[HostRecord]:
        """Drop hosts not heard from within the timeout (the paper's
        'removed from the routing table due to ARP packet timeout')."""
        stale = [
            record for record in self.hosts.values()
            if now - record.last_seen > self.host_timeout_s
        ]
        for record in stale:
            self.remove_host(record.mac)
        return stale

    # ------------------------------------------------------------------
    # Links (the link table)

    def learn_link(self, src_dpid: int, src_port: int, dst_dpid: int,
                   dst_port: int, now: float) -> LogicalLink:
        link = LogicalLink(src_dpid, src_port, dst_dpid, dst_port, now)
        existing = self.links.get((src_dpid, dst_dpid))
        # Dual-homed pairs are seen through several port pairs; keep
        # the lowest pair as the canonical mapping for determinism.
        if existing is None or (src_port, dst_port) <= (
            existing.src_port, existing.dst_port
        ):
            self.links[(src_dpid, dst_dpid)] = link
        else:
            existing.last_seen = now
        # Remember *every* Legacy-Switching port so periphery
        # classification never mistakes a redundant uplink for a host
        # port.
        self._uplink_ports.setdefault(src_dpid, set()).add(src_port)
        self._uplink_ports.setdefault(dst_dpid, set()).add(dst_port)
        return link

    def rebuild_links(self, confirmed_links, now: float) -> None:
        """Replace the link table with what discovery still confirms.

        ``confirmed_links`` is an iterable of objects with
        ``src_dpid/src_port/dst_dpid/dst_port`` attributes.
        """
        self.links = {}
        self._uplink_ports = {}
        for link in confirmed_links:
            self.learn_link(
                link.src_dpid, link.src_port, link.dst_dpid, link.dst_port, now
            )

    def remove_link(self, src_dpid: int, dst_dpid: int) -> None:
        self.links.pop((src_dpid, dst_dpid), None)
        self._recompute_uplinks()

    def _recompute_uplinks(self) -> None:
        self._uplink_ports = {}
        for link in self.links.values():
            self._uplink_ports.setdefault(link.src_dpid, set()).add(link.src_port)
            self._uplink_ports.setdefault(link.dst_dpid, set()).add(link.dst_port)

    def link(self, src_dpid: int, dst_dpid: int) -> Optional[LogicalLink]:
        return self.links.get((src_dpid, dst_dpid))

    def uplink_ports(self, dpid: int) -> frozenset:
        """Every Legacy-Switching port of a switch seen in the link
        table (a dual-homed switch has more than one)."""
        return frozenset(self._uplink_ports.get(dpid, ()))

    def uplink_port(self, dpid: int) -> Optional[int]:
        """The *primary* Legacy-Switching port of a switch: the lowest
        numbered uplink, used consistently for announcements, egress
        matches and uplink outputs so the legacy fabric's MAC learning
        and our flow matches agree on one path."""
        ports = self._uplink_ports.get(dpid)
        if not ports:
            return None
        return min(ports)

    def is_full_mesh(self) -> bool:
        """Whether every pair of known switches has a discovered link
        in both directions (the paper's full-mesh logical topology)."""
        dpids = list(self.switches)
        if len(dpids) < 2:
            return True
        return all(
            (a, b) in self.links
            for a in dpids
            for b in dpids
            if a != b
        )

    # ------------------------------------------------------------------
    # Replication digest (the shard fabric's NIB exchange unit)

    def location_entries(
        self, dpids: Optional[Iterable[int]] = None
    ) -> List[Tuple[str, Optional[str], int, int, bool]]:
        """The host-location rows as canonical sorted tuples, optionally
        restricted to hosts homed on the given datapaths."""
        wanted = None if dpids is None else set(dpids)
        rows = [
            (h.mac, h.ip, h.dpid, h.port, h.is_element)
            for h in self.hosts.values()
            if wanted is None or h.dpid in wanted
        ]
        rows.sort()
        return rows

    def location_digest(self, dpids: Optional[Iterable[int]] = None) -> str:
        """sha256 over the canonical location rows.  Two NIBs agree on
        a dpid set exactly when their digests match -- this is what
        shards exchange every sync round instead of full tables."""
        digest = hashlib.sha256()
        for mac, ip, dpid, port, is_element in self.location_entries(dpids):
            digest.update(
                f"{mac} {ip} {dpid} {port} {int(is_element)}\n".encode()
            )
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Views

    def user_hosts(self) -> Iterable[HostRecord]:
        return [h for h in self.hosts.values() if not h.is_element]

    def element_hosts(self) -> Iterable[HostRecord]:
        return [h for h in self.hosts.values() if h.is_element]

    def summary(self) -> dict:
        return {
            "switches": len(self.switches),
            "links": len(self.links),
            "hosts": len(self.hosts),
            "elements": sum(1 for h in self.hosts.values() if h.is_element),
            "full_mesh": self.is_full_mesh(),
        }
