"""One-call assembly of a complete LiveSec network.

:func:`build_livesec_network` wires a physical topology, the LiveSec
controller with its secure channels, and a fleet of provisioned
service elements into a ready-to-run :class:`LiveSecNetwork`.  This is
the programmatic equivalent of the paper's Section V.A deployment
procedure and the entry point every example and benchmark uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.conntrack import ConnTrackReplicationGroup
from repro.core.controller import LiveSecController
from repro.core.policy import PolicyTable
from repro.core.policy_io import load_policies
from repro.core.visualization import MonitoringComponent
from repro.elements import ELEMENT_TYPES
from repro.elements.base import ServiceElement
from repro.net.host import Host
from repro.net.node import connect
from repro.net.simulator import Simulator
from repro.net.topologies import Topology, fit_building, linear, star
from repro.openflow.channel import SecureChannel
from repro.openflow.switch import OpenFlowSwitch

DEFAULT_WARMUP_S = 1.5
ELEMENT_LINK_BPS = 1e9  # VM virtio into the local OvS


@dataclass
class LiveSecNetwork:
    """A running LiveSec deployment: substrate + controller + elements."""

    sim: Simulator
    topology: Topology
    controller: LiveSecController
    monitoring: MonitoringComponent
    elements: List[ServiceElement] = field(default_factory=list)
    channels: Dict[int, SecureChannel] = field(default_factory=dict)
    # Per-service-type conntrack replication groups: every stateful
    # firewall of one type shares session state with its replicas.
    conntrack_groups: Dict[str, ConnTrackReplicationGroup] = field(
        default_factory=dict
    )
    started: bool = False

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self, warmup_s: float = DEFAULT_WARMUP_S) -> None:
        """Run topology discovery to convergence, then bring hosts up.

        After ``start()`` returns, the controller's NIB holds the
        full-mesh logical topology and every host/element location, so
        first packets route immediately.
        """
        if self.started:
            raise RuntimeError("already started")
        self.started = True
        # Phase 1: LLDP discovery over the AS layer.
        self.sim.run(until=self.sim.now + warmup_s)
        # Phase 2: announce elements (their daemons have been reporting
        # already; re-announce so the legacy fabric learns their MACs
        # now that uplinks are known), then hosts.
        self.controller.refresh_announcements()
        for host in self.topology.hosts:
            host.announce()
        self.sim.run(until=self.sim.now + 0.5)

    def run(self, duration_s: float) -> None:
        """Advance the simulation by ``duration_s`` seconds."""
        self.sim.run(until=self.sim.now + duration_s)

    # ------------------------------------------------------------------
    # Element management

    def add_element(
        self,
        element_type: str,
        switch: OpenFlowSwitch,
        name: Optional[str] = None,
        **element_kwargs,
    ) -> ServiceElement:
        """Create, wire, and provision one VM-based service element."""
        try:
            factory = ELEMENT_TYPES[element_type]
        except KeyError:
            raise ValueError(
                f"unknown element type {element_type!r};"
                f" choose from {sorted(ELEMENT_TYPES)}"
            ) from None
        mac, ip = self.topology.allocator.host_addresses()
        if name is None:
            name = f"{element_type}-{len(self.elements) + 1}"
        element = factory(self.sim, name, mac, ip, **element_kwargs)
        switch_port = switch.next_free_port().number
        connect(
            self.sim, switch, element,
            bandwidth_bps=ELEMENT_LINK_BPS,
            delay_s=5e-6,
            port_a=switch_port,
            port_b=element.next_free_port().number,
        )
        element.provision(self.controller.registry.issue_certificate(mac))
        if hasattr(element, "join_replication_group"):
            group = self.conntrack_groups.get(element.service_type)
            if group is None:
                group = ConnTrackReplicationGroup(self.sim)
                self.conntrack_groups[element.service_type] = group
            element.join_replication_group(group)
        self.elements.append(element)
        self._register_capacity(switch)
        return element

    def elements_of_type(self, element_type: str) -> List[ServiceElement]:
        return [e for e in self.elements if e.service_type == element_type]

    # ------------------------------------------------------------------
    # Host/user management

    def add_user(self, name: str, switch, wireless: bool = False,
                 bandwidth_bps: float = 100e6) -> Host:
        """Attach a new user host at runtime (it must ``announce()``)."""
        host = self.topology.add_host(
            name, switch, bandwidth_bps=bandwidth_bps, wireless=wireless
        )
        return host

    def host(self, name: str) -> Host:
        return self.topology.host_by_name(name)

    @property
    def gateway(self) -> Host:
        gw = self.topology.gateway
        if gw is None:
            raise RuntimeError("topology has no gateway")
        return gw

    # ------------------------------------------------------------------
    # Internals

    def _connect_channels(self, control_latency_s: float) -> None:
        from repro.openflow.pathproof import derive_switch_secret

        for switch in self.topology.all_openflow_switches():
            channel = SecureChannel(
                self.sim, switch, self.controller, latency_s=control_latency_s
            )
            channel.connect()
            # Per-switch path-proof keys derive from the deployment
            # secret, so a non-default controller secret still verifies.
            switch.path_secret = derive_switch_secret(
                self.controller.secret, switch.dpid
            )
            self.channels[switch.dpid] = channel
            switch.attach_metrics(self.controller.metrics)
            self._register_capacity(switch)

    def _register_capacity(self, switch) -> None:
        for number, port in switch.ports.items():
            if port.link is not None:
                self.controller.register_port_capacity(
                    switch.dpid, number, port.link.bandwidth_bps
                )

    # ------------------------------------------------------------------
    # Policy lifecycle

    def check_policies(self, source):
        """Compile + verify a policy document against this deployment's
        service directory without touching the live table."""
        return self.controller.check_policies(source)

    def reload_policies(self, source):
        """Hot-swap the controller's policy table from a file/document.

        Verified compile, atomic swap, established sessions preserved;
        a rejected document raises and the running table keeps serving.
        """
        return self.controller.reload_policies(source)

    def status(self):
        """Controller overview (a :class:`ControllerStatus`; indexes
        like the historical dict)."""
        return self.controller.status()

    def metrics_snapshot(self):
        """The deployment-wide observability snapshot."""
        return self.controller.metrics.snapshot()


_TOPOLOGY_BUILDERS = {
    "linear": linear,
    "star": star,
    "fit": fit_building,
}


def build_livesec_network(
    topology: str = "linear",
    policies: Optional[PolicyTable] = None,
    policy_file: Optional[str] = None,
    dispatcher: str = "minload",
    elements: Sequence[Tuple[str, int]] = (),
    control_latency_s: float = 0.5e-3,
    idle_timeout_s: float = 5.0,
    host_timeout_s: float = 120.0,
    stats_interval_s: Optional[float] = 1.0,
    on_no_element: str = "allow",
    element_timeout_s: Optional[float] = None,
    install_batching: bool = True,
    event_retention: Optional[int] = None,
    accountability: bool = False,
    sim: Optional[Simulator] = None,
    **topology_kwargs,
) -> LiveSecNetwork:
    """Build (but do not start) a LiveSec deployment.

    ``topology`` is ``'linear' | 'star' | 'fit'`` (kwargs forwarded to
    the builder in :mod:`repro.net.topologies`).  ``elements`` lists
    ``(element_type, count)`` pairs distributed round-robin over the
    AS switches -- e.g. the paper-scale fleet is
    ``[("ids", 160), ("l7", 40)]`` on the ``'fit'`` topology.
    ``policy_file`` loads (and conflict-verifies) a v1/v2 policy
    document instead of passing a prebuilt ``policies`` table.

    Call :meth:`LiveSecNetwork.start` before sending traffic.
    """
    if sim is None:
        sim = Simulator()
    if policy_file is not None:
        if policies is not None:
            raise ValueError("pass either policies or policy_file, not both")
        # Deployment config loads run verified: a conflicting file must
        # fail the build, not silently serve insertion-order semantics.
        policies = load_policies(policy_file, verify=True)
    try:
        builder = _TOPOLOGY_BUILDERS[topology]
    except KeyError:
        raise ValueError(
            f"unknown topology {topology!r}; choose from"
            f" {sorted(_TOPOLOGY_BUILDERS)}"
        ) from None
    topo = builder(sim, **topology_kwargs)
    controller = LiveSecController(
        sim,
        policies=policies,
        dispatcher=dispatcher,
        idle_timeout_s=idle_timeout_s,
        host_timeout_s=host_timeout_s,
        stats_interval_s=stats_interval_s,
        on_no_element=on_no_element,
        element_timeout_s=element_timeout_s,
        install_batching=install_batching,
        event_retention=event_retention,
        accountability=accountability,
    )
    monitoring = MonitoringComponent(controller.log)
    network = LiveSecNetwork(
        sim=sim, topology=topo, controller=controller, monitoring=monitoring
    )
    network._connect_channels(control_latency_s)
    for element_type, count in elements:
        for index in range(count):
            switch = topo.as_switches[index % len(topo.as_switches)]
            network.add_element(element_type, switch)
    return network
