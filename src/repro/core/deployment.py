"""One-call assembly of a complete LiveSec network.

:func:`build_livesec_network` wires a physical topology, the LiveSec
controller with its secure channels, and a fleet of provisioned
service elements into a ready-to-run :class:`LiveSecNetwork`.  This is
the programmatic equivalent of the paper's Section V.A deployment
procedure and the entry point every example and benchmark uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.conntrack import ConnTrackReplicationGroup
from repro.core.controller import LiveSecController
from repro.core.policy import PolicyTable
from repro.core.policy_io import load_policies
from repro.core.sharding import (
    SHARD_LIVENESS_TIMEOUT_S,
    SYNC_INTERVAL_S,
    ShardCoordinator,
    ShardMap,
    ShardMember,
    combined_digest,
)
from repro.core.visualization import MonitoringComponent
from repro.elements import ELEMENT_TYPES
from repro.elements.base import ServiceElement
from repro.net.fluid import FluidRegion
from repro.net.host import Host
from repro.net.node import connect
from repro.net.simulator import Simulator
from repro.net.topologies import Topology, fit_building, linear, star
from repro.openflow.channel import SecureChannel
from repro.openflow.switch import OpenFlowSwitch

DEFAULT_WARMUP_S = 1.5
ELEMENT_LINK_BPS = 1e9  # VM virtio into the local OvS


@dataclass
class LiveSecNetwork:
    """A running LiveSec deployment: substrate + controller + elements."""

    sim: Simulator
    topology: Topology
    controller: LiveSecController
    monitoring: MonitoringComponent
    elements: List[ServiceElement] = field(default_factory=list)
    channels: Dict[int, SecureChannel] = field(default_factory=dict)
    # Per-service-type conntrack replication groups: every stateful
    # firewall of one type shares session state with its replicas.
    conntrack_groups: Dict[str, ConnTrackReplicationGroup] = field(
        default_factory=dict
    )
    # The attached fast-forward region when built with ``fluid=True``.
    fluid: Optional[FluidRegion] = None
    started: bool = False

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self, warmup_s: float = DEFAULT_WARMUP_S) -> None:
        """Run topology discovery to convergence, then bring hosts up.

        After ``start()`` returns, the controller's NIB holds the
        full-mesh logical topology and every host/element location, so
        first packets route immediately.
        """
        if self.started:
            raise RuntimeError("already started")
        self.started = True
        # Phase 1: LLDP discovery over the AS layer.
        self.sim.run(until=self.sim.now + warmup_s)
        # Phase 2: announce elements (their daemons have been reporting
        # already; re-announce so the legacy fabric learns their MACs
        # now that uplinks are known), then hosts.
        self.controller.refresh_announcements()
        for host in self.topology.hosts:
            host.announce()
        self.sim.run(until=self.sim.now + 0.5)

    def run(self, duration_s: float) -> None:
        """Advance the simulation by ``duration_s`` seconds."""
        self.sim.run(until=self.sim.now + duration_s)

    # ------------------------------------------------------------------
    # Element management

    def add_element(
        self,
        element_type: str,
        switch: OpenFlowSwitch,
        name: Optional[str] = None,
        **element_kwargs,
    ) -> ServiceElement:
        """Create, wire, and provision one VM-based service element."""
        try:
            factory = ELEMENT_TYPES[element_type]
        except KeyError:
            raise ValueError(
                f"unknown element type {element_type!r};"
                f" choose from {sorted(ELEMENT_TYPES)}"
            ) from None
        mac, ip = self.topology.allocator.host_addresses()
        if name is None:
            name = f"{element_type}-{len(self.elements) + 1}"
        element = factory(self.sim, name, mac, ip, **element_kwargs)
        switch_port = switch.next_free_port().number
        connect(
            self.sim, switch, element,
            bandwidth_bps=ELEMENT_LINK_BPS,
            delay_s=5e-6,
            port_a=switch_port,
            port_b=element.next_free_port().number,
        )
        element.provision(self.controller.registry.issue_certificate(mac))
        if hasattr(element, "join_replication_group"):
            group = self.conntrack_groups.get(element.service_type)
            if group is None:
                group = ConnTrackReplicationGroup(self.sim)
                self.conntrack_groups[element.service_type] = group
            element.join_replication_group(group)
        self.elements.append(element)
        self._register_capacity(switch)
        return element

    def elements_of_type(self, element_type: str) -> List[ServiceElement]:
        return [e for e in self.elements if e.service_type == element_type]

    # ------------------------------------------------------------------
    # Host/user management

    def add_user(self, name: str, switch, wireless: bool = False,
                 bandwidth_bps: float = 100e6) -> Host:
        """Attach a new user host at runtime (it must ``announce()``)."""
        host = self.topology.add_host(
            name, switch, bandwidth_bps=bandwidth_bps, wireless=wireless
        )
        return host

    def host(self, name: str) -> Host:
        return self.topology.host_by_name(name)

    @property
    def gateway(self) -> Host:
        gw = self.topology.gateway
        if gw is None:
            raise RuntimeError("topology has no gateway")
        return gw

    # ------------------------------------------------------------------
    # Internals

    def _connect_channels(self, control_latency_s: float) -> None:
        from repro.openflow.pathproof import derive_switch_secret

        for switch in self.topology.all_openflow_switches():
            channel = SecureChannel(
                self.sim, switch, self.controller, latency_s=control_latency_s
            )
            channel.connect()
            # Per-switch path-proof keys derive from the deployment
            # secret, so a non-default controller secret still verifies.
            switch.path_secret = derive_switch_secret(
                self.controller.secret, switch.dpid
            )
            self.channels[switch.dpid] = channel
            switch.attach_metrics(self.controller.metrics)
            self._register_capacity(switch)

    def _register_capacity(self, switch) -> None:
        for number, port in switch.ports.items():
            if port.link is not None:
                self.controller.register_port_capacity(
                    switch.dpid, number, port.link.bandwidth_bps
                )

    # ------------------------------------------------------------------
    # Policy lifecycle

    def check_policies(self, source):
        """Compile + verify a policy document against this deployment's
        service directory without touching the live table."""
        return self.controller.check_policies(source)

    def reload_policies(self, source):
        """Hot-swap the controller's policy table from a file/document.

        Verified compile, atomic swap, established sessions preserved;
        a rejected document raises and the running table keeps serving.
        """
        return self.controller.reload_policies(source)

    def status(self):
        """Controller overview (a :class:`ControllerStatus`; indexes
        like the historical dict)."""
        return self.controller.status()

    def metrics_snapshot(self):
        """The deployment-wide observability snapshot."""
        return self.controller.metrics.snapshot()


@dataclass
class ShardedDeployment:
    """N controller shards over one physical network.

    The thin composition the shard fabric promises: every
    :class:`~repro.core.sharding.ShardMember` wraps a full
    ``LiveSecController`` (its own EventBus, apps, NIB, metrics, event
    log); the only shared objects are the simulator, the physical
    topology, and the :class:`~repro.core.sharding.ShardCoordinator`
    running the inter-shard protocol.
    """

    sim: Simulator
    topology: Topology
    shard_map: ShardMap
    coordinator: ShardCoordinator
    members: List[ShardMember] = field(default_factory=list)
    elements: List[ServiceElement] = field(default_factory=list)
    channels: Dict[int, SecureChannel] = field(default_factory=dict)
    # Conntrack replication is element-to-element and oblivious to
    # control-plane partitioning: one group per service type fabric-wide.
    conntrack_groups: Dict[str, ConnTrackReplicationGroup] = field(
        default_factory=dict
    )
    started: bool = False

    # ------------------------------------------------------------------
    # Shard views

    @property
    def controllers(self) -> List[LiveSecController]:
        return [member.controller for member in self.members]

    @property
    def controller(self) -> LiveSecController:
        """Shard 0's controller, for tooling that expects one."""
        return self.members[0].controller

    @property
    def metrics(self):
        """The fabric-level registry (per-shard registries live on each
        member's controller)."""
        return self.coordinator.metrics

    def member_of(self, dpid: int) -> ShardMember:
        """The member currently owning a datapath (tracks re-homing)."""
        member = self.coordinator.member(self.shard_map.owner(dpid))
        if member is None:
            raise KeyError(f"no shard member owns dpid {dpid}")
        return member

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self, warmup_s: float = DEFAULT_WARMUP_S) -> None:
        """Discovery warmup, then host bring-up -- every shard converges
        on its own slice plus the cross-shard links its LLDP punts
        reveal."""
        if self.started:
            raise RuntimeError("already started")
        self.started = True
        self.sim.run(until=self.sim.now + warmup_s)
        for member in self.members:
            member.controller.refresh_announcements()
        for host in self.topology.hosts:
            host.announce()
        self.sim.run(until=self.sim.now + 0.5)

    def run(self, duration_s: float) -> None:
        self.sim.run(until=self.sim.now + duration_s)

    # ------------------------------------------------------------------
    # Element management

    def add_element(
        self,
        element_type: str,
        switch: OpenFlowSwitch,
        name: Optional[str] = None,
        **element_kwargs,
    ) -> ServiceElement:
        """Create, wire, and provision one element on its owner shard."""
        try:
            factory = ELEMENT_TYPES[element_type]
        except KeyError:
            raise ValueError(
                f"unknown element type {element_type!r};"
                f" choose from {sorted(ELEMENT_TYPES)}"
            ) from None
        owner = self.member_of(switch.dpid).controller
        mac, ip = self.topology.allocator.host_addresses()
        if name is None:
            name = f"{element_type}-{len(self.elements) + 1}"
        element = factory(self.sim, name, mac, ip, **element_kwargs)
        switch_port = switch.next_free_port().number
        connect(
            self.sim, switch, element,
            bandwidth_bps=ELEMENT_LINK_BPS,
            delay_s=5e-6,
            port_a=switch_port,
            port_b=element.next_free_port().number,
        )
        element.provision(owner.registry.issue_certificate(mac))
        if hasattr(element, "join_replication_group"):
            group = self.conntrack_groups.get(element.service_type)
            if group is None:
                group = ConnTrackReplicationGroup(self.sim)
                self.conntrack_groups[element.service_type] = group
            element.join_replication_group(group)
        self.elements.append(element)
        self._register_capacity(switch, owner)
        return element

    def elements_of_type(self, element_type: str) -> List[ServiceElement]:
        return [e for e in self.elements if e.service_type == element_type]

    # ------------------------------------------------------------------
    # Host/user management

    def add_user(self, name: str, switch, wireless: bool = False,
                 bandwidth_bps: float = 100e6) -> Host:
        return self.topology.add_host(
            name, switch, bandwidth_bps=bandwidth_bps, wireless=wireless
        )

    def host(self, name: str) -> Host:
        return self.topology.host_by_name(name)

    @property
    def gateway(self) -> Host:
        gw = self.topology.gateway
        if gw is None:
            raise RuntimeError("topology has no gateway")
        return gw

    # ------------------------------------------------------------------
    # Internals

    def _connect_channels(self, control_latency_s: float) -> None:
        from repro.openflow.pathproof import derive_switch_secret

        for switch in self.topology.all_openflow_switches():
            owner = self.member_of(switch.dpid).controller
            channel = SecureChannel(
                self.sim, switch, owner, latency_s=control_latency_s
            )
            channel.connect()
            switch.path_secret = derive_switch_secret(
                owner.secret, switch.dpid
            )
            self.channels[switch.dpid] = channel
            switch.attach_metrics(owner.metrics)
            self._register_capacity(switch, owner)

    def _register_capacity(self, switch, controller=None) -> None:
        if controller is None:
            controller = self.member_of(switch.dpid).controller
        for number, port in switch.ports.items():
            if port.link is not None:
                controller.register_port_capacity(
                    switch.dpid, number, port.link.bandwidth_bps
                )

    # ------------------------------------------------------------------
    # Introspection

    def status(self) -> dict:
        return self.coordinator.status()

    def event_digest(self) -> str:
        """The determinism digest over every shard's log plus the
        coordinator's."""
        return combined_digest(self.members, self.coordinator)

    def total_sessions_created(self) -> int:
        return sum(c.sessions.created for c in self.controllers)


_TOPOLOGY_BUILDERS = {
    "linear": linear,
    "star": star,
    "fit": fit_building,
}


def build_livesec_network(
    topology: str = "linear",
    policies: Optional[PolicyTable] = None,
    policy_file: Optional[str] = None,
    dispatcher: str = "minload",
    elements: Sequence[Tuple[str, int]] = (),
    control_latency_s: float = 0.5e-3,
    idle_timeout_s: float = 5.0,
    host_timeout_s: float = 120.0,
    stats_interval_s: Optional[float] = 1.0,
    on_no_element: str = "allow",
    element_timeout_s: Optional[float] = None,
    install_batching: bool = True,
    event_retention: Optional[int] = None,
    accountability: bool = False,
    fluid: bool = False,
    fluid_config: Optional[dict] = None,
    sim: Optional[Simulator] = None,
    **topology_kwargs,
) -> LiveSecNetwork:
    """Build (but do not start) a LiveSec deployment.

    ``topology`` is ``'linear' | 'star' | 'fit'`` (kwargs forwarded to
    the builder in :mod:`repro.net.topologies`).  ``elements`` lists
    ``(element_type, count)`` pairs distributed round-robin over the
    AS switches -- e.g. the paper-scale fleet is
    ``[("ids", 160), ("l7", 40)]`` on the ``'fit'`` topology.
    ``policy_file`` loads (and conflict-verifies) a v1/v2 policy
    document instead of passing a prebuilt ``policies`` table.

    ``fluid=True`` attaches a :class:`~repro.net.fluid.FluidRegion`:
    steady CBR phases are fast-forwarded analytically while anything
    control-plane-visible stays at packet fidelity (``fluid_config``
    forwards kwargs such as ``max_utilization`` / ``congestion``).

    Call :meth:`LiveSecNetwork.start` before sending traffic.
    """
    if sim is None:
        sim = Simulator()
    if policy_file is not None:
        if policies is not None:
            raise ValueError("pass either policies or policy_file, not both")
        # Deployment config loads run verified: a conflicting file must
        # fail the build, not silently serve insertion-order semantics.
        policies = load_policies(policy_file, verify=True)
    try:
        builder = _TOPOLOGY_BUILDERS[topology]
    except KeyError:
        raise ValueError(
            f"unknown topology {topology!r}; choose from"
            f" {sorted(_TOPOLOGY_BUILDERS)}"
        ) from None
    topo = builder(sim, **topology_kwargs)
    controller = LiveSecController(
        sim,
        policies=policies,
        dispatcher=dispatcher,
        idle_timeout_s=idle_timeout_s,
        host_timeout_s=host_timeout_s,
        stats_interval_s=stats_interval_s,
        on_no_element=on_no_element,
        element_timeout_s=element_timeout_s,
        install_batching=install_batching,
        event_retention=event_retention,
        accountability=accountability,
    )
    monitoring = MonitoringComponent(controller.log)
    network = LiveSecNetwork(
        sim=sim, topology=topo, controller=controller, monitoring=monitoring
    )
    if fluid:
        region = FluidRegion(sim, **(fluid_config or {}))
        region.attach_metrics(controller.metrics)
        network.fluid = region
    network._connect_channels(control_latency_s)
    for element_type, count in elements:
        for index in range(count):
            switch = topo.as_switches[index % len(topo.as_switches)]
            network.add_element(element_type, switch)
    return network


def build_sharded_network(
    num_shards: int = 2,
    topology: str = "linear",
    policies=None,
    policy_file: Optional[str] = None,
    dispatcher: str = "minload",
    elements: Sequence[Tuple[str, int]] = (),
    control_latency_s: float = 0.5e-3,
    idle_timeout_s: float = 5.0,
    host_timeout_s: float = 120.0,
    stats_interval_s: Optional[float] = 1.0,
    on_no_element: str = "allow",
    element_timeout_s: Optional[float] = None,
    install_batching: bool = True,
    event_retention: Optional[int] = None,
    sync_interval_s: float = SYNC_INTERVAL_S,
    liveness_timeout_s: float = SHARD_LIVENESS_TIMEOUT_S,
    sim: Optional[Simulator] = None,
    **topology_kwargs,
) -> ShardedDeployment:
    """Build (but do not start) a sharded LiveSec deployment.

    ``topology`` is ``'linear' | 'star' | 'fit' | 'fattree'``; on the
    fat-tree with ``num_shards == k`` the partition is per-pod,
    everywhere else a balanced contiguous split of the dpid space.

    ``policies`` must be a zero-argument *factory* (each shard needs
    its own mutable table) unless ``num_shards == 1``; ``policy_file``
    is loaded once per shard instead.  Elements are distributed
    round-robin over the AS switches and provisioned by whichever
    shard owns their switch.
    """
    if num_shards < 1:
        raise ValueError(f"need at least one shard (got {num_shards})")
    if policy_file is not None and policies is not None:
        raise ValueError("pass either policies or policy_file, not both")
    if (policies is not None and not callable(policies)
            and num_shards > 1):
        raise ValueError(
            "with num_shards > 1, pass policies as a factory callable:"
            " each shard needs its own PolicyTable instance"
        )
    if sim is None:
        sim = Simulator()
    if topology == "fattree":
        from repro.net.fattree import fat_tree_topology

        topo = fat_tree_topology(sim, **topology_kwargs)
        k = topology_kwargs.get("k", 4)
        if num_shards == k:
            shard_map = ShardMap.per_pod(k)
        else:
            shard_map = ShardMap.contiguous(
                [s.dpid for s in topo.all_openflow_switches()], num_shards
            )
    else:
        try:
            builder = _TOPOLOGY_BUILDERS[topology]
        except KeyError:
            raise ValueError(
                f"unknown topology {topology!r}; choose from"
                f" {sorted(_TOPOLOGY_BUILDERS) + ['fattree']}"
            ) from None
        topo = builder(sim, **topology_kwargs)
        shard_map = ShardMap.contiguous(
            [s.dpid for s in topo.all_openflow_switches()], num_shards
        )

    coordinator = ShardCoordinator(
        sim, shard_map,
        sync_interval_s=sync_interval_s,
        liveness_timeout_s=liveness_timeout_s,
        control_latency_s=control_latency_s,
    )
    members: List[ShardMember] = []
    for shard_id in range(num_shards):
        if policies is None:
            table = None
        elif callable(policies):
            table = policies()
        else:
            table = policies
        if policy_file is not None:
            table = load_policies(policy_file, verify=True)
        controller = LiveSecController(
            sim,
            policies=table,
            dispatcher=dispatcher,
            idle_timeout_s=idle_timeout_s,
            host_timeout_s=host_timeout_s,
            stats_interval_s=stats_interval_s,
            on_no_element=on_no_element,
            element_timeout_s=element_timeout_s,
            install_batching=install_batching,
            event_retention=event_retention,
        )
        # Stride the id space so shard i of N mints ids i+1, i+1+N, ...
        # -- globally unique without coordination, handoff-safe.
        controller.sessions.reseed(shard_id + 1, num_shards)
        members.append(ShardMember(shard_id, controller, coordinator))

    network = ShardedDeployment(
        sim=sim, topology=topo, shard_map=shard_map,
        coordinator=coordinator, members=members,
    )
    network._connect_channels(control_latency_s)
    coordinator.attach_physical(
        switches={s.dpid: s for s in topo.all_openflow_switches()},
        channels=network.channels,
        register_capacity=network._register_capacity,
    )
    for element_type, count in elements:
        for index in range(count):
            switch = topo.as_switches[index % len(topo.as_switches)]
            network.add_element(element_type, switch)
    if topo.gateway is not None:
        attachment = topo.attachments[topo.gateway.name]
        coordinator.publish_host(
            topo.gateway.mac, topo.gateway.ip,
            attachment.switch.dpid, attachment.switch_port,
        )
    coordinator.start()
    return network
