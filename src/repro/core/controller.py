"""The LiveSec controller: a composition root over NOX-style apps.

The paper's monolithic controller is decomposed into six apps, each
owning one concern, coordinated over a deterministic in-process event
bus (:mod:`repro.core.bus`) with the NIB and its sibling tables as the
shared-state surface:

* :class:`~repro.core.apps.host_tracker.HostTrackerApp` -- location
  discovery from ARP (Section III.C.2), the directory proxy answering
  ARP/DHCP without fabric broadcast, host expiry, announcements,
* :class:`~repro.core.apps.topology.TopologyApp` -- switch membership
  and the logical link mesh (III.C.1),
* :class:`~repro.core.apps.service_directory.ServiceDirectoryApp` --
  the in-band service-element channel with certification (III.D.1),
* :class:`~repro.core.apps.policy_engine.PolicyEngineApp` -- the
  global policy table resolved into per-flow decisions (IV.A),
* :class:`~repro.core.apps.steering.SteeringApp` -- interactive
  enforcement: session setup over the logical full mesh (III.C.3),
  element steering, ingress blocking, failover, teardown,
* :class:`~repro.core.apps.monitor.MonitorApp` -- port-stats polling
  and flow-stats fan-out for the monitoring views (IV.C, IV.D).

This class remains the single OpenFlow endpoint: it classifies raw
protocol input into typed bus events and owns the senders the apps
borrow.  Flow entries are installed through the batched
:class:`~repro.openflow.pipeline.InstallPipeline` (one barrier per
datapath per tick instead of one per FlowMod).

The controller is deliberately reactive: it installs flow entries only
in response to first packets, keeps all decision logic here in the
control plane, and leaves the data plane to dumb flow-table lookups --
the 4D/OpenFlow separation the paper builds on.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import messages as svcmsg
from repro.core.apps import (
    AccountabilityApp,
    App,
    AppContext,
    HostTrackerApp,
    MonitorApp,
    PolicyEngineApp,
    ServiceDirectoryApp,
    SteeringApp,
    TopologyApp,
)
from repro.core.apps.base import (
    APP_CRASHED,
    APP_RUNNING,
    APP_STOPPED,
    ServiceStatus,
    config_hash,
)
from repro.core.apps.host_tracker import (
    ANNOUNCE_MIN_GAP_S,
    ANNOUNCE_REFRESH_INTERVAL_S,
    HOST_EXPIRY_INTERVAL_S,
)
from repro.core.apps.monitor import DEFAULT_STATS_INTERVAL_S
from repro.core.apps.service_directory import REGISTRY_EXPIRY_INTERVAL_S
from repro.core.apps.steering import FAILOVER_OUTCOMES
from repro.core.bus import (
    AppLifecycleChanged,
    ArpIn,
    BarrierReplyIn,
    DataPacketIn,
    DhcpIn,
    EventBus,
    FlowRemovedIn,
    FlowStatsIn,
    LinkDiscovered,
    LinkTimedOut,
    PathProofIn,
    PolicyReloaded,
    PortStatsIn,
    ServiceFrameIn,
    SwitchJoined,
    SwitchLeft,
    TaggedPacketIn,
)
from repro.core.directory import DirectoryProxy
from repro.core.events import EventKind, EventLog
from repro.core.introspection import (
    LEGACY_COUNTER_NAMES,
    ControllerStatus,
    CountersView,
    setup_controller_metrics,
)
from repro.core.loadbalance import LoadBalancer, make_dispatcher
from repro.core.nib import HostRecord, NetworkInformationBase
from repro.core.policy import PolicyTable
from repro.core.services import ServiceRegistry
from repro.core.sessions import SessionTable
from repro.net import packet as pkt
from repro.net.packet import Arp, Dhcp, Udp
from repro.obs import MetricsRegistry
from repro.openflow import messages as ofmsg
from repro.openflow.controller_base import (
    ControllerBase,
    DiscoveredLink,
    SwitchHandle,
)
from repro.openflow.pipeline import (
    DEFAULT_INSTALL_TIMEOUT_S,
    DEFAULT_MAX_ATTEMPTS as INSTALL_MAX_ATTEMPTS,
)

__all__ = [
    "LiveSecController",
    "ControllerStatus",
    "ServiceStatus",
    "DEFAULT_WATCHDOG_INTERVAL_S",
    "CountersView",
    "LEGACY_COUNTER_NAMES",
    "FAILOVER_OUTCOMES",
    "DEFAULT_SECRET",
    "DEFAULT_IDLE_TIMEOUT_S",
    "DEFAULT_STATS_INTERVAL_S",
    "DEFAULT_INSTALL_TIMEOUT_S",
    "INSTALL_MAX_ATTEMPTS",
    "HOST_EXPIRY_INTERVAL_S",
    "REGISTRY_EXPIRY_INTERVAL_S",
    "ANNOUNCE_REFRESH_INTERVAL_S",
    "ANNOUNCE_MIN_GAP_S",
]

DEFAULT_SECRET = "livesec-deployment-secret"
DEFAULT_IDLE_TIMEOUT_S = 5.0
#: How often the opt-in app watchdog scans for crashed apps.
DEFAULT_WATCHDOG_INTERVAL_S = 0.5


class LiveSecController(ControllerBase):
    """The centralized security-management controller.

    Parameters mirror the deployment's knobs: the dispatch algorithm
    (``'polling' | 'hash' | 'queuing' | 'minload'``), flow idle
    timeout, the certification secret, and whether/so-often to poll
    port statistics for the monitoring view.  ``install_batching``
    selects the barrier-coalescing install pipeline (the default) or
    the historical one-barrier-per-FlowMod behavior.
    """

    def __init__(
        self,
        sim,
        policies: Optional[PolicyTable] = None,
        dispatcher: str = "minload",
        secret: str = DEFAULT_SECRET,
        idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S,
        host_timeout_s: float = 120.0,
        stats_interval_s: Optional[float] = DEFAULT_STATS_INTERVAL_S,
        on_no_element: str = "allow",
        lldp_enabled: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        element_timeout_s: Optional[float] = None,
        install_timeout_s: float = DEFAULT_INSTALL_TIMEOUT_S,
        install_batching: bool = True,
        event_retention: Optional[int] = None,
        accountability: bool = False,
    ):
        super().__init__(sim, lldp_enabled=lldp_enabled)
        if on_no_element not in ("allow", "drop"):
            raise ValueError(
                f"on_no_element must be allow|drop, got {on_no_element}"
            )
        # Forwarding accountability (SDNsec-style path proofs).  Off by
        # default: tag stamping adds per-frame work and per-session
        # egress reports, and existing deterministic digests predate it.
        self.accountability_enabled = accountability
        self.secret = secret
        # The shard fabric hook: a ShardMember when this controller is
        # one shard of a ShardedDeployment, None standalone.  Steering
        # routes foreign-dpid rules and handoff deferrals through it;
        # the policy engine borrows federated waypoint candidates.
        self.shard = None
        # dpid -> quarantine reason.  A dict, not a set: iteration order
        # is insertion order (determinism) and the reason is useful to
        # the policy engine's logs.
        self.quarantined_dpids: Dict[int, str] = {}
        # Shared state surfaces (the single source of truth between apps).
        self.nib = NetworkInformationBase(host_timeout_s=host_timeout_s)
        self.policies = policies if policies is not None else PolicyTable()
        registry_kwargs = {}
        if element_timeout_s is not None:
            registry_kwargs["liveness_timeout_s"] = element_timeout_s
        self.registry = ServiceRegistry(secret=secret, **registry_kwargs)
        self.balancer = LoadBalancer(make_dispatcher(dispatcher))
        self.sessions = SessionTable()
        self.directory = DirectoryProxy(self.nib)
        self.idle_timeout_s = idle_timeout_s
        self.on_no_element = on_no_element
        self.install_timeout_s = install_timeout_s
        # Observability: one registry for every subsystem's metrics.
        # Created before the event log so the log's gauges register too.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # ``event_retention`` bounds event-log memory: segments older
        # than the N newest sealed ones compact load samples to
        # last-value-per-key (None keeps the history lossless).
        self.log = EventLog(retention=event_retention, metrics=self.metrics)
        setup_controller_metrics(self)
        # The bus and the apps.  Construction order is the dispatch
        # tie-break order (subscription seq) and ``start()`` order is
        # the timer registration order -- both are part of the
        # deterministic-digest contract; do not reorder casually.
        self.bus = EventBus(metrics=self.metrics)
        ctx = AppContext(
            sim=sim,
            bus=self.bus,
            controller=self,
            nib=self.nib,
            policies=self.policies,
            registry=self.registry,
            balancer=self.balancer,
            sessions=self.sessions,
            directory=self.directory,
            log=self.log,
            metrics=self.metrics,
            count=self._count,
        )
        self._app_ctx = ctx
        self._apps: Dict[str, App] = {}
        for app in (
            HostTrackerApp(ctx),
            TopologyApp(ctx),
            ServiceDirectoryApp(ctx),
            PolicyEngineApp(ctx),
            SteeringApp(
                ctx,
                install_timeout_s=install_timeout_s,
                install_batching=install_batching,
            ),
            MonitorApp(ctx, stats_interval_s=stats_interval_s),
        ):
            self._apps[app.name] = app
        if accountability:
            app = AccountabilityApp(ctx)
            self._apps[app.name] = app
        # Built-ins start silently (no lifecycle events): their wiring
        # predates the runtime-ops surface and existing deterministic
        # digests must not grow records from construction alone.
        for app in self._apps.values():
            app.start()
            app._mark_started()
        # The app watchdog (crash detection + restart) is opt-in: an
        # always-ticking timer would perturb existing deterministic
        # schedules.  Armed by start_app_watchdog() -- the fault
        # injector and the ops CLI call it.
        self._app_watchdog = None
        # Policy lifecycle: table commits become bus events (apps react:
        # policy-engine logs, steering invalidates its path cache,
        # monitor counts), and the table's version/deprecation gauges
        # land on this controller's registry.
        self.policies.on_commit(self._on_policy_commit)
        self.policies.attach_metrics(self.metrics)

    # ==================================================================
    # App registry

    @property
    def apps(self) -> List[App]:
        """The loaded apps, in construction (dispatch tie-break) order."""
        return list(self._apps.values())

    def app(self, name: str) -> App:
        """One app by its :attr:`~repro.core.apps.base.App.name`."""
        return self._apps[name]

    def add_app(
        self,
        factory: Callable[[AppContext], App],
        config: Optional[Dict[str, object]] = None,
    ) -> App:
        """Construct, register and start an extra app -- transactionally.

        ``factory`` (typically the :class:`App` subclass itself) is
        called with this controller's :class:`AppContext` plus any
        ``config`` kwargs.  The app subscribes after the built-ins, so
        at equal priority it sees each event last -- extensions
        observe, the stock pipeline decides.

        Registration is construct -> register -> start with rollback:
        a duplicate name or a failing ``start()`` tears down everything
        the constructor wired (bus subscriptions *and* timers), and a
        constructor that raises partway has its partial subscriptions
        purged by name -- a failed ``add_app`` leaves the bus exactly
        as it was.
        """
        config = dict(config or {})
        try:
            app = factory(self._app_ctx, **config)
        except Exception:
            # The object is unreachable, but any subscriptions it got
            # as far as wiring still carry the class's app name.
            name = getattr(factory, "name", None)
            if isinstance(name, str):
                self.bus.unsubscribe_app(name)
            raise
        if app.name in self._apps:
            app._teardown(APP_STOPPED)
            raise ValueError(f"app {app.name!r} already registered")
        self._apps[app.name] = app
        try:
            app.start()
        except Exception:
            del self._apps[app.name]
            app._teardown(APP_STOPPED)
            raise
        app._mark_started()
        if config and not app.config:
            app.config = config
        self._emit_lifecycle(app.name, "started", app.status())
        return app

    # ==================================================================
    # Runtime operations (the LiveSec "interactive management" premise:
    # apps are reconfigurable while the network keeps serving)

    def _emit_lifecycle(
        self, name: str, action: str, status: Optional[ServiceStatus]
    ) -> None:
        """Publish an app lifecycle transition: typed bus event for the
        apps (steering drains, sharding surfaces churn) plus an
        APP_LIFECYCLE event-log record for the journal/digest."""
        self.bus.publish(
            AppLifecycleChanged(app=name, action=action, status=status)
        )
        self.log.emit(
            self.sim.now,
            EventKind.APP_LIFECYCLE,
            app=name,
            action=action,
            state=status.state if status is not None else "removed",
        )

    def app_status(self) -> Dict[str, ServiceStatus]:
        """Typed per-app runtime status, in registration order."""
        return {name: app.status() for name, app in self._apps.items()}

    def accountability_active(self) -> bool:
        """Whether path-proof decoration should be applied to new
        sessions: accountability was enabled at construction *and* the
        accountability app is currently running (not stopped/crashed)."""
        if not self.accountability_enabled:
            return False
        app = self._apps.get("accountability")
        return app is not None and app.state == APP_RUNNING

    def stop_app(self, name: str) -> App:
        """Stop a running app in place: every bus subscription removed,
        every periodic timer cancelled.  The app stays registered (its
        slot and config survive) so ``start_app`` can revive it."""
        app = self._apps[name]
        if app.state == APP_RUNNING:
            app.stop()
            self._emit_lifecycle(name, "stopped", app.status())
        return app

    def start_app(self, name: str) -> App:
        """(Re)start a stopped or crashed app from its recorded config.

        Wiring lives in app constructors, so revival reconstructs the
        app; it re-subscribes at the back of the dispatch order for its
        priority tier.  Running apps are left untouched.
        """
        app = self._apps[name]
        if app.state == APP_RUNNING:
            return app
        return self._replace(name, dict(app.config), action="restarted")

    def restart_app(self, name: str) -> App:
        """Stop (if running) and reconstruct an app with its same
        config -- the bounce that clears soft state."""
        app = self._apps[name]
        return self._replace(name, dict(app.config), action="restarted")

    def reload_app(self, name: str, config: Dict[str, object]) -> App:
        """Reconstruct an app with a new config, skipping no-ops.

        The new config is hashed canonically; if it matches the running
        app's hash, nothing happens and the running instance is
        returned (a reload that changes nothing must not bounce
        subscriptions or reset timers).
        """
        app = self._apps[name]
        config = dict(config)
        if app.state == APP_RUNNING and config_hash(config) == app.config_hash():
            return app
        return self._replace(name, config, action="reloaded")

    def remove_app(self, name: str) -> App:
        """Stop an app and drop it from the registry entirely."""
        app = self._apps.pop(name)
        if app.state == APP_RUNNING:
            app.stop()
        else:
            app._teardown(APP_STOPPED)
        self._emit_lifecycle(name, "removed", None)
        return app

    def crash_app(self, name: str) -> App:
        """Simulate an app crash (the ``app_crash`` fault action): the
        app's wiring vanishes silently -- no lifecycle event, exactly
        like a real crash leaves no trace until the watchdog notices."""
        app = self._apps[name]
        app._teardown(APP_CRASHED)
        return app

    def start_app_watchdog(
        self, interval_s: float = DEFAULT_WATCHDOG_INTERVAL_S
    ):
        """Arm the periodic crashed-app scan (idempotent).

        Each tick, every app in state ``crashed`` is reported
        (``crash-detected``, the TTD edge for fault scoring) and then
        revived from its recorded config (``restarted``, the TTR edge).
        """
        if self._app_watchdog is None:
            self._app_watchdog = self.sim.every(
                interval_s, self._watchdog_scan
            )
        return self._app_watchdog

    def _watchdog_scan(self) -> None:
        for name in list(self._apps):
            app = self._apps[name]
            if app.state == APP_CRASHED:
                self._emit_lifecycle(name, "crash-detected", app.status())
                self._replace(name, dict(app.config), action="restarted")

    def _replace(
        self, name: str, config: Dict[str, object], action: str
    ) -> App:
        """Swap an app for a freshly constructed instance, atomically.

        Stop old -> construct new -> start new.  If the new constructor
        raises (bad config), its partial wiring is purged by app name
        and the *old* config is revived, so a failed reload leaves the
        app running as before the call.
        """
        old = self._apps[name]
        was_running = old.state == APP_RUNNING
        if was_running:
            old.stop()
        try:
            new = type(old)(self._app_ctx, **config)
        except Exception:
            self.bus.unsubscribe_app(name)
            revived = type(old)(self._app_ctx, **old.config)
            self._apps[name] = revived
            if was_running:
                revived.start()
                revived._mark_started()
            raise
        self._apps[name] = new
        new.start()
        new._mark_started()
        self._emit_lifecycle(name, action, new.status())
        return new

    @property
    def install_pipeline(self):
        """The steering app's batched install pipeline."""
        return self._steering.pipeline

    @property
    def _steering(self) -> SteeringApp:
        return self._apps["steering"]

    @property
    def _host_tracker(self) -> HostTrackerApp:
        return self._apps["host-tracker"]

    @property
    def _monitor(self) -> MonitorApp:
        return self._apps["monitor"]

    @property
    def _service_directory(self) -> ServiceDirectoryApp:
        return self._apps["service-directory"]

    # ==================================================================
    # Observability

    def _count(self, name: str, amount: int = 1) -> None:
        self._legacy_counters[name].inc(amount)

    @property
    def counters(self) -> CountersView:
        """Read-only live view of the legacy diagnostics counters.

        Kept for back-compat with the pre-registry API; new consumers
        should read ``controller.metrics`` instead.
        """
        return self._counters_view

    def subscribe_flow_stats(
        self, callback: Callable[[ofmsg.FlowStatsReply], None]
    ) -> Callable[[], None]:
        """Register a flow-stats observer; returns an unsubscribe
        callable.  Unsubscribing twice is a no-op."""
        return self._monitor.subscribe_flow_stats(callback)

    @property
    def flow_stats_listeners(self) -> list:
        """Deprecated: the bare listener list.  Mutating it still
        works for one release; use :meth:`subscribe_flow_stats`."""
        warnings.warn(
            "flow_stats_listeners is deprecated;"
            " use subscribe_flow_stats(callback)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._monitor._flow_stats_listeners

    # ==================================================================
    # OpenFlow input -> bus events

    def on_switch_join(self, switch: SwitchHandle) -> None:
        self.bus.publish(SwitchJoined(handle=switch))

    def on_switch_leave(self, switch: SwitchHandle) -> None:
        self.bus.publish(SwitchLeft(handle=switch))

    def on_link_discovered(self, link: DiscoveredLink) -> None:
        self.bus.publish(LinkDiscovered(link=link))

    def on_link_timeout(self, link: DiscoveredLink) -> None:
        self.bus.publish(LinkTimedOut(link=link))

    def on_packet_in(self, event: ofmsg.PacketIn) -> None:
        frame = event.frame
        if frame.ethertype == pkt.ETH_TYPE_ARP and isinstance(
            frame.payload, Arp
        ):
            with self._packet_in_hists["arp"].time():
                self.bus.publish(ArpIn(packet_in=event, arp=frame.payload))
            return
        if isinstance(frame.payload, Dhcp):
            with self._packet_in_hists["dhcp"].time():
                self.bus.publish(DhcpIn(packet_in=event, dhcp=frame.payload))
            return
        transport = frame.transport()
        if isinstance(transport, Udp) and svcmsg.is_service_message(
            transport.payload
        ):
            with self._packet_in_hists["service"].time():
                self.bus.publish(
                    ServiceFrameIn(packet_in=event, payload=transport.payload)
                )
            return
        if frame.path_tag is not None:
            # A still-tagged data frame punted to the controller is
            # evidence of misrouting (the PopPathTag egress rule never
            # ran); it must never be steered as a fresh first packet.
            with self._packet_in_hists["data"].time():
                self.bus.publish(
                    TaggedPacketIn(packet_in=event, tag=frame.path_tag)
                )
            return
        if frame.ip() is not None:
            with self._packet_in_hists["data"].time():
                self.bus.publish(DataPacketIn(packet_in=event))
            return
        # Unknown ethertype (e.g. stray BPDUs leaking through): ignore.

    def on_path_proof(self, event: ofmsg.PathProofReport) -> None:
        self.bus.publish(PathProofIn(message=event))

    def on_flow_removed(self, event: ofmsg.FlowRemoved) -> None:
        self.bus.publish(FlowRemovedIn(message=event))

    def on_port_stats(self, event: ofmsg.PortStatsReply) -> None:
        self.bus.publish(PortStatsIn(message=event))

    def on_flow_stats(self, event: ofmsg.FlowStatsReply) -> None:
        self.bus.publish(FlowStatsIn(message=event))

    def on_barrier_reply(self, dpid: int, xid: int) -> None:
        self.bus.publish(BarrierReplyIn(dpid=dpid, xid=xid))

    # ==================================================================
    # Policy lifecycle: compile, verify, atomic hot-swap

    def _on_policy_commit(self, commit) -> None:
        self.bus.publish(PolicyReloaded(commit=commit))

    def _known_service_types(self) -> set:
        """Service types a chain may legitimately reference: everything
        the deployment can instantiate plus whatever has already
        certified with the registry (covers custom element types)."""
        from repro.elements import ELEMENT_TYPES

        return set(ELEMENT_TYPES) | set(self.registry.service_types())

    def check_policies(self, source):
        """Compile + verify a policy document without touching the live
        table.  ``source`` is a file path, a parsed document dict, or an
        iterable of :class:`~repro.core.policy_compiler.PolicyIntent`.
        Returns the :class:`~repro.core.policy_compiler.CompileResult`.
        """
        from repro.core.policy_compiler import PolicyIntent, compile_intents
        from repro.core.policy_io import document_to_intents, load_intents
        from repro.core.policy import PolicyAction

        default = self.policies.default_action
        if isinstance(source, str):
            intents, default = load_intents(source)
        elif isinstance(source, dict):
            intents = document_to_intents(source)
            default = PolicyAction(source.get("default_action", "allow"))
        else:
            intents = list(source)
            if not all(isinstance(i, PolicyIntent) for i in intents):
                raise TypeError(
                    "source must be a path, a document dict, or PolicyIntents"
                )
        return compile_intents(
            intents,
            default_action=default,
            service_types=self._known_service_types(),
        )

    def reload_policies(self, source):
        """Hot-swap the live policy table from ``source``.

        The document compiles and verifies first; error findings raise
        :class:`~repro.core.policy_compiler.PolicyConflictError` and the
        previously committed table keeps serving.  A clean compile swaps
        in atomically -- one version bump, one ``PolicyReloaded`` event
        -- without touching established sessions.  Returns the
        :class:`~repro.core.policy.PolicyCommit` record."""
        from repro.core.policy_compiler import PolicyConflictError

        result = self.check_policies(source)
        if not result.ok:
            raise PolicyConflictError(result.errors)
        label = source if isinstance(source, str) else "reload"
        return self.policies.apply_compiled(
            result.table, source=f"reload:{label}"
        )

    # ==================================================================
    # Back-compat delegations (pre-decomposition public surface)

    def refresh_announcements(self, force: bool = False) -> None:
        """Re-announce every known host into the legacy fabric (also
        called once by the deployment after discovery converges)."""
        self._host_tracker.refresh_announcements(force=force)

    def register_port_capacity(self, dpid: int, port: int, bps: float) -> None:
        """Tell the monitor a port's line rate so it can normalize load."""
        self._monitor.register_port_capacity(dpid, port, bps)

    @property
    def _port_capacity(self) -> Dict[Tuple[int, int], float]:
        return self._monitor._port_capacity

    def _learn_host(self, mac: str, ip: Optional[str], dpid: int, port: int,
                    is_element: bool = False) -> HostRecord:
        return self._host_tracker.learn_host(
            mac, ip, dpid, port, is_element=is_element
        )

    def _is_periphery_port(self, dpid: int, port: int) -> Optional[bool]:
        return self._host_tracker.is_periphery_port(dpid, port)

    # ==================================================================
    # Introspection

    def status(self) -> ControllerStatus:
        """One-call overview used by examples, tests and the CLI.

        The result is a typed :class:`ControllerStatus`; it iterates
        and indexes like the historical dict, and ``.to_dict()``
        returns exactly the old shape.
        """
        return ControllerStatus(
            nib=self.nib.summary(),
            registry=self.registry.summary(),
            sessions=len(self.sessions),
            counters=dict(self.counters),
            events=len(self.log),
            metrics=self.metrics.snapshot(),
        )
