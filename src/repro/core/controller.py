"""The LiveSec controller application (the paper's core contribution).

One NOX-style app that ties every subsystem together:

* location discovery from ARP (Section III.C.2) into the NIB,
* the directory proxy answering ARP/DHCP without fabric broadcast,
* two-hop end-to-end routing over the logical full mesh (III.C.3),
* the global policy table and interactive policy enforcement with
  service-element steering and ingress blocking (IV.A),
* the in-band service-element message channel with certification
  (III.D.1) feeding the registry and the load balancer (IV.B),
* monitoring: port-stats polling, the global event log, and the
  visualization state the WebUI renders (IV.C, IV.D).

The controller is deliberately reactive: it installs flow entries only
in response to first packets, keeps all decision logic here in the
control plane, and leaves the data plane to dumb flow-table lookups --
the 4D/OpenFlow separation the paper builds on.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, replace as dc_replace
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.core import messages as svcmsg
from repro.core.directory import DirectoryProxy
from repro.core.events import EventKind, EventLog
from repro.core.loadbalance import LoadBalancer, make_dispatcher
from repro.core.nib import HostRecord, NetworkInformationBase
from repro.core.policy import (
    FailMode,
    Granularity,
    Policy,
    PolicyAction,
    PolicyTable,
)
from repro.core.routing import (
    RoutingError,
    RuleSpec,
    compute_path_rules,
    drop_rule,
    source_block_rule,
)
from repro.core.services import CertificateError, ServiceRegistry
from repro.core.sessions import Session, SessionTable
from repro.net import packet as pkt
from repro.net.packet import Arp, Dhcp, Ethernet, FlowNineTuple, Udp, extract_nine_tuple
from repro.obs import MetricsRegistry, MetricsSnapshot
from repro.openflow import messages as ofmsg
from repro.openflow.actions import Output
from repro.openflow.controller_base import ControllerBase, DiscoveredLink, SwitchHandle

DEFAULT_SECRET = "livesec-deployment-secret"
DEFAULT_IDLE_TIMEOUT_S = 5.0
HOST_EXPIRY_INTERVAL_S = 5.0
REGISTRY_EXPIRY_INTERVAL_S = 1.0
ANNOUNCE_REFRESH_INTERVAL_S = 60.0
ANNOUNCE_MIN_GAP_S = 0.25
DEFAULT_STATS_INTERVAL_S = 1.0
# Reliable rule installation: every FlowMod is chased by a
# BarrierRequest; a missing BarrierReply within the timeout re-sends
# the install with the timeout doubled, up to the attempt cap.
DEFAULT_INSTALL_TIMEOUT_S = 0.05
INSTALL_MAX_ATTEMPTS = 5
FAILOVER_OUTCOMES = ("recovered", "fail-open", "fail-closed", "torn-down")

# Legacy diagnostic counter names, preserved verbatim by the
# ``counters`` back-compat view (registry metric: ``controller.<name>``).
LEGACY_COUNTER_NAMES = (
    "arp_in",
    "service_messages",
    "flows_installed",
    "flows_blocked",
    "transit_ignored",
    "orphan_chain_frames",
    "no_element_fallback",
    "routing_deferred",
)


class CountersView(Mapping):
    """Read-only live view of the legacy diagnostics counters.

    Behaves like the old ``controller.counters`` dict for reads
    (lookup, iteration, ``dict(...)``), but the values come straight
    from the metrics registry -- there is exactly one source of truth.
    """

    __slots__ = ("_counters",)

    def __init__(self, counters: Dict[str, object]):
        self._counters = counters

    def __getitem__(self, name: str) -> int:
        return int(self._counters[name].value)

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def __repr__(self) -> str:
        return repr(dict(self))


@dataclass
class _PendingInstall:
    """One barrier-acked rule install awaiting its BarrierReply."""

    rule: RuleSpec
    buffer_id: Optional[int]
    attempt: int
    timeout_s: float
    timer: object  # cancellable simulator handle


@dataclass
class ControllerStatus(Mapping):
    """Typed result of :meth:`LiveSecController.status`.

    Iterates and indexes like the historical ad-hoc dict (the five
    legacy keys), so existing ``status()["nib"]`` call sites keep
    working; the full metrics snapshot rides along as ``.metrics``.
    """

    nib: Dict[str, object]
    registry: Dict[str, object]
    sessions: int
    counters: Dict[str, int]
    events: int
    metrics: MetricsSnapshot

    _LEGACY_KEYS = ("nib", "registry", "sessions", "counters", "events")

    def to_dict(self) -> dict:
        """The exact pre-redesign ``status()`` dict shape."""
        return {key: getattr(self, key) for key in self._LEGACY_KEYS}

    def __getitem__(self, key: str):
        if key not in self._LEGACY_KEYS:
            raise KeyError(key)
        return getattr(self, key)

    def __iter__(self) -> Iterator[str]:
        return iter(self._LEGACY_KEYS)

    def __len__(self) -> int:
        return len(self._LEGACY_KEYS)


class LiveSecController(ControllerBase):
    """The centralized security-management controller.

    Parameters mirror the deployment's knobs: the dispatch algorithm
    (``'polling' | 'hash' | 'queuing' | 'minload'``), flow idle
    timeout, the certification secret, and whether/so-often to poll
    port statistics for the monitoring view.
    """

    def __init__(
        self,
        sim,
        policies: Optional[PolicyTable] = None,
        dispatcher: str = "minload",
        secret: str = DEFAULT_SECRET,
        idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S,
        host_timeout_s: float = 120.0,
        stats_interval_s: Optional[float] = DEFAULT_STATS_INTERVAL_S,
        on_no_element: str = "allow",
        lldp_enabled: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        element_timeout_s: Optional[float] = None,
        install_timeout_s: float = DEFAULT_INSTALL_TIMEOUT_S,
    ):
        super().__init__(sim, lldp_enabled=lldp_enabled)
        if on_no_element not in ("allow", "drop"):
            raise ValueError(f"on_no_element must be allow|drop, got {on_no_element}")
        self.nib = NetworkInformationBase(host_timeout_s=host_timeout_s)
        self.policies = policies if policies is not None else PolicyTable()
        registry_kwargs = {}
        if element_timeout_s is not None:
            registry_kwargs["liveness_timeout_s"] = element_timeout_s
        self.registry = ServiceRegistry(secret=secret, **registry_kwargs)
        self.balancer = LoadBalancer(make_dispatcher(dispatcher))
        self.sessions = SessionTable()
        self.directory = DirectoryProxy(self.nib)
        self.log = EventLog()
        self.idle_timeout_s = idle_timeout_s
        self.on_no_element = on_no_element
        # Reliable-install state: barrier xid -> pending install.
        self.install_timeout_s = install_timeout_s
        self._pending_installs: Dict[int, _PendingInstall] = {}
        self._barrier_xids = itertools.count(1)
        # Monitoring state.
        self._port_capacity: Dict[Tuple[int, int], float] = {}
        self._last_port_sample: Dict[Tuple[int, int], Tuple[int, float]] = {}
        self._last_announce: Dict[str, float] = {}
        # Add-ons (e.g. AggregateFlowControl) subscribe via
        # subscribe_flow_stats() to see flow-stats replies without
        # subclassing.
        self._flow_stats_listeners: list = []
        # Observability: one registry for every subsystem's metrics.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._setup_metrics()
        sim.every(HOST_EXPIRY_INTERVAL_S, self._expire_hosts)
        sim.every(REGISTRY_EXPIRY_INTERVAL_S, self._expire_elements)
        sim.every(ANNOUNCE_REFRESH_INTERVAL_S, self.refresh_announcements)
        if stats_interval_s is not None:
            sim.every(stats_interval_s, self._poll_stats)

    # ==================================================================
    # Observability

    def _setup_metrics(self) -> None:
        registry = self.metrics
        if hasattr(self.sim, "attach_metrics"):
            self.sim.attach_metrics(registry)
        self.balancer.attach_metrics(registry)
        self._legacy_counters = {
            name: registry.counter(
                f"controller.{name}", f"Legacy diagnostics counter {name!r}"
            )
            for name in LEGACY_COUNTER_NAMES
        }
        self._counters_view = CountersView(self._legacy_counters)
        # Hot-path latency histograms (wall clock: control-plane cost).
        self._packet_in_hists = {
            kind: registry.histogram(
                "controller.packet_in_latency_s",
                "Wall-clock time spent handling one PacketIn",
                kind=kind,
            )
            for kind in ("arp", "dhcp", "service", "data")
        }
        self._flow_setup_rules_hist = registry.histogram(
            "controller.flow_setup_rules",
            "Flow entries installed per end-to-end session setup",
        )
        self._flow_setup_wall_hist = registry.histogram(
            "controller.flow_setup_wall_s",
            "Wall-clock time to compute and install one session",
        )
        self._policy_scan_hist = registry.histogram(
            "controller.policy_lookup_scans",
            "Policy-table rows scanned per first-packet lookup",
        )
        # Session lifetime is a *simulated-time* span.
        self._session_duration_hist = registry.histogram(
            "controller.session_duration_s",
            "Simulated lifetime of ended sessions",
            clock=lambda: self.sim.now,
        )
        registry.gauge(
            "controller.sessions_active", "Live (not torn down) sessions"
        ).set_function(lambda: len(self.sessions))
        registry.gauge(
            "controller.hosts_known", "Hosts currently in the NIB"
        ).set_function(lambda: len(self.nib.hosts))
        registry.gauge(
            "controller.policies", "Rows in the global policy table"
        ).set_function(lambda: len(self.policies))
        # Recovery-path metrics (chaos/robustness).
        self._install_retries = registry.counter(
            "controller.install_retries",
            "Rule installs re-sent after a barrier-ack timeout",
        )
        self._install_failures = registry.counter(
            "controller.install_failures",
            "Rule installs abandoned after exhausting retries",
        )
        self._rules_resynced = registry.counter(
            "controller.rules_resynced",
            "Flow entries re-pushed to a switch on reconnect",
        )
        self._failover_counters = {
            outcome: registry.counter(
                "controller.failover",
                "Sessions re-steered after an element went offline",
                outcome=outcome,
            )
            for outcome in FAILOVER_OUTCOMES
        }
        registry.gauge(
            "controller.installs_pending",
            "Rule installs awaiting their barrier ack",
        ).set_function(lambda: len(self._pending_installs))

    def _count(self, name: str, amount: int = 1) -> None:
        self._legacy_counters[name].inc(amount)

    @property
    def counters(self) -> CountersView:
        """Read-only live view of the legacy diagnostics counters.

        Kept for back-compat with the pre-registry API; new consumers
        should read ``controller.metrics`` instead.
        """
        return self._counters_view

    def subscribe_flow_stats(
        self, callback: Callable[[ofmsg.FlowStatsReply], None]
    ) -> Callable[[], None]:
        """Register a flow-stats observer; returns an unsubscribe
        callable.  Unsubscribing twice is a no-op."""
        self._flow_stats_listeners.append(callback)

        def unsubscribe() -> None:
            try:
                self._flow_stats_listeners.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    @property
    def flow_stats_listeners(self) -> list:
        """Deprecated: the bare listener list.  Mutating it still
        works for one release; use :meth:`subscribe_flow_stats`."""
        warnings.warn(
            "flow_stats_listeners is deprecated;"
            " use subscribe_flow_stats(callback)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._flow_stats_listeners

    # ==================================================================
    # Topology events

    def on_switch_join(self, switch: SwitchHandle) -> None:
        self.nib.add_switch(switch.dpid, switch.name, switch.ports, self.sim.now)
        self.log.emit(self.sim.now, EventKind.SWITCH_JOIN,
                      dpid=switch.dpid, name=switch.name)
        self._resync_switch(switch.dpid)

    def on_switch_leave(self, switch: SwitchHandle) -> None:
        self.nib.remove_switch(switch.dpid)
        # Abort in-flight installs: retrying against a dead channel is
        # pointless, and a reconnect resyncs the full session state.
        stale = [
            xid for xid, pending in self._pending_installs.items()
            if pending.rule.dpid == switch.dpid
        ]
        for xid in stale:
            self._pending_installs.pop(xid).timer.cancel()
        self.log.emit(self.sim.now, EventKind.SWITCH_LEAVE, dpid=switch.dpid)

    def _resync_switch(self, dpid: int) -> None:
        """Re-push this datapath's share of the session store.

        A reconnecting switch's flow table may have lost entries (or
        the whole switch rebooted): the session store is authoritative,
        so every live session's rules for this dpid are reinstalled.
        ADD semantics make this idempotent -- entries that survived are
        replaced in place, with no FlowRemoved.  Stale datapath entries
        for sessions the controller no longer tracks simply idle out.
        """
        resynced = 0
        for session in self.sessions:
            if session.blocked:
                continue
            for rule in session.rules:
                if rule.dpid == dpid:
                    self._install_rule(rule)
                    resynced += 1
        if resynced:
            self._rules_resynced.inc(resynced)
            self.log.emit(self.sim.now, EventKind.SWITCH_RESYNC,
                          dpid=dpid, rules=resynced)

    def on_link_discovered(self, link: DiscoveredLink) -> None:
        pair_was_known = self.nib.link(link.src_dpid, link.dst_dpid) is not None
        self.nib.learn_link(
            link.src_dpid, link.src_port, link.dst_dpid, link.dst_port, self.sim.now
        )
        if not pair_was_known:
            self.log.emit(
                self.sim.now, EventKind.LINK_UP,
                src_dpid=link.src_dpid, dst_dpid=link.dst_dpid,
            )

    def on_link_timeout(self, link: DiscoveredLink) -> None:
        # Dual-homed pairs have several port pairs; rebuild the NIB's
        # link table from what discovery still confirms, and only
        # report the logical link down when no path remains.
        before = {
            dpid: self.nib.uplink_ports(dpid) for dpid in self.nib.switches
        }
        self.nib.rebuild_links(self.known_links(), self.sim.now)
        if self.nib.link(link.src_dpid, link.dst_dpid) is None:
            self.log.emit(
                self.sim.now, EventKind.LINK_DOWN,
                src_dpid=link.src_dpid, dst_dpid=link.dst_dpid,
            )
        # Fabric failover: a switch whose uplink set shrank may have
        # live sessions forwarding into the dead path -- and those
        # entries never idle out, because the (blackholed) traffic
        # keeps refreshing them.  Tear the affected sessions down; the
        # next packet re-forms them over the surviving uplinks.
        uplinks_changed = False
        for dpid, old_uplinks in before.items():
            new_uplinks = self.nib.uplink_ports(dpid)
            if new_uplinks and old_uplinks - new_uplinks:
                self._invalidate_sessions_via(dpid)
                uplinks_changed = True
        if uplinks_changed:
            # The legacy fabric's MAC tables still point hosts at the
            # dead paths; flooding fresh announcements out of the
            # surviving uplinks re-teaches it.
            self.refresh_announcements(force=True)

    def _invalidate_sessions_via(self, dpid: int) -> None:
        for session in list(self.sessions):
            if any(rule.dpid == dpid for rule in session.rules):
                self._teardown_session(session)

    # ==================================================================
    # Packet-in dispatch

    def on_packet_in(self, event: ofmsg.PacketIn) -> None:
        frame = event.frame
        if frame.ethertype == pkt.ETH_TYPE_ARP and isinstance(frame.payload, Arp):
            with self._packet_in_hists["arp"].time():
                self._handle_arp(event, frame.payload)
            return
        if isinstance(frame.payload, Dhcp):
            with self._packet_in_hists["dhcp"].time():
                self._handle_dhcp(event, frame.payload)
            return
        transport = frame.transport()
        if isinstance(transport, Udp) and svcmsg.is_service_message(transport.payload):
            with self._packet_in_hists["service"].time():
                self._handle_service_message(event, transport.payload)
            return
        if frame.ip() is not None:
            with self._packet_in_hists["data"].time():
                self._handle_data_packet(event)
            return
        # Unknown ethertype (e.g. stray BPDUs leaking through): ignore.

    # ------------------------------------------------------------------
    # ARP / location discovery / directory proxy

    def _is_periphery_port(self, dpid: int, port: int) -> Optional[bool]:
        """True/False once the switch's uplinks are known, None before.

        A dual-homed AS switch has several Legacy-Switching ports; a
        port is periphery only when it is none of them.
        """
        uplinks = self.nib.uplink_ports(dpid)
        if not uplinks:
            return None
        return port not in uplinks

    def _handle_arp(self, event: ofmsg.PacketIn, arp: Arp) -> None:
        self._count("arp_in")
        periphery = self._is_periphery_port(event.dpid, event.in_port)
        if periphery:
            self._learn_host(
                mac=arp.sender_mac,
                ip=arp.sender_ip,
                dpid=event.dpid,
                port=event.in_port,
            )
        if not arp.is_request:
            # Unicast reply: deliver to the target if we know where it is.
            target = self.nib.host_by_mac(arp.target_mac)
            if target is not None:
                self.send_packet_out(
                    target.dpid, actions=(Output(target.port),), frame=event.frame
                )
            return
        decision = self.directory.handle_arp_request(arp)
        if decision.action == "reply":
            assert decision.reply_frame is not None
            self.send_packet_out(
                event.dpid,
                actions=(Output(event.in_port),),
                frame=decision.reply_frame,
            )
        elif decision.action == "flood":
            self._periphery_flood(event.frame, exclude=(event.dpid, event.in_port))

    def _learn_host(self, mac: str, ip: Optional[str], dpid: int, port: int,
                    is_element: bool = False) -> HostRecord:
        # Distinguish a genuine join from a move *before* the NIB
        # overwrites the record: inferring the difference from the
        # record's timestamps afterwards mis-labels a host that roams
        # (e.g. wired -> wifi) at the same instant it was first
        # learned, because first_seen == last_seen then looks like a
        # fresh join.
        prior = self.nib.host_by_mac(mac)
        moved = prior is not None and (prior.dpid != dpid or prior.port != port)
        record, is_new = self.nib.learn_host(
            mac=mac, ip=ip, dpid=dpid, port=port, now=self.sim.now,
            is_element=is_element,
        )
        if is_new:
            kind = EventKind.HOST_MOVE if moved else EventKind.HOST_JOIN
            if not record.is_element:
                self.log.emit(self.sim.now, kind,
                              mac=mac, ip=ip, dpid=dpid, port=port)
            self._announce_host(record)
        return record

    def _announce_host(self, record: HostRecord, force: bool = False) -> None:
        """Teach the legacy fabric where this MAC lives by flooding a
        gratuitous ARP out of the host's switch uplink.

        Rate-limited per MAC (announcements are flooded to every AS
        switch, so a feedback loop must never be able to amplify
        them); ``force`` bypasses the limiter for failover refreshes,
        where re-teaching the fabric immediately is the whole point.
        """
        uplink = self.nib.uplink_port(record.dpid)
        if uplink is None or record.dpid not in self.switches:
            return
        last = self._last_announce.get(record.mac)
        if not force and last is not None and \
                self.sim.now - last < ANNOUNCE_MIN_GAP_S:
            return
        self._last_announce[record.mac] = self.sim.now
        announce = pkt.make_arp_request(
            record.mac, record.ip or "0.0.0.0", record.ip or "0.0.0.0"
        )
        self.send_packet_out(record.dpid, actions=(Output(uplink),), frame=announce)

    def refresh_announcements(self, force: bool = False) -> None:
        """Re-announce every known host into the legacy fabric (also
        called once by the deployment after discovery converges)."""
        for record in list(self.nib.hosts.values()):
            self._announce_host(record, force=force)

    def _periphery_flood(self, frame: Ethernet,
                         exclude: Tuple[int, int]) -> None:
        """Directory-proxy fallback for unknown ARP targets: deliver a
        copy to every Network-Periphery port, never into the fabric."""
        for dpid, handle in self.switches.items():
            uplinks = self.nib.uplink_ports(dpid)
            if not uplinks:
                continue
            outputs = tuple(
                Output(port)
                for port in handle.ports
                if port not in uplinks and (dpid, port) != exclude
            )
            if outputs:
                self.send_packet_out(dpid, actions=outputs, frame=frame.clone())

    def _handle_dhcp(self, event: ofmsg.PacketIn, dhcp: Dhcp) -> None:
        response = self.directory.handle_dhcp(dhcp)
        if response is None:
            return
        reply = Ethernet(
            src=svcmsg.CONTROLLER_MAC,
            dst=dhcp.client_mac,
            ethertype=0x0800,
            size=300,
            payload=None,
        )
        reply.payload = response  # type: ignore[assignment]
        self.send_packet_out(
            event.dpid, actions=(Output(event.in_port),), frame=reply
        )

    # ------------------------------------------------------------------
    # Service-element messages (never get a flow entry installed)

    def _handle_service_message(self, event: ofmsg.PacketIn, payload: bytes) -> None:
        self._count("service_messages")
        mac = event.frame.src
        try:
            message = svcmsg.decode(payload)
        except svcmsg.MessageFormatError:
            self._reject_element(event, mac, reason="malformed-message")
            return
        try:
            if isinstance(message, svcmsg.OnlineMessage):
                self._handle_online_message(event, message)
            else:
                self._handle_event_report(event, message)
        except CertificateError:
            self._reject_element(event, mac, reason="bad-certificate")

    def _handle_online_message(
        self, event: ofmsg.PacketIn, message: svcmsg.OnlineMessage
    ) -> None:
        # Capture the prior liveness *before* handle_online refreshes
        # the record (which always leaves it online): an element
        # returning from an expiry must re-log ELEMENT_ONLINE.
        prior = self.registry.get(message.element_mac)
        was_online = prior is not None and prior.online
        record = self.registry.handle_online(message, self.sim.now)
        came_back = not was_online
        host = self._learn_host(
            mac=message.element_mac,
            ip=None,
            dpid=event.dpid,
            port=event.in_port,
            is_element=True,
        )
        self.balancer.on_load_report(message.element_mac)
        if came_back or record.reports == 1:
            self.log.emit(
                self.sim.now, EventKind.ELEMENT_ONLINE,
                mac=message.element_mac,
                service_type=message.service_type,
                dpid=host.dpid,
            )
        self.log.emit(
            self.sim.now, EventKind.ELEMENT_LOAD,
            mac=message.element_mac, cpu=message.cpu, pps=message.pps,
            flows=message.active_flows,
        )

    def _handle_event_report(
        self, event: ofmsg.PacketIn, message: svcmsg.EventReportMessage
    ) -> None:
        self.registry.verify_event(message)
        session = self._find_session_for_report(message)
        if message.kind == "attack":
            self._block_attack(message, session)
        elif message.kind == "protocol":
            application = message.detail.get("application", "unknown")
            user_mac = session.src_mac if session else (
                message.flow.dl_src if message.flow else "?"
            )
            if session is not None:
                session.application = application
            self.log.emit(
                self.sim.now, EventKind.PROTOCOL_IDENTIFIED,
                user_mac=user_mac, application=application,
                element=message.element_mac,
            )
        else:
            # Other service results (virus, content, ...) are logged as
            # attacks for blocking purposes only when flagged malicious.
            if message.detail.get("verdict") == "malicious":
                self._block_attack(message, session)
            else:
                self.log.emit(
                    self.sim.now, EventKind.PROTOCOL_IDENTIFIED,
                    user_mac=message.flow.dl_src if message.flow else "?",
                    application=f"{message.kind}:{message.detail.get('result', '?')}",
                    element=message.element_mac,
                )

    def _find_session_for_report(
        self, message: svcmsg.EventReportMessage
    ) -> Optional[Session]:
        """Map a reported flow back to its session.

        The element sees frames whose dl_dst was rewritten to its own
        MAC, so an exact 9-tuple lookup can fail; fall back to matching
        the sessions steered through that element on the stable fields.
        """
        if message.flow is None:
            return None
        direct = self.sessions.lookup(message.flow)
        if direct is not None:
            return direct
        for session in self.sessions.sessions_via_element(message.element_mac):
            for candidate in (session.flow, session.reverse_flow):
                # Compare on the network/transport identity only: the
                # MAC labels the element saw may have been rewritten by
                # the steering chain (dl_dst always, dl_src for chains
                # of two or more elements).
                if (
                    candidate.nw_src == message.flow.nw_src
                    and candidate.nw_dst == message.flow.nw_dst
                    and candidate.nw_proto == message.flow.nw_proto
                    and candidate.tp_src == message.flow.tp_src
                    and candidate.tp_dst == message.flow.tp_dst
                ):
                    return session
        return None

    def _block_attack(
        self,
        message: svcmsg.EventReportMessage,
        session: Optional[Session],
    ) -> None:
        """Install the ingress drop: the flow dies at the entrance."""
        attack_type = message.detail.get("attack", "unknown")
        if session is not None:
            flow = session.flow
            user_mac = session.src_mac
        elif message.flow is not None:
            flow = message.flow
            user_mac = message.flow.dl_src
        else:
            return
        src = self.nib.host_by_mac(user_mac)
        self.log.emit(
            self.sim.now, EventKind.ATTACK_DETECTED,
            user_mac=user_mac, attack=attack_type,
            element=message.element_mac,
            dpid=src.dpid if src else -1,
        )
        if src is None:
            return
        rule = drop_rule(
            flow, src,
            cookie=session.session_id if session else 0,
        )
        self._install_rule(rule)
        if session is not None:
            session.blocked = True
        self._count("flows_blocked")
        self.log.emit(
            self.sim.now, EventKind.FLOW_BLOCKED,
            user_mac=user_mac, dpid=src.dpid, attack=attack_type,
        )

    def _reject_element(self, event: ofmsg.PacketIn, mac: str, reason: str) -> None:
        """Uncertified/malformed element traffic: drop at the ingress."""
        record = self.nib.host_by_mac(mac)
        if record is None:
            record = HostRecord(
                mac=mac, ip=None, dpid=event.dpid, port=event.in_port,
                first_seen=self.sim.now, last_seen=self.sim.now,
            )
        self._install_rule(source_block_rule(mac, record))
        self.log.emit(
            self.sim.now, EventKind.ELEMENT_REJECTED, mac=mac, reason=reason
        )

    # ------------------------------------------------------------------
    # Data-plane flow setup (interactive policy enforcement)

    def _handle_data_packet(self, event: ofmsg.PacketIn) -> None:
        frame = event.frame
        periphery = self._is_periphery_port(event.dpid, event.in_port)
        flow = extract_nine_tuple(frame)

        if periphery is not True:
            # A transit copy flooded through the legacy fabric, or a
            # punt from a switch whose uplink is still undiscovered.
            # Deliver locally if the destination sits on this switch,
            # but never install state or learn locations from it.
            self._count("transit_ignored")
            dst = self.nib.host_by_mac(frame.dst)
            if (
                dst is not None
                and dst.dpid == event.dpid
                and event.buffer_id is not None
            ):
                self.send_packet_out(
                    event.dpid, actions=(Output(dst.port),),
                    buffer_id=event.buffer_id,
                )
            return

        existing = self.sessions.lookup(flow)
        if existing is not None:
            self._release_along_session(event, existing, flow)
            return

        # Orphaned mid-chain frame: its destination MAC is a service
        # element's, i.e. it was rewritten by a (since torn down)
        # steering chain and missed the element switch's entries.  It
        # must neither teach us locations (its source MAC is the
        # *original* sender, nowhere near this port) nor form a
        # session (the real flow will re-punt at its true ingress and
        # re-form; the transport retransmits the lost packet).
        dst_record_early = self.nib.host_by_mac(frame.dst)
        if (
            dst_record_early is not None
            and dst_record_early.is_element
            and frame.src != dst_record_early.mac
        ):
            self._count("orphan_chain_frames")
            return

        # Learn-or-refresh: a packet from a periphery port is location
        # evidence and liveness evidence at once.
        src = self._learn_host(frame.src, flow.nw_src, event.dpid, event.in_port)
        dst = self.nib.host_by_mac(frame.dst)
        if dst is None:
            # Destination location unknown: fall back to a periphery
            # flood of this one packet; the session forms on a retry.
            self._periphery_flood(frame, exclude=(event.dpid, event.in_port))
            return

        policy, scanned = self.policies.match(flow)
        self._policy_scan_hist.observe(scanned)
        if policy is not None:
            # Hit accounting is the controller's call, not the
            # lookup's: read-only consumers must not inflate hits.
            self.policies.record_hit(policy)
        action = policy.action if policy is not None else self.policies.default_action

        if action is PolicyAction.DROP:
            rule = drop_rule(flow, src)
            self._install_rule(rule)
            self._count("flows_blocked")
            self.log.emit(
                self.sim.now, EventKind.FLOW_BLOCKED,
                user_mac=src.mac, dpid=src.dpid,
                policy=policy.name if policy else "default",
            )
            return

        waypoints: List[HostRecord] = []
        element_macs: List[str] = []
        if action is PolicyAction.CHAIN:
            assert policy is not None
            resolved = self._resolve_chain(policy, flow, src)
            if resolved is None:
                if self._effective_fail_mode(policy) is FailMode.CLOSED:
                    self._install_rule(drop_rule(flow, src))
                    self._count("flows_blocked")
                    self.log.emit(
                        self.sim.now, EventKind.FLOW_BLOCKED,
                        user_mac=src.mac, dpid=src.dpid, policy=policy.name,
                    )
                    return
                self._count("no_element_fallback")
            else:
                waypoints, element_macs = resolved

        try:
            with self._flow_setup_wall_hist.time():
                self._install_session(
                    event, flow, src, dst, waypoints, tuple(element_macs), policy
                )
        except RoutingError:
            # Topology discovery has not converged; deliver nothing and
            # let the application retry.
            self._count("routing_deferred")

    def _resolve_chain(
        self, policy: Policy, flow: FlowNineTuple, src: HostRecord
    ) -> Optional[Tuple[List[HostRecord], List[str]]]:
        """Pick one element per chained service type via the balancer."""
        waypoints: List[HostRecord] = []
        element_macs: List[str] = []
        for service_type in policy.service_chain:
            candidates = self.registry.candidates(service_type)
            located = [
                c for c in candidates if self.nib.host_by_mac(c.mac) is not None
            ]
            if not located:
                return None
            chosen = self.balancer.assign(
                located, flow,
                user=src.mac,
                granularity=policy.granularity,
            )
            record = self.nib.host_by_mac(chosen)
            assert record is not None
            waypoints.append(record)
            element_macs.append(chosen)
        return waypoints, element_macs

    def _effective_fail_mode(self, policy: Optional[Policy]) -> FailMode:
        """The fail mode governing a chained policy with no healthy
        element: the policy's own, else inherited from the controller's
        ``on_no_element`` default."""
        if policy is not None and policy.fail_mode is not None:
            return policy.fail_mode
        return FailMode.CLOSED if self.on_no_element == "drop" else FailMode.OPEN

    def _compute_session_rules(
        self,
        flow: FlowNineTuple,
        src: HostRecord,
        dst: HostRecord,
        waypoints: List[HostRecord],
        policy: Optional[Policy],
        session_id: int,
    ) -> List[RuleSpec]:
        """Both directions' flow entries for one session (rules[0] is
        the forward ingress entry, the only one arming teardown)."""
        forward = compute_path_rules(
            self.nib, flow, src, dst, waypoints,
            idle_timeout=self.idle_timeout_s, cookie=session_id,
        )
        inspect_reply = policy.inspect_reply if policy is not None else False
        reverse_waypoints = list(reversed(waypoints)) if inspect_reply else []
        reverse = compute_path_rules(
            self.nib, flow.reversed(), dst, src, reverse_waypoints,
            idle_timeout=self.idle_timeout_s, cookie=session_id,
        )
        # Only the *forward* ingress entry arms session teardown.  The
        # reply direction of a one-way flow is legitimately idle; its
        # expiry must not kill an active session (the teardown deletes
        # the reverse entries anyway, and a late reply packet simply
        # punts and re-forms the session from the other side).
        reverse[0] = dc_replace(reverse[0], send_flow_removed=False)
        return forward + reverse

    def _install_session(
        self,
        event: ofmsg.PacketIn,
        flow: FlowNineTuple,
        src: HostRecord,
        dst: HostRecord,
        waypoints: List[HostRecord],
        element_macs: Tuple[str, ...],
        policy: Optional[Policy],
    ) -> None:
        session_id = self.sessions.next_id()
        rules = self._compute_session_rules(
            flow, src, dst, waypoints, policy, session_id
        )
        session = self.sessions.create(
            flow=flow,
            src_mac=src.mac,
            dst_mac=dst.mac,
            policy_name=policy.name if policy else None,
            element_macs=element_macs,
            rules=rules,
            now=self.sim.now,
            session_id=session_id,
        )
        # "All above flow entries can be calculated and enforced
        # simultaneously" -- the ingress FlowMod releases the buffered
        # first packet through the freshly installed actions.
        for rule in rules:
            buffer_id = (
                event.buffer_id
                if rule is rules[0] and rule.dpid == event.dpid
                else None
            )
            self._install_rule(rule, buffer_id=buffer_id)
        self._count("flows_installed")
        self._flow_setup_rules_hist.observe(len(rules))
        self.log.emit(
            self.sim.now, EventKind.FLOW_START,
            session=session.session_id, user_mac=src.mac, dst_mac=dst.mac,
            policy=policy.name if policy else "default",
            rules=len(rules),
        )
        if element_macs:
            self.log.emit(
                self.sim.now, EventKind.FLOW_STEERED,
                session=session.session_id,
                elements=",".join(element_macs),
            )

    def _release_along_session(
        self, event: ofmsg.PacketIn, session: Session, flow: FlowNineTuple
    ) -> None:
        """A packet of an already-installed session was punted (it raced
        the FlowMods): push it through the session's ingress actions."""
        if session.blocked or event.buffer_id is None:
            return
        for rule in session.rules:
            if rule.dpid == event.dpid and rule.match.matches(
                event.frame, event.in_port
            ):
                self.send_packet_out(
                    event.dpid, actions=rule.actions, buffer_id=event.buffer_id
                )
                return

    def _install_rule(self, rule: RuleSpec, buffer_id: Optional[int] = None) -> None:
        """Barrier-acked reliable install.

        The FlowMod is chased by a BarrierRequest; if the BarrierReply
        does not arrive within the send timeout (channel drop, either
        direction) the install is re-sent with the timeout doubled,
        up to ``INSTALL_MAX_ATTEMPTS``.  Re-sending is idempotent: ADD
        replaces an identical entry, and a retried ``buffer_id``
        release pops nothing if the first copy already fired.
        """
        if rule.dpid not in self.switches:
            return
        self._send_install(rule, buffer_id, attempt=1,
                           timeout_s=self.install_timeout_s)

    def _send_install(
        self,
        rule: RuleSpec,
        buffer_id: Optional[int],
        attempt: int,
        timeout_s: float,
    ) -> None:
        handle = self.switches.get(rule.dpid)
        if handle is None:
            return
        self.send_flow_mod(
            rule.dpid,
            command=ofmsg.FlowMod.ADD,
            match=rule.match,
            actions=rule.actions,
            priority=rule.priority,
            idle_timeout=rule.idle_timeout,
            hard_timeout=rule.hard_timeout,
            cookie=rule.cookie,
            send_flow_removed=rule.send_flow_removed,
            buffer_id=buffer_id,
        )
        xid = next(self._barrier_xids)
        handle.channel.to_switch(ofmsg.BarrierRequest(xid=xid))
        timer = self.sim.schedule(timeout_s, self._install_timed_out, xid)
        self._pending_installs[xid] = _PendingInstall(
            rule=rule, buffer_id=buffer_id, attempt=attempt,
            timeout_s=timeout_s, timer=timer,
        )

    def on_barrier_reply(self, dpid: int, xid: int) -> None:
        pending = self._pending_installs.pop(xid, None)
        if pending is not None:
            pending.timer.cancel()

    def _install_timed_out(self, xid: int) -> None:
        pending = self._pending_installs.pop(xid, None)
        if pending is None:
            return
        if (
            pending.attempt >= INSTALL_MAX_ATTEMPTS
            or pending.rule.dpid not in self.switches
        ):
            self._install_failures.inc()
            return
        self._install_retries.inc()
        self._send_install(
            pending.rule, pending.buffer_id,
            attempt=pending.attempt + 1,
            timeout_s=pending.timeout_s * 2,
        )

    # ==================================================================
    # Flow teardown

    def on_flow_removed(self, event: ofmsg.FlowRemoved) -> None:
        session = self.sessions.by_id(event.cookie)
        if session is None:
            return
        if event.packets > 0:
            # The session carried traffic: both endpoints were alive
            # until the idle timeout started counting (i.e. until
            # idle_timeout before the removal, not until now).
            active_until = self.sim.now - self.idle_timeout_s
            for mac in (session.src_mac, session.dst_mac):
                record = self.nib.host_by_mac(mac)
                if record is not None:
                    record.last_seen = max(record.last_seen, active_until)
        self._teardown_session(
            session,
            skip_rule=(event.dpid, event.match),
            packets=event.packets,
            bytes_=event.bytes,
        )

    def _teardown_session(
        self,
        session: Session,
        skip_rule: Optional[Tuple[int, object]] = None,
        packets: int = 0,
        bytes_: int = 0,
    ) -> None:
        for rule in session.rules:
            if skip_rule is not None and (
                rule.dpid == skip_rule[0] and rule.match == skip_rule[1]
            ):
                continue
            if rule.dpid in self.switches:
                self.send_flow_mod(
                    rule.dpid,
                    command=ofmsg.FlowMod.DELETE_STRICT,
                    match=rule.match,
                    priority=rule.priority,
                )
        self.balancer.release(session.flow)
        self.balancer.release(session.reverse_flow)
        self.sessions.end(session)
        self._session_duration_hist.observe(self.sim.now - session.created_at)
        self.log.emit(
            self.sim.now, EventKind.FLOW_END,
            session=session.session_id, user_mac=session.src_mac,
            packets=packets, bytes=bytes_,
            duration=self.sim.now - session.created_at,
        )

    # ==================================================================
    # Periodic maintenance

    def _expire_hosts(self) -> None:
        # A host with a live (unblocked) session is demonstrably
        # present even if it has not ARPed lately -- keep it.
        for record in self.nib.hosts.values():
            if self.sim.now - record.last_seen <= self.nib.host_timeout_s:
                continue
            if any(
                not session.blocked
                for session in self.sessions.sessions_of_user(record.mac)
            ):
                record.last_seen = self.sim.now
        for record in self.nib.expire_hosts(self.sim.now):
            if not record.is_element:
                self.log.emit(
                    self.sim.now, EventKind.HOST_LEAVE,
                    mac=record.mac, ip=record.ip,
                )
            for session in self.sessions.sessions_of_user(record.mac):
                self._teardown_session(session)

    def _expire_elements(self) -> None:
        for record in self.registry.expire(self.sim.now):
            self.log.emit(
                self.sim.now, EventKind.ELEMENT_OFFLINE, mac=record.mac,
                service_type=record.service_type,
            )
            affected = [
                session
                for session in self.sessions.sessions_via_element(record.mac)
                if not session.blocked
            ]
            self.balancer.forget_element(record.mac)
            for session in affected:
                self._failover_session(session, record.mac)

    # ------------------------------------------------------------------
    # Element failover

    def _failover_session(self, session: Session, dead_mac: str) -> None:
        """Re-steer a live session whose chain lost an element.

        The chain is re-dispatched through the balancer over the
        surviving elements; if no healthy element remains the policy's
        fail mode decides: *open* routes the session directly
        (uninspected), *closed* blocks it at the ingress."""
        outcome = self._attempt_failover(session, dead_mac)
        self._failover_counters[outcome].inc()
        self.log.emit(
            self.sim.now, EventKind.FLOW_FAILOVER,
            session=session.session_id, dead_element=dead_mac,
            outcome=outcome, user_mac=session.src_mac,
        )

    def _attempt_failover(self, session: Session, dead_mac: str) -> str:
        src = self.nib.host_by_mac(session.src_mac)
        dst = self.nib.host_by_mac(session.dst_mac)
        policy = self.policies.get(session.policy_name)
        # Free the whole chain's assignments before re-resolving:
        # surviving chain members would otherwise be counted twice
        # when the balancer assigns the replacement chain.
        self.balancer.release(session.flow)
        self.balancer.release(session.reverse_flow)
        if src is None or dst is None or policy is None:
            self._teardown_session(session)
            return "torn-down"
        resolved = self._resolve_chain(policy, session.flow, src)
        if resolved is None:
            if self._effective_fail_mode(policy) is FailMode.CLOSED:
                self._install_rule(
                    drop_rule(session.flow, src, cookie=session.session_id)
                )
                session.blocked = True
                self._count("flows_blocked")
                self.log.emit(
                    self.sim.now, EventKind.FLOW_BLOCKED,
                    user_mac=session.src_mac, dpid=src.dpid,
                    policy=policy.name,
                )
                return "fail-closed"
            waypoints: List[HostRecord] = []
            element_macs: List[str] = []
            outcome = "fail-open"
        else:
            waypoints, element_macs = resolved
            outcome = "recovered"
        try:
            new_rules = self._compute_session_rules(
                session.flow, src, dst, waypoints, policy, session.session_id
            )
        except RoutingError:
            self._teardown_session(session)
            return "torn-down"
        self._replace_session_rules(session, new_rules)
        session.element_macs = tuple(element_macs)
        return outcome

    def _replace_session_rules(
        self, session: Session, new_rules: List[RuleSpec]
    ) -> None:
        """Swap a session's installed entries for a new set, in place.

        New entries go in first: an old entry whose (dpid, match,
        priority) is reused is *replaced* by the FlowMod ADD rather
        than deleted -- critically this covers the ingress entry, whose
        deletion would raise a FlowRemoved carrying the session cookie
        and tear the session down mid-failover.  Old entries not
        reused are deleted silently (only the ingress entry ever
        carries ``send_flow_removed``, and it is always reused: same
        flow, same ingress port, same priority)."""
        new_keys = {(r.dpid, r.match, r.priority) for r in new_rules}
        for rule in new_rules:
            self._install_rule(rule)
        for rule in session.rules:
            if (rule.dpid, rule.match, rule.priority) in new_keys:
                continue
            if rule.dpid in self.switches:
                self.send_flow_mod(
                    rule.dpid,
                    command=ofmsg.FlowMod.DELETE_STRICT,
                    match=rule.match,
                    priority=rule.priority,
                )
        session.rules = new_rules

    # ==================================================================
    # Monitoring (port-stats polling -> link-load events)

    def register_port_capacity(self, dpid: int, port: int, bps: float) -> None:
        """Tell the monitor a port's line rate so it can normalize load."""
        self._port_capacity[(dpid, port)] = bps

    def _poll_stats(self) -> None:
        for dpid in list(self.switches):
            self.request_port_stats(dpid)

    def on_port_stats(self, event: ofmsg.PortStatsReply) -> None:
        now = self.sim.now
        for port, stats in event.stats.items():
            key = (event.dpid, port)
            tx_bytes = int(stats["tx_bytes"])
            previous = self._last_port_sample.get(key)
            self._last_port_sample[key] = (tx_bytes, now)
            if previous is None:
                continue
            prev_bytes, prev_time = previous
            elapsed = now - prev_time
            if elapsed <= 0:
                continue
            rate_bps = (tx_bytes - prev_bytes) * 8.0 / elapsed
            capacity = self._port_capacity.get(key)
            utilization = rate_bps / capacity if capacity else 0.0
            if rate_bps > 0:
                self.log.emit(
                    now, EventKind.LINK_LOAD,
                    dpid=event.dpid, port=port,
                    rate_bps=rate_bps, utilization=min(1.0, utilization),
                )

    def on_flow_stats(self, event: ofmsg.FlowStatsReply) -> None:
        for listener in list(self._flow_stats_listeners):
            listener(event)

    # ==================================================================
    # Introspection

    def status(self) -> ControllerStatus:
        """One-call overview used by examples, tests and the CLI.

        The result is a typed :class:`ControllerStatus`; it iterates
        and indexes like the historical dict, and ``.to_dict()``
        returns exactly the old shape.
        """
        return ControllerStatus(
            nib=self.nib.summary(),
            registry=self.registry.summary(),
            sessions=len(self.sessions),
            counters=dict(self.counters),
            events=len(self.log),
            metrics=self.metrics.snapshot(),
        )
