"""The session journal: a deployment's session history, replayable.

LiveSec manages a *long-running* network, so "what happened to this
user's sessions" must be answerable after the fact.  The journal folds
the segmented event log's session-lifecycle records -- open
(``flow-start``), steer, block, failover, handoff, close
(``flow-end``) -- into one ordered ledger plus a per-session history.

It works in two modes over the same folding logic:

* **live** -- :meth:`SessionJournal.attach` backfills from the log's
  retained events and then subscribes, so every future session event
  appends as it is emitted;
* **replay** -- :meth:`SessionJournal.replay` rebuilds the journal
  from a saved JSONL event stream (``EventLog.save``/``stream_to``),
  end to end.

Both modes produce the identical ledger for the same event stream,
which is what :meth:`digest` certifies: a sha256 over the canonical
JSON form of every journal record.  Two same-seed runs -- or a live
run and its replayed recording -- journal to equal digests; the
``ops-smoke`` make target asserts exactly that.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.events import EventKind, EventLog, NetworkEvent

__all__ = ["JournalRecord", "SessionHistory", "SessionJournal"]

#: Event-log kinds that constitute the session lifecycle, mapped to
#: the journal's action vocabulary.
JOURNAL_ACTIONS: Dict[str, str] = {
    EventKind.FLOW_START: "open",
    EventKind.FLOW_STEERED: "steer",
    EventKind.FLOW_BLOCKED: "block",
    EventKind.FLOW_FAILOVER: "failover",
    EventKind.SESSION_HANDOFF: "handoff",
    EventKind.FLOW_END: "close",
}


@dataclass(frozen=True)
class JournalRecord:
    """One session-lifecycle step, in deployment order.

    ``detail`` carries the source event's payload minus the session id
    (already lifted into :attr:`session`); :meth:`json_line` is the
    canonical form the digest hashes.
    """

    time: float
    session: int
    action: str
    detail: Dict[str, object] = field(default_factory=dict)

    def json_line(self) -> str:
        return json.dumps(
            {
                "time": self.time,
                "session": self.session,
                "action": self.action,
                "detail": self.detail,
            },
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )


@dataclass
class SessionHistory:
    """Everything the journal knows about one session id."""

    session_id: int
    records: List[JournalRecord] = field(default_factory=list)

    @property
    def opened_at(self) -> Optional[float]:
        for record in self.records:
            if record.action == "open":
                return record.time
        return None

    @property
    def closed_at(self) -> Optional[float]:
        for record in reversed(self.records):
            if record.action == "close":
                return record.time
        return None

    @property
    def open(self) -> bool:
        """Still live at the end of the journaled window."""
        return self.closed_at is None and self.opened_at is not None

    def actions(self) -> List[str]:
        return [record.action for record in self.records]


class SessionJournal:
    """An append-only ledger of session lifecycle steps."""

    def __init__(self) -> None:
        self._records: List[JournalRecord] = []
        self._sessions: Dict[int, SessionHistory] = {}

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def attach(cls, log: EventLog) -> "SessionJournal":
        """A live journal over ``log``: the retained history is folded
        in (segments already compacted away are gone -- the journal
        covers what the log still holds) and every future emit appends
        through the log's subscriber hook."""
        journal = cls()
        for event in log:
            journal.observe(event)
        log.subscribe(journal.observe)
        return journal

    @classmethod
    def replay(cls, path: str) -> "SessionJournal":
        """Rebuild the journal from a saved JSONL event stream."""
        journal = cls()
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                journal.observe(NetworkEvent(
                    time=float(row["time"]),
                    kind=str(row["kind"]),
                    data=dict(row.get("data", {})),
                ))
        return journal

    def observe(self, event: NetworkEvent) -> None:
        """Fold one event-log entry; non-session kinds are ignored."""
        action = JOURNAL_ACTIONS.get(event.kind)
        if action is None:
            return
        session_id = event.data.get("session")
        if session_id is None:
            return
        detail = {
            key: value
            for key, value in event.data.items()
            if key != "session"
        }
        record = JournalRecord(
            time=event.time,
            session=int(session_id),
            action=action,
            detail=detail,
        )
        self._records.append(record)
        history = self._sessions.get(record.session)
        if history is None:
            history = SessionHistory(session_id=record.session)
            self._sessions[record.session] = history
        history.records.append(record)

    # ------------------------------------------------------------------
    # Read path

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def records(self) -> List[JournalRecord]:
        return list(self._records)

    def session(self, session_id: int) -> Optional[SessionHistory]:
        return self._sessions.get(session_id)

    def sessions(self) -> List[SessionHistory]:
        """Per-session histories, ordered by session id."""
        return [self._sessions[sid] for sid in sorted(self._sessions)]

    def digest(self) -> str:
        """sha256 over the canonical JSONL form of the ledger.

        Equal for two same-seed runs and for a live journal vs. the
        replay of that run's recording -- the stability contract the
        ops smoke test asserts.
        """
        hasher = hashlib.sha256()
        for record in self._records:
            hasher.update(record.json_line().encode())
            hasher.update(b"\n")
        return hasher.hexdigest()

    def summary(self) -> Dict[str, int]:
        """Ledger totals by action, plus open/closed session counts."""
        counts = {action: 0 for action in
                  ("open", "steer", "block", "failover", "handoff",
                   "close")}
        for record in self._records:
            counts[record.action] += 1
        histories = self._sessions.values()
        return {
            "records": len(self._records),
            "sessions": len(self._sessions),
            "still_open": sum(1 for h in histories if h.open),
            **counts,
        }
