"""Controller introspection surfaces: status, counters, metric wiring.

Everything here preserves the pre-registry public API shapes --
``controller.counters`` reads like the old plain dict and
``controller.status()`` indexes like the old ad-hoc dict -- while the
values come from the one :class:`~repro.obs.MetricsRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, TYPE_CHECKING

from repro.obs import MetricsSnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import LiveSecController

# Legacy diagnostic counter names, preserved verbatim by the
# ``counters`` back-compat view (registry metric: ``controller.<name>``).
LEGACY_COUNTER_NAMES = (
    "arp_in",
    "service_messages",
    "flows_installed",
    "flows_blocked",
    "transit_ignored",
    "orphan_chain_frames",
    "no_element_fallback",
    "routing_deferred",
    "conntrack_reports",
    # Shard fabric (all zero in single-controller deployments).
    "handoff_deferred",
    "remote_rules_sent",
    "remote_rules_dropped",
    "remote_rules_unowned",
    "remote_rules_applied",
    "sessions_handed_off",
    "sessions_adopted",
    "handoff_dropped",
    "handoff_duplicate",
)


class CountersView(Mapping):
    """Read-only live view of the legacy diagnostics counters.

    Behaves like the old ``controller.counters`` dict for reads
    (lookup, iteration, ``dict(...)``), but the values come straight
    from the metrics registry -- there is exactly one source of truth.
    """

    __slots__ = ("_counters",)

    def __init__(self, counters: Dict[str, object]):
        self._counters = counters

    def __getitem__(self, name: str) -> int:
        return int(self._counters[name].value)

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def __repr__(self) -> str:
        return repr(dict(self))


@dataclass
class ControllerStatus(Mapping):
    """Typed result of :meth:`LiveSecController.status`.

    Iterates and indexes like the historical ad-hoc dict (the five
    legacy keys), so existing ``status()["nib"]`` call sites keep
    working; the full metrics snapshot rides along as ``.metrics``.
    """

    nib: Dict[str, object]
    registry: Dict[str, object]
    sessions: int
    counters: Dict[str, int]
    events: int
    metrics: MetricsSnapshot

    _LEGACY_KEYS = ("nib", "registry", "sessions", "counters", "events")

    def to_dict(self) -> dict:
        """The exact pre-redesign ``status()`` dict shape."""
        return {key: getattr(self, key) for key in self._LEGACY_KEYS}

    def __getitem__(self, key: str):
        if key not in self._LEGACY_KEYS:
            raise KeyError(key)
        return getattr(self, key)

    def __iter__(self) -> Iterator[str]:
        return iter(self._LEGACY_KEYS)

    def __len__(self) -> int:
        return len(self._LEGACY_KEYS)


def setup_controller_metrics(controller: "LiveSecController") -> None:
    """Register the controller's own metrics on its registry and hang
    the legacy-counter view and hot-path histograms off the instance."""
    registry = controller.metrics
    if hasattr(controller.sim, "attach_metrics"):
        controller.sim.attach_metrics(registry)
    controller.balancer.attach_metrics(registry)
    controller._legacy_counters = {
        name: registry.counter(
            f"controller.{name}", f"Legacy diagnostics counter {name!r}"
        )
        for name in LEGACY_COUNTER_NAMES
    }
    controller._counters_view = CountersView(controller._legacy_counters)
    # Hot-path latency histograms (wall clock: control-plane cost).
    controller._packet_in_hists = {
        kind: registry.histogram(
            "controller.packet_in_latency_s",
            "Wall-clock time spent handling one PacketIn",
            kind=kind,
        )
        for kind in ("arp", "dhcp", "service", "data")
    }
    registry.gauge(
        "controller.sessions_active", "Live (not torn down) sessions"
    ).set_function(lambda: len(controller.sessions))
    registry.gauge(
        "controller.hosts_known", "Hosts currently in the NIB"
    ).set_function(lambda: len(controller.nib.hosts))
    registry.gauge(
        "controller.policies", "Rows in the global policy table"
    ).set_function(lambda: len(controller.policies))
