"""The PLayer / pswitch baseline (Joseph, Tavakoli, Stoica 2008).

The paper's Section II criticizes PLayer on two counts: middleboxes
"have to be correctly wired with the accurate functional interfaces in
pswitches", and pswitches "should be deployed with security
middleboxes respectively for each end-to-end network tenant" -- i.e.
the middlebox serving a flow is the one *physically attached to its
pswitch*, with no network-wide pooling.

The model here: a :class:`PSwitch` is a learning switch that, per its
local policy, detours matching flows through its *locally attached*
middlebox before forwarding.  Under skewed load one pswitch's box
saturates while its neighbours idle -- the contrast the
architecture-comparison bench (E11) quantifies against LiveSec's
global load balancing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.traditional import INSIDE_PORT, InlineMiddlebox
from repro.net.host import Host
from repro.net.legacy import LegacySwitch
from repro.net.node import Node, connect
from repro.net.packet import (
    ETH_TYPE_ARP,
    Ethernet,
    ip_address,
    mac_address,
)
from repro.net.simulator import Simulator

MAC_AGING_S = 300.0


class PSwitch(Node):
    """A policy-aware switch with one locally wired middlebox port.

    IP frames from host ports whose destination matches
    ``steer_dst_ip`` take the detour host-port -> middlebox ->
    onward; everything else is plain learning-switch forwarding.
    The middlebox hangs one-armed off ``middlebox_port``: frames sent
    to it come back on the same port, flagged as processed.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        steer_dst_ip: Optional[str] = None,
    ):
        super().__init__(sim, name)
        self.steer_dst_ip = steer_dst_ip
        self.middlebox_port: Optional[int] = None
        self.host_ports: Set[int] = set()
        self.mac_table: Dict[str, Tuple[int, float]] = {}
        self.steered = 0

    def receive(self, frame: Ethernet, in_port: int) -> None:
        self.mac_table[frame.src] = (in_port, self.sim.now)
        if frame.ethertype == ETH_TYPE_ARP:
            self._forward(frame, in_port)
            return
        came_from_middlebox = in_port == self.middlebox_port
        if came_from_middlebox:
            self._forward(frame, in_port)
            return
        if self._needs_steering(frame, in_port):
            self.steered += 1
            self.send(frame, self.middlebox_port)  # type: ignore[arg-type]
            return
        self._forward(frame, in_port)

    def _needs_steering(self, frame: Ethernet, in_port: int) -> bool:
        if self.middlebox_port is None or in_port not in self.host_ports:
            return False
        ip = frame.ip()
        if ip is None:
            return False
        return self.steer_dst_ip is None or ip.dst == self.steer_dst_ip

    def _forward(self, frame: Ethernet, in_port: int) -> None:
        entry = self.mac_table.get(frame.dst)
        if entry is not None and self.sim.now - entry[1] <= MAC_AGING_S:
            out_port, _ = entry
            if out_port != in_port:
                self.send(frame, out_port)
            return
        for port in self.attached_ports():
            if port.number == in_port or port.number == self.middlebox_port:
                continue
            self.send(frame.clone(), port.number)


class _OneArmedMiddlebox(InlineMiddlebox):
    """An InlineMiddlebox whose traffic re-exits the arm it entered."""

    def _finish(self, frame: Ethernet, in_port: int) -> None:
        self._queue_bytes -= frame.size
        self.processed_packets += 1
        self.processed_bytes += frame.size
        if self._is_malicious(frame):
            self.dropped_malicious += 1
            return
        self.send(frame, in_port)


@dataclass
class PSwitchNetwork:
    """A built PLayer deployment."""

    sim: Simulator
    core: LegacySwitch
    pswitches: List[PSwitch]
    middleboxes: List[InlineMiddlebox]
    hosts: List[Host]
    gateway: Host
    metrics: Optional[object] = None

    def attach_metrics(self, registry) -> "PSwitchNetwork":
        """Report this baseline through the same obs registry type a
        LiveSec run uses (per-middlebox gauges/histograms plus the
        pswitch steering counters)."""
        self.metrics = registry
        self.sim.attach_metrics(registry)
        for middlebox in self.middleboxes:
            middlebox.attach_metrics(registry)
        for pswitch in self.pswitches:
            registry.gauge(
                "pswitch.steered",
                "Frames detoured through the local middlebox",
                switch=pswitch.name,
            ).set_function(lambda p=pswitch: p.steered)
        return self

    def host(self, name: str) -> Host:
        for host in self.hosts:
            if host.name == name:
                return host
        raise KeyError(name)

    def run(self, duration_s: float) -> None:
        self.sim.run(until=self.sim.now + duration_s)

    def announce_all(self) -> None:
        for host in self.hosts:
            host.announce()
        self.gateway.announce()

    def middlebox_utilizations(self, window_start: float) -> List[float]:
        return [m.utilization(window_start) for m in self.middleboxes]


def build_pswitch_network(
    sim: Optional[Simulator] = None,
    num_pswitches: int = 4,
    hosts_per_pswitch: int = 2,
    middlebox_capacity_bps: float = 500e6,
    host_bandwidth_bps: float = 100e6,
    gateway_ip: str = "10.255.255.254",
) -> PSwitchNetwork:
    """PLayer: per-pswitch middleboxes, statically wired.

    Each pswitch steers gateway-bound IP traffic from its hosts
    through its own middlebox only.
    """
    if sim is None:
        sim = Simulator()
    core = LegacySwitch(sim, "core", bridge_id=1)
    pswitches: List[PSwitch] = []
    middleboxes: List[InlineMiddlebox] = []
    hosts: List[Host] = []
    host_index = 1
    for index in range(num_pswitches):
        pswitch = PSwitch(sim, f"psw{index + 1}", steer_dst_ip=gateway_ip)
        connect(sim, pswitch, core, bandwidth_bps=1e9, delay_s=50e-6)
        middlebox = _OneArmedMiddlebox(
            sim, f"mbox{index + 1}", capacity_bps=middlebox_capacity_bps
        )
        mbox_port = pswitch.next_free_port().number
        connect(sim, pswitch, middlebox, bandwidth_bps=1e9, delay_s=5e-6,
                port_a=mbox_port, port_b=INSIDE_PORT)
        pswitch.middlebox_port = mbox_port
        for _ in range(hosts_per_pswitch):
            host = Host(
                sim, f"h{host_index}",
                mac_address(host_index), ip_address(host_index),
            )
            host_port = pswitch.next_free_port().number
            connect(sim, pswitch, host, bandwidth_bps=host_bandwidth_bps,
                    delay_s=20e-6, port_a=host_port, port_b=1)
            pswitch.host_ports.add(host_port)
            hosts.append(host)
            host_index += 1
        pswitches.append(pswitch)
        middleboxes.append(middlebox)

    gateway = Host(sim, "gateway", "00:00:00:00:ff:fe", gateway_ip)
    connect(sim, core, gateway, bandwidth_bps=1e9, delay_s=20e-6)
    return PSwitchNetwork(
        sim=sim, core=core, pswitches=pswitches, middleboxes=middleboxes,
        hosts=hosts, gateway=gateway,
    )
