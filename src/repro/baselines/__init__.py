"""Baseline architectures LiveSec is compared against.

* :mod:`repro.baselines.traditional` -- the conventional design of the
  paper's Figure 1: plain legacy switching with a single
  high-performance middlebox inline at the Internet gateway.  It shows
  the single-point bottleneck and the lack of end-to-end coverage.
* :mod:`repro.baselines.pswitch` -- the PLayer/pswitch design (Joseph
  et al., SIGCOMM 2008), the paper's closest related work: policy-aware
  switches steer flows through middleboxes, but each middlebox is
  statically wired to a specific pswitch, so there is no global load
  balancing and capacity cannot pool across work zones.
"""

from repro.baselines.traditional import (
    InlineMiddlebox,
    TraditionalNetwork,
    build_traditional_network,
)
from repro.baselines.pswitch import PSwitch, PSwitchNetwork, build_pswitch_network

__all__ = [
    "InlineMiddlebox",
    "TraditionalNetwork",
    "build_traditional_network",
    "PSwitch",
    "PSwitchNetwork",
    "build_pswitch_network",
]
