"""The traditional architecture (paper Figure 1).

Hosts hang off plain legacy switching; one security middlebox sits
*inline* on the gateway path.  All Internet-bound traffic serializes
through that box, so (a) its capacity is the network's security
capacity -- the single point of performance bottleneck the paper's
introduction criticizes -- and (b) east-west traffic between hosts
never touches it, the "poor end-to-end security coverage" problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.elements.signatures import DEFAULT_IDS_RULES, IdsRule
from repro.net.host import Host
from repro.net.legacy import LegacySwitch
from repro.net.node import Node, connect
from repro.net.packet import Ethernet, Tcp, extract_nine_tuple
from repro.net.simulator import Simulator

INSIDE_PORT = 1
OUTSIDE_PORT = 2


class InlineMiddlebox(Node):
    """A two-armed inline middlebox with a processing-capacity model.

    Frames entering one arm are queued, charged processing time, then
    forwarded out the other arm.  With ``rules`` set it also performs
    inline intrusion detection and silently drops matching frames
    (traditional middleboxes enforce locally; there is no controller
    to report to).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        capacity_bps: float = 1e9,
        per_packet_cost_s: float = 4.5e-6,
        max_queue_bytes: int = 2_000_000,
        rules: Optional[Sequence[IdsRule]] = None,
    ):
        super().__init__(sim, name)
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive (got {capacity_bps})")
        self.capacity_bps = capacity_bps
        self.per_packet_cost_s = per_packet_cost_s
        self.max_queue_bytes = max_queue_bytes
        self.rules = tuple(rules) if rules is not None else ()
        self._busy_until = 0.0
        self._queue_bytes = 0
        self.busy_time_total = 0.0
        self.processed_packets = 0
        self.processed_bytes = 0
        self.dropped_overload = 0
        self.dropped_malicious = 0
        self._process_hist = None

    def attach_metrics(self, registry) -> None:
        """Publish this middlebox through an obs registry with the
        same metric vocabulary LiveSec elements report, so baseline
        and LiveSec runs export comparably."""
        labels = {"box": self.name}
        registry.gauge(
            "middlebox.processed_packets", "Frames fully processed", **labels,
        ).set_function(lambda: self.processed_packets)
        registry.gauge(
            "middlebox.processed_bytes", "Bytes fully processed", **labels,
        ).set_function(lambda: self.processed_bytes)
        registry.gauge(
            "middlebox.dropped_overload", "Frames dropped queue-full", **labels,
        ).set_function(lambda: self.dropped_overload)
        registry.gauge(
            "middlebox.dropped_malicious", "Frames dropped by IDS rules",
            **labels,
        ).set_function(lambda: self.dropped_malicious)
        registry.gauge(
            "middlebox.queue_bytes", "Bytes queued awaiting processing",
            **labels,
        ).set_function(lambda: self._queue_bytes)
        self._process_hist = registry.histogram(
            "middlebox.process_s",
            "Simulated per-frame processing time (serialization + fixed cost)",
            **labels,
        )

    def receive(self, frame: Ethernet, in_port: int) -> None:
        if in_port not in (INSIDE_PORT, OUTSIDE_PORT):
            return
        if self._queue_bytes + frame.size > self.max_queue_bytes:
            self.dropped_overload += 1
            return
        cost = frame.size * 8.0 / self.capacity_bps + self.per_packet_cost_s
        if self._process_hist is not None:
            self._process_hist.observe(cost)
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + cost
        self.busy_time_total += cost
        self._queue_bytes += frame.size
        self.sim.schedule_at(self._busy_until, self._finish, frame, in_port)

    def _finish(self, frame: Ethernet, in_port: int) -> None:
        self._queue_bytes -= frame.size
        self.processed_packets += 1
        self.processed_bytes += frame.size
        if self._is_malicious(frame):
            self.dropped_malicious += 1
            return
        out_port = OUTSIDE_PORT if in_port == INSIDE_PORT else INSIDE_PORT
        self.send(frame, out_port)

    def _is_malicious(self, frame: Ethernet) -> bool:
        if not self.rules:
            return False
        flow = extract_nine_tuple(frame)
        payload = frame.app_payload()
        transport = frame.transport()
        tcp_flags = transport.flags if isinstance(transport, Tcp) else None
        return any(
            rule.matches(payload, flow.nw_proto, flow.tp_dst, tcp_flags)
            for rule in self.rules
        )

    def utilization(self, window_start: float) -> float:
        elapsed = self.sim.now - window_start
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time_total / elapsed)


@dataclass
class TraditionalNetwork:
    """A built traditional deployment."""

    sim: Simulator
    core: LegacySwitch
    access: List[LegacySwitch]
    hosts: List[Host]
    middlebox: Optional[InlineMiddlebox]
    gateway: Host
    metrics: Optional[object] = None

    def attach_metrics(self, registry) -> "TraditionalNetwork":
        """Report this baseline through the same obs registry type a
        LiveSec run uses, so benchmarks and the CLI can export both
        sides with identical machinery."""
        self.metrics = registry
        self.sim.attach_metrics(registry)
        if self.middlebox is not None:
            self.middlebox.attach_metrics(registry)
        return self

    def host(self, name: str) -> Host:
        for host in self.hosts:
            if host.name == name:
                return host
        raise KeyError(name)

    def run(self, duration_s: float) -> None:
        self.sim.run(until=self.sim.now + duration_s)

    def announce_all(self) -> None:
        for host in self.hosts:
            host.announce()
        self.gateway.announce()


def build_traditional_network(
    sim: Optional[Simulator] = None,
    num_access: int = 2,
    hosts_per_access: int = 2,
    host_bandwidth_bps: float = 100e6,
    middlebox_capacity_bps: float = 1e9,
    with_middlebox: bool = True,
    with_ids_rules: bool = True,
) -> TraditionalNetwork:
    """Figure 1: access switches -> core -> [inline middlebox] -> gateway.

    ``with_middlebox=False`` gives the pure legacy path used as the
    latency baseline in Section V.B.3.
    """
    if sim is None:
        sim = Simulator()
    core = LegacySwitch(sim, "core", bridge_id=1)
    access: List[LegacySwitch] = []
    hosts: List[Host] = []
    host_index = 1
    for a in range(num_access):
        switch = LegacySwitch(sim, f"acc{a + 1}", bridge_id=10 + a)
        connect(sim, switch, core, bandwidth_bps=1e9, delay_s=50e-6)
        access.append(switch)
        for _ in range(hosts_per_access):
            from repro.net.packet import ip_address, mac_address

            host = Host(
                sim, f"h{host_index}",
                mac_address(host_index), ip_address(host_index),
            )
            connect(sim, switch, host, bandwidth_bps=host_bandwidth_bps,
                    delay_s=20e-6)
            hosts.append(host)
            host_index += 1

    gateway = Host(sim, "gateway", "00:00:00:00:ff:fe", "10.255.255.254")
    middlebox: Optional[InlineMiddlebox] = None
    if with_middlebox:
        middlebox = InlineMiddlebox(
            sim, "mbox",
            capacity_bps=middlebox_capacity_bps,
            rules=DEFAULT_IDS_RULES if with_ids_rules else None,
        )
        connect(sim, core, middlebox, bandwidth_bps=1e9, delay_s=20e-6,
                port_b=INSIDE_PORT)
        connect(sim, middlebox, gateway, bandwidth_bps=1e9, delay_s=20e-6,
                port_a=OUTSIDE_PORT)
    else:
        connect(sim, core, gateway, bandwidth_bps=1e9, delay_s=20e-6)
    return TraditionalNetwork(
        sim=sim, core=core, access=access, hosts=hosts,
        middlebox=middlebox, gateway=gateway,
    )
