"""Metrics: throughput, latency summaries, periodic sampling.

These are the measurement primitives every bench uses to turn raw
simulator state (byte counters, RTT lists, element loads) into the
numbers the paper reports.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence


def mbps(bits: float, seconds: float) -> float:
    """Bits over a window, in megabits per second."""
    if seconds <= 0:
        return 0.0
    return bits / seconds / 1e6


def windowed_goodput_bps(
    bytes_before: int, bytes_after: int, window_s: float
) -> float:
    """Delivered rate between two byte-counter snapshots."""
    if window_s <= 0:
        return 0.0
    return (bytes_after - bytes_before) * 8.0 / window_s


def percentile(values: Sequence[float], p: float) -> float:
    """The p-th percentile (0..100) by linear interpolation."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError(f"p must be in [0, 100], got {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    interpolated = ordered[low] * (1 - weight) + ordered[high] * weight
    # Clamp: float interpolation may land an ulp outside the sample.
    return min(max(interpolated, ordered[0]), ordered[-1])


def summarize_latencies(latencies: Sequence[float]) -> Dict[str, float]:
    """mean / p50 / p95 / max of a latency sample, in seconds."""
    if not latencies:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "count": len(latencies),
        "mean": sum(latencies) / len(latencies),
        "p50": percentile(latencies, 50),
        "p95": percentile(latencies, 95),
        "max": max(latencies),
    }


class Sampler:
    """Collect ``fn()`` every ``interval_s`` of simulated time.

    >>> # sampler = Sampler(sim, 1.0, lambda: element.cpu_utilization())
    >>> # ...run sim... sampler.values -> one reading per second
    """

    def __init__(self, sim, interval_s: float, fn: Callable[[], float],
                 start: Optional[float] = None):
        self.sim = sim
        self.fn = fn
        self.times: List[float] = []
        self.values: List[float] = []
        self._handle = sim.every(interval_s, self._sample, start=start)

    def _sample(self) -> None:
        self.times.append(self.sim.now)
        self.values.append(self.fn())

    def stop(self) -> None:
        self._handle.cancel()

    def mean(self) -> float:
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None
