"""Plain-text result tables for the benchmark harness output."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table with a title line, for bench stdout.

    >>> print(format_table(["a", "b"], [[1, 2.5]], title="demo"))
    == demo ==
    a  b
    -  ---
    1  2.5
    """
    rendered: List[List[str]] = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered))
        if rendered
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}" if abs(value) < 1000 else f"{value:.0f}"
    return str(value)
