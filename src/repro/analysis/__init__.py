"""Measurement and reporting utilities for the evaluation harness."""

from repro.analysis.metrics import (
    Sampler,
    mbps,
    percentile,
    summarize_latencies,
    windowed_goodput_bps,
)
from repro.analysis.tables import format_table

__all__ = [
    "Sampler",
    "mbps",
    "percentile",
    "summarize_latencies",
    "windowed_goodput_bps",
    "format_table",
]
