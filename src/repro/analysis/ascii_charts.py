"""Tiny ASCII chart helpers for terminal output.

The original WebUI rendered link-load and element-load graphs in
Flash; the CLI and examples render the same series as sparklines and
horizontal bar charts so a deployment can be eyeballed from a
terminal.
"""

from __future__ import annotations

from typing import Dict, Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], maximum: float = None) -> str:
    """A one-line unicode sparkline of a series.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    """
    if not values:
        return ""
    top = maximum if maximum is not None else max(values)
    if top <= 0:
        return _SPARK_LEVELS[0] * len(values)
    chars = []
    for value in values:
        clamped = min(max(value, 0.0), top)
        index = round(clamped / top * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def bar_chart(
    data: Dict[str, float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bars, one per labelled value.

    >>> print(bar_chart({"a": 2.0, "b": 1.0}, width=4))
    a  ████ 2
    b  ██   1
    """
    if not data:
        return ""
    top = max(data.values()) or 1.0
    label_width = max(len(label) for label in data)
    lines = []
    for label, value in data.items():
        filled = round(max(value, 0.0) / top * width)
        bar = ("█" * filled).ljust(width)
        rendered = f"{value:g}{unit}"
        lines.append(f"{label.ljust(label_width)}  {bar} {rendered}")
    return "\n".join(lines)


def utilization_meter(fraction: float, width: int = 20) -> str:
    """A [####----] 42% meter for link/CPU utilization."""
    clamped = min(max(fraction, 0.0), 1.0)
    filled = round(clamped * width)
    return f"[{'#' * filled}{'-' * (width - filled)}] {clamped * 100:.0f}%"
