"""The OpenFlow switch datapath (our Open vSwitch stand-in).

Behavior mirrors OpenFlow 1.0: a frame is matched against the flow
table; on a hit the entry's actions run in sequence (header rewrites
affect later outputs); on a miss the frame is buffered and punted to
the controller as a PacketIn.  FlowMod/PacketOut/stats messages from
the controller are handled as the spec describes, including releasing
buffered frames via ``buffer_id`` and FlowRemoved notifications for
expired entries.

The datapath charges a small per-frame ``forwarding_delay_s``
(software-switch lookup cost).  This is what makes the LiveSec path
measurably slower than pure legacy switching -- the +10 % latency
result of Section V.B.3.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Optional, Tuple

from repro.net.node import Node
from repro.net.packet import Ethernet
from repro.openflow import messages as msg
from repro.openflow import pathproof
from repro.openflow.actions import (
    Action,
    CONTROLLER_PORT,
    FLOOD_PORT,
    Output,
    PopPathTag,
)
from repro.openflow.channel import SecureChannel
from repro.openflow.flowtable import FlowEntry, FlowTable

# "Compromised switch" misbehavior variants the fault harness injects
# (None = honest).  See DESIGN §7 threat model.
COMPROMISE_VARIANTS = ("skip-waypoint", "misroute", "tag-strip")

DEFAULT_FORWARDING_DELAY_S = 25e-6
EXPIRY_SWEEP_INTERVAL_S = 1.0
MAX_BUFFERED_FRAMES = 4096
MAX_PENDING_REPLIES = 512


def _last_emitting_index(actions: Tuple[Action, ...]) -> int:
    """Index of the final Output action, or -1 when the original frame
    cannot be handed over (e.g. a rewrite follows the last output and
    would mutate a frame already in flight)."""
    last = -1
    for index, action in enumerate(actions):
        if isinstance(action, Output):
            last = index
    if last >= 0 and any(
        not isinstance(action, Output) for action in actions[last + 1:]
    ):
        return -1
    return last


class OpenFlowSwitch(Node):
    """An OpenFlow-enabled switch (AS switch in LiveSec terms)."""

    def __init__(
        self,
        sim,
        name: str,
        dpid: int,
        forwarding_delay_s: float = DEFAULT_FORWARDING_DELAY_S,
    ):
        super().__init__(sim, name)
        self.dpid = dpid
        self.table = FlowTable()
        self.channel: Optional[SecureChannel] = None
        self.forwarding_delay_s = forwarding_delay_s
        self._buffers: "OrderedDict[int, Tuple[Ethernet, int]]" = OrderedDict()
        self._buffer_ids = itertools.count(1)
        # State-bearing messages (FlowRemoved) raised while the channel
        # is down are parked here and flushed on reconnect, so the
        # controller's session store never silently diverges from the
        # datapath across an outage.
        self._pending_replies: list = []
        self.packet_ins = 0
        self.packets_forwarded = 0
        self.packets_dropped = 0
        # Forwarding accountability: the per-switch stamping key (the
        # deployment overrides this when built with a non-default
        # secret) and the injected-misbehavior state.
        self.path_secret = pathproof.derive_switch_secret(
            pathproof.DEFAULT_SECRET, dpid
        )
        self.compromised: Optional[str] = None
        self.compromised_port: Optional[int] = None
        self.path_marks_stamped = 0
        self.path_proofs_sent = 0
        self.waypoints_skipped = 0
        self.frames_misrouted = 0
        self.tags_stripped = 0
        self.metrics = None
        sim.every(
            EXPIRY_SWEEP_INTERVAL_S,
            self._sweep_expired,
            start=sim.now + EXPIRY_SWEEP_INTERVAL_S + (dpid % 13) * 1e-3,
        )

    # ------------------------------------------------------------------
    # Observability

    def attach_metrics(self, registry) -> None:
        """Publish this datapath's state through an obs registry.

        Pull-mode gauges keyed by dpid: nothing is added to the
        per-frame fast path, the registry reads the live attributes at
        snapshot time.
        """
        self.metrics = registry
        labels = {"dpid": self.dpid}
        registry.gauge(
            "switch.flow_table_entries",
            "Installed flow entries (table occupancy)", **labels,
        ).set_function(lambda: len(self.table))
        registry.gauge(
            "switch.buffered_frames",
            "Frames parked awaiting a controller verdict", **labels,
        ).set_function(lambda: len(self._buffers))
        registry.gauge(
            "switch.packet_ins", "Frames punted to the controller", **labels,
        ).set_function(lambda: self.packet_ins)
        registry.gauge(
            "switch.packets_forwarded", "Frames emitted by actions", **labels,
        ).set_function(lambda: self.packets_forwarded)
        registry.gauge(
            "switch.packets_dropped",
            "Frames dropped (drop entries, dead channel)", **labels,
        ).set_function(lambda: self.packets_dropped)
        self.table.attach_metrics(registry, **labels)

    # ------------------------------------------------------------------
    # Data plane

    def compromise(self, variant: str, port: Optional[int] = None) -> None:
        """Make this datapath misbehave (fault-harness hook).

        ``skip-waypoint`` forwards tagged frames past a local service
        element in one rule traversal; ``misroute`` outputs tagged
        frames to ``port`` instead of the rule's port; ``tag-strip``
        removes accountability tags and never stamps.
        """
        if variant not in COMPROMISE_VARIANTS:
            raise ValueError(
                f"variant must be one of {COMPROMISE_VARIANTS} (got {variant})"
            )
        self.compromised = variant
        self.compromised_port = port

    def restore_integrity(self) -> None:
        """Undo :meth:`compromise` (operator reimaged the switch)."""
        self.compromised = None
        self.compromised_port = None

    def receive(self, frame: Ethernet, in_port: int) -> None:
        entry = self.table.lookup(frame, in_port, self.sim.now)
        # Entries observed expired are evicted by the lookup itself, so
        # table occupancy and FlowRemoved timing always agree with what
        # the datapath honored -- notify the controller immediately
        # instead of waiting for the next sweep tick.
        for removed in self.table.take_removed():
            if removed.entry.send_flow_removed:
                self._send_flow_removed(removed.entry, removed.reason)
        if entry is None:
            self._punt_to_controller(frame, in_port, reason="no_match")
            return
        if entry.is_drop:
            self.packets_dropped += 1
            return
        actions = entry.actions
        if (
            self.compromised == "skip-waypoint"
            and frame.path_tag is not None
        ):
            actions = self._skip_waypoint_actions(frame, actions)
        self.sim.schedule(
            self.forwarding_delay_s, self._apply_actions, frame, in_port, actions
        )

    def _skip_waypoint_actions(
        self, frame: Ethernet, actions: Tuple[Action, ...]
    ) -> Tuple[Action, ...]:
        """The skip-waypoint misbehavior: when the matched rule would
        hand a tagged frame to a locally attached service element,
        forward it straight through as if the element had already
        returned it -- one rule traversal (and one path-proof stamp)
        instead of two, which is exactly what breaks the mark chain at
        this switch's position."""
        element_port = None
        for action in actions:
            if isinstance(action, Output) and action.port > 0:
                port = self.ports.get(action.port)
                peer = port.peer() if port is not None else None
                # Host-facing ports (hosts carry a MAC; switches don't)
                # are where service elements hang off the datapath.
                if peer is not None and getattr(peer.node, "mac", None):
                    element_port = action.port
                break
        if element_port is None:
            return actions
        onward = self.table.lookup(frame, element_port, self.sim.now)
        if onward is None or onward.is_drop or onward.actions == actions:
            return actions
        self.waypoints_skipped += 1
        return onward.actions

    def _apply_actions(
        self, frame: Ethernet, in_port: int, actions: Tuple[Action, ...]
    ) -> None:
        if self.compromised == "tag-strip" and frame.path_tag is not None:
            frame.path_tag = None
            self.tags_stripped += 1
        outputs = 0
        stamped = False
        last_emit = _last_emitting_index(actions)
        for index, action in enumerate(actions):
            if isinstance(action, Output):
                if frame.path_tag is not None and not stamped:
                    frame.path_tag = frame.path_tag.stamped(
                        self.path_secret, self.dpid
                    )
                    self.path_marks_stamped += 1
                    stamped = True
                # Only clone when the frame is emitted again later; the
                # final emission may hand over the original (fast path).
                emit = frame if index == last_emit else frame.clone()
                if action.port == CONTROLLER_PORT:
                    self._punt_to_controller(emit, in_port, reason="action")
                elif action.port == FLOOD_PORT:
                    outputs += self.flood(emit, in_port)
                else:
                    out_port = action.port
                    if (
                        self.compromised == "misroute"
                        and frame.path_tag is not None
                        and self.compromised_port is not None
                        and self.compromised_port != out_port
                        and self.compromised_port in self.ports
                    ):
                        out_port = self.compromised_port
                        self.frames_misrouted += 1
                    if self.send(emit, out_port):
                        outputs += 1
            elif isinstance(action, PopPathTag):
                # Egress: stamp our own mark first, then strip the tag
                # and report the accumulated chain for verification.
                if frame.path_tag is not None and not stamped:
                    frame.path_tag = frame.path_tag.stamped(
                        self.path_secret, self.dpid
                    )
                    self.path_marks_stamped += 1
                    stamped = True
                tag = frame.path_tag
                frame.path_tag = None
                if tag is not None:
                    self.path_proofs_sent += 1
                    self._reply(msg.PathProofReport(
                        dpid=self.dpid,
                        cookie=tag.descriptor.session_id,
                        descriptor=tag.descriptor,
                        marks=tag.marks,
                    ))
            else:
                action.apply(frame)
        self.packets_forwarded += outputs

    def _punt_to_controller(self, frame: Ethernet, in_port: int, reason: str) -> None:
        if self.channel is None or not self.channel.connected:
            self.packets_dropped += 1
            return
        buffer_id = next(self._buffer_ids)
        self._buffers[buffer_id] = (frame, in_port)
        while len(self._buffers) > MAX_BUFFERED_FRAMES:
            self._buffers.popitem(last=False)
        self.packet_ins += 1
        self.channel.to_controller(
            msg.PacketIn(
                dpid=self.dpid,
                in_port=in_port,
                frame=frame,
                buffer_id=buffer_id,
                reason=reason,
            )
        )

    # ------------------------------------------------------------------
    # Control plane

    def handle_of_message(self, message: msg.Message) -> None:
        """Process a controller-to-switch message."""
        if isinstance(message, msg.FlowMod):
            # A rule change can invalidate any fast-forwarded path; the
            # fluid region (if any) must replay affected flows at
            # packet fidelity from this instant on.  PacketOuts and
            # stats polls deliberately do NOT materialize: LLDP beacons
            # and monitor sweeps are periodic background chatter.
            fluid = getattr(self.sim, "fluid", None)
            if fluid is not None:
                fluid.materialize_all("flowmod")
            self._handle_flow_mod(message)
        elif isinstance(message, msg.PacketOut):
            self._handle_packet_out(message)
        elif isinstance(message, msg.PortStatsRequest):
            self._handle_port_stats(message)
        elif isinstance(message, msg.FlowStatsRequest):
            self._handle_flow_stats(message)
        elif isinstance(message, msg.EchoRequest):
            self._reply(msg.EchoReply(dpid=self.dpid, payload=message.payload))
        elif isinstance(message, msg.BarrierRequest):
            self._reply(msg.BarrierReply(dpid=self.dpid, xid=message.xid))
        else:
            raise TypeError(f"unhandled OpenFlow message: {message!r}")

    def _handle_flow_mod(self, mod: msg.FlowMod) -> None:
        now = self.sim.now
        if mod.command == msg.FlowMod.ADD:
            self.table.add(
                FlowEntry(
                    match=mod.match,
                    actions=tuple(mod.actions),
                    priority=mod.priority,
                    idle_timeout=mod.idle_timeout,
                    hard_timeout=mod.hard_timeout,
                    cookie=mod.cookie,
                    send_flow_removed=mod.send_flow_removed,
                ),
                now,
            )
        elif mod.command == msg.FlowMod.MODIFY:
            modified = self.table.modify(mod.match, tuple(mod.actions), now)
            if modified == 0:
                # OpenFlow semantics: MODIFY with no match behaves as ADD.
                self.table.add(
                    FlowEntry(
                        match=mod.match,
                        actions=tuple(mod.actions),
                        priority=mod.priority,
                        idle_timeout=mod.idle_timeout,
                        hard_timeout=mod.hard_timeout,
                        cookie=mod.cookie,
                    ),
                    now,
                )
        elif mod.command in (msg.FlowMod.DELETE, msg.FlowMod.DELETE_STRICT):
            strict = mod.command == msg.FlowMod.DELETE_STRICT
            removed = self.table.delete(
                mod.match, strict=strict, priority=mod.priority if strict else None
            )
            for entry in removed:
                if entry.send_flow_removed:
                    self._send_flow_removed(entry, "delete")
        else:
            raise ValueError(f"unknown FlowMod command: {mod.command}")

        if mod.buffer_id is not None and mod.command in (
            msg.FlowMod.ADD,
            msg.FlowMod.MODIFY,
        ):
            buffered = self._buffers.pop(mod.buffer_id, None)
            if buffered is not None:
                frame, in_port = buffered
                if mod.actions:
                    self.sim.schedule(
                        self.forwarding_delay_s,
                        self._apply_actions,
                        frame,
                        in_port,
                        tuple(mod.actions),
                    )

    def _handle_packet_out(self, out: msg.PacketOut) -> None:
        frame: Optional[Ethernet] = out.frame
        in_port = out.in_port if out.in_port is not None else 0
        if out.buffer_id is not None:
            buffered = self._buffers.pop(out.buffer_id, None)
            if buffered is None:
                return
            frame, in_port = buffered
        if frame is None:
            return
        self.sim.schedule(
            self.forwarding_delay_s, self._apply_actions, frame, in_port,
            tuple(out.actions),
        )

    def _handle_port_stats(self, request: msg.PortStatsRequest) -> None:
        stats = {}
        for number, port in sorted(self.ports.items()):
            if request.port is not None and number != request.port:
                continue
            stats[number] = {
                "tx_packets": port.tx_packets,
                "tx_bytes": port.tx_bytes,
                "rx_packets": port.rx_packets,
                "rx_bytes": port.rx_bytes,
                "tx_drops": port.tx_drops,
            }
        self._reply(msg.PortStatsReply(dpid=self.dpid, stats=stats))

    def _handle_flow_stats(self, request: msg.FlowStatsRequest) -> None:
        entries = tuple(
            {
                "match": entry.match,
                "priority": entry.priority,
                "cookie": entry.cookie,
                "packets": entry.packets,
                "bytes": entry.bytes,
                "age_s": self.sim.now - entry.created_at,
            }
            for entry in self.table
            if entry.match.is_subset_of(request.match)
        )
        self._reply(msg.FlowStatsReply(dpid=self.dpid, entries=entries))

    def _sweep_expired(self) -> None:
        for removed in self.table.expire(self.sim.now):
            if removed.entry.send_flow_removed:
                self._send_flow_removed(removed.entry, removed.reason)

    def _send_flow_removed(self, entry: FlowEntry, reason: str) -> None:
        self._reply(
            msg.FlowRemoved(
                dpid=self.dpid,
                match=entry.match,
                priority=entry.priority,
                cookie=entry.cookie,
                reason=reason,
                duration_s=self.sim.now - entry.created_at,
                packets=entry.packets,
                bytes=entry.bytes,
            )
        )

    def _reply(self, message: msg.Message) -> None:
        if self.channel is not None and self.channel.connected:
            self.channel.to_controller(message)
            return
        # Channel down: keep FlowRemoved (bounded) for the reconnect
        # flush; periodic stats replies are droppable, the controller
        # simply polls again.
        if isinstance(message, msg.FlowRemoved) and \
                len(self._pending_replies) < MAX_PENDING_REPLIES:
            self._pending_replies.append(message)

    def on_channel_connected(self) -> None:
        """Channel (re-)established: flush replies parked during the
        outage (called by :meth:`SecureChannel.connect`)."""
        pending, self._pending_replies = self._pending_replies, []
        for message in pending:
            self.channel.to_controller(message)

    def features(self) -> msg.FeaturesReply:
        """The FeaturesReply advertised on channel establishment."""
        return msg.FeaturesReply(
            dpid=self.dpid,
            ports=tuple(sorted(self.ports)),
        )
