"""A from-scratch OpenFlow 1.0-style substrate.

LiveSec (the paper) runs on NOX + Open vSwitch speaking OpenFlow 1.0.
This package reimplements the slice of OpenFlow the system uses:

* :mod:`repro.openflow.match` -- the 12-tuple match with wildcards,
* :mod:`repro.openflow.actions` -- output / flood / set-dl-dst / drop,
* :mod:`repro.openflow.flowtable` -- priority flow tables with idle and
  hard timeouts and per-entry counters,
* :mod:`repro.openflow.messages` -- the controller/switch protocol
  (PacketIn, FlowMod, PacketOut, FlowRemoved, stats, ...),
* :mod:`repro.openflow.channel` -- the secure channel with control-plane
  latency,
* :mod:`repro.openflow.switch` -- the switch datapath (Open vSwitch
  stand-in, also used inside the OF Wi-Fi AP),
* :mod:`repro.openflow.controller_base` -- a NOX-like event framework
  with LLDP topology discovery, on which the LiveSec controller app in
  :mod:`repro.core` is built.
"""

from repro.openflow.match import Match
from repro.openflow.actions import (
    Action,
    Output,
    SetDlDst,
    SetDlSrc,
    CONTROLLER_PORT,
    FLOOD_PORT,
)
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.messages import (
    FlowMod,
    FlowRemoved,
    PacketIn,
    PacketOut,
    PortStatsReply,
    PortStatsRequest,
)
from repro.openflow.channel import SecureChannel
from repro.openflow.switch import OpenFlowSwitch
from repro.openflow.controller_base import ControllerBase, SwitchHandle

__all__ = [
    "Match",
    "Action",
    "Output",
    "SetDlDst",
    "SetDlSrc",
    "CONTROLLER_PORT",
    "FLOOD_PORT",
    "FlowEntry",
    "FlowTable",
    "FlowMod",
    "FlowRemoved",
    "PacketIn",
    "PacketOut",
    "PortStatsReply",
    "PortStatsRequest",
    "SecureChannel",
    "OpenFlowSwitch",
    "ControllerBase",
    "SwitchHandle",
]
