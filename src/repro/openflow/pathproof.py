"""SDNsec-style forwarding accountability primitives.

The controller cannot see *how* the data plane actually forwarded a
frame -- a compromised switch can skip its waypoint, misroute, or
strip tags without any control-channel symptom.  Following SDNsec
(PAPERS.md, "Forwarding Accountability for the SDN Data Plane") we
make the path itself attestable:

* the ingress switch pushes a per-session **path descriptor** -- the
  expected datapath-id sequence (including waypoint switches, which
  appear twice: once steering the frame *into* the element and once
  forwarding it back *out*) plus a keyed tag over that sequence,
* every switch that forwards the tagged frame appends a **path-proof
  mark** -- a lightweight keyed checksum chained over the previous
  mark, its own dpid and the session id,
* the egress switch strips the tag and reports ``(descriptor, marks)``
  to the controller, whose accountability app recomputes the expected
  chain and attributes the first divergence to a dpid.

Marks use ``zlib.crc32`` keyed with a per-switch secret derived from
the deployment secret: deterministic (part of the chaos digest
contract), cheap on the per-packet path, and honest about its role --
this is a *simulation* of a MAC chain, not cryptography.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

# The same default the controller composition root uses; bare switches
# and controllers built without an explicit deployment secret therefore
# agree on every per-switch key out of the box.
DEFAULT_SECRET = "livesec-deployment-secret"


def derive_switch_secret(secret: str, dpid: int) -> int:
    """The per-switch stamping key, derived from the deployment secret."""
    return zlib.crc32(f"{secret}|switch|{dpid}".encode())


def _mark(switch_secret: int, session_id: int, prev_mark: int, dpid: int) -> int:
    """One chained path-proof mark."""
    return zlib.crc32(
        f"{switch_secret}|{session_id}|{prev_mark}|{dpid}".encode()
    )


def descriptor_tag(secret: str, session_id: int, dpids: Sequence[int]) -> int:
    """The ingress-computed tag binding a session to its expected path."""
    path = ",".join(str(dpid) for dpid in dpids)
    return zlib.crc32(f"{secret}|descr|{session_id}|{path}".encode())


@dataclass(frozen=True)
class PathDescriptor:
    """The expected forwarding path of one steered session.

    ``dpids`` is the rule-traversal order: a waypoint's switch is
    listed once per rule it applies (in, then out), so the proof chain
    distinguishes "frame visited the switch" from "frame actually took
    the detour through the element".
    """

    session_id: int
    dpids: Tuple[int, ...]
    tag: int

    @classmethod
    def for_path(
        cls, secret: str, session_id: int, dpids: Sequence[int]
    ) -> "PathDescriptor":
        return cls(
            session_id=session_id,
            dpids=tuple(dpids),
            tag=descriptor_tag(secret, session_id, tuple(dpids)),
        )


@dataclass(frozen=True)
class PathTag:
    """What a tagged frame carries: the descriptor plus the marks
    accumulated so far.  Immutable -- stamping returns a new tag, so a
    cloned frame sharing the object can never see a peer's marks."""

    descriptor: PathDescriptor
    marks: Tuple[int, ...] = ()

    def stamped(self, switch_secret: int, dpid: int) -> "PathTag":
        prev = self.marks[-1] if self.marks else self.descriptor.tag
        mark = _mark(switch_secret, self.descriptor.session_id, prev, dpid)
        return replace(self, marks=self.marks + (mark,))


def expected_marks(
    secret: str, descriptor: PathDescriptor
) -> Tuple[int, ...]:
    """The mark chain an honest data plane would produce."""
    marks = []
    prev = descriptor.tag
    for dpid in descriptor.dpids:
        mark = _mark(
            derive_switch_secret(secret, dpid),
            descriptor.session_id, prev, dpid,
        )
        marks.append(mark)
        prev = mark
    return tuple(marks)


@dataclass(frozen=True)
class ProofVerdict:
    """The outcome of verifying one egress proof."""

    valid: bool
    # Index into descriptor.dpids where the chain first diverged, and
    # the dpid expected to have stamped there (the accused switch).
    break_index: Optional[int] = None
    offending_dpid: Optional[int] = None
    reason: str = "ok"


def verify_proof(
    secret: str, descriptor: PathDescriptor, marks: Sequence[int]
) -> ProofVerdict:
    """Recompute the expected chain and attribute the first divergence.

    A switch that skipped its waypoint, got bypassed, or stamped with
    the wrong key breaks the chain at its own position; everything the
    honest prefix vouches for stays attributable.
    """
    if descriptor.tag != descriptor_tag(
        secret, descriptor.session_id, descriptor.dpids
    ):
        return ProofVerdict(
            valid=False, break_index=0,
            offending_dpid=descriptor.dpids[0] if descriptor.dpids else None,
            reason="descriptor-forged",
        )
    expected = expected_marks(secret, descriptor)
    for index, want in enumerate(expected):
        if index >= len(marks):
            return ProofVerdict(
                valid=False, break_index=index,
                offending_dpid=descriptor.dpids[index],
                reason="chain-truncated",
            )
        if marks[index] != want:
            return ProofVerdict(
                valid=False, break_index=index,
                offending_dpid=descriptor.dpids[index],
                reason="mark-mismatch",
            )
    if len(marks) > len(expected):
        return ProofVerdict(
            valid=False, break_index=len(expected),
            offending_dpid=descriptor.dpids[-1] if descriptor.dpids else None,
            reason="chain-overlong",
        )
    return ProofVerdict(valid=True)
