"""OpenFlow actions.

LiveSec uses a deliberately small action set (Section IV.A): output to
a port, flood, send to controller, rewrite the destination MAC (to
steer a flow toward a service element), and drop (an empty action
list, which is how OpenFlow 1.0 expresses drops).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import Ethernet

# Virtual port numbers (mirroring OFPP_CONTROLLER / OFPP_FLOOD).
CONTROLLER_PORT = -1
FLOOD_PORT = -2


class Action:
    """Base class; subclasses are immutable dataclasses."""

    def apply(self, frame: Ethernet) -> None:
        """Mutate the frame (header rewrites).  Forwarding actions are
        interpreted by the switch, not here."""


@dataclass(frozen=True)
class Output(Action):
    """Forward out of a port; may be CONTROLLER_PORT or FLOOD_PORT."""

    port: int

    def __str__(self) -> str:
        if self.port == CONTROLLER_PORT:
            return "output:CONTROLLER"
        if self.port == FLOOD_PORT:
            return "output:FLOOD"
        return f"output:{self.port}"


@dataclass(frozen=True)
class SetDlDst(Action):
    """Rewrite the destination MAC (service-element steering)."""

    mac: str

    def apply(self, frame: Ethernet) -> None:
        frame.dst = self.mac

    def __str__(self) -> str:
        return f"set_dl_dst:{self.mac}"


@dataclass(frozen=True)
class SetDlSrc(Action):
    """Rewrite the source MAC."""

    mac: str

    def apply(self, frame: Ethernet) -> None:
        frame.src = self.mac

    def __str__(self) -> str:
        return f"set_dl_src:{self.mac}"


@dataclass(frozen=True)
class PushPathTag(Action):
    """Attach a forwarding-accountability tag at the session's ingress.

    The descriptor is the expected dpid sequence plus its keyed tag
    (:mod:`repro.openflow.pathproof`).  The switch interprets this
    action itself (like Output) because stamping needs the switch's
    own secret; ``apply`` only attaches the empty tag.
    """

    descriptor: object  # pathproof.PathDescriptor

    def apply(self, frame: Ethernet) -> None:
        from repro.openflow.pathproof import PathTag

        frame.path_tag = PathTag(descriptor=self.descriptor)

    def __str__(self) -> str:
        dpids = getattr(self.descriptor, "dpids", ())
        return f"push_path_tag:{list(dpids)}"


@dataclass(frozen=True)
class PopPathTag(Action):
    """Strip the accountability tag at the session's egress.

    The switch special-cases this action: it removes the tag *and*
    reports the accumulated mark chain to the controller in a
    PathProofReport, which is what the accountability app verifies.
    ``apply`` covers the degenerate no-switch case (tests applying
    actions directly): it just strips.
    """

    def apply(self, frame: Ethernet) -> None:
        frame.path_tag = None

    def __str__(self) -> str:
        return "pop_path_tag"
