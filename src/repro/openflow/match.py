"""OpenFlow 1.0 match structure: the 12-tuple with wildcards.

A field set to ``None`` is wildcarded.  The paper's "9-tuple"
(Section III.C.3) is this structure without ``in_port``, ``dl_vlan_pcp``
and ``nw_tos``; :meth:`Match.from_nine_tuple` bridges the two.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional, Tuple

from repro.net.packet import (
    ETH_TYPE_IP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    Ethernet,
    FlowNineTuple,
    Tcp,
    Udp,
    extract_nine_tuple,
)


@dataclass(frozen=True)
class Match:
    """An OpenFlow 1.0 flow match.  ``None`` means wildcard."""

    in_port: Optional[int] = None
    dl_src: Optional[str] = None
    dl_dst: Optional[str] = None
    dl_type: Optional[int] = None
    dl_vlan: Optional[int] = None
    dl_vlan_pcp: Optional[int] = None
    nw_src: Optional[str] = None
    nw_dst: Optional[str] = None
    nw_proto: Optional[int] = None
    nw_tos: Optional[int] = None
    tp_src: Optional[int] = None
    tp_dst: Optional[int] = None

    @classmethod
    def from_frame(cls, frame: Ethernet, in_port: Optional[int] = None) -> "Match":
        """The exact match of a concrete frame (plus optional in_port)."""
        nine = extract_nine_tuple(frame)
        return cls.from_nine_tuple(nine, in_port=in_port)

    @classmethod
    def from_nine_tuple(
        cls, nine: FlowNineTuple, in_port: Optional[int] = None
    ) -> "Match":
        """Build a match from the paper's 9-tuple flow identity."""
        return cls(
            in_port=in_port,
            dl_vlan=nine.vlan,
            dl_src=nine.dl_src,
            dl_dst=nine.dl_dst,
            dl_type=nine.dl_type,
            nw_src=nine.nw_src,
            nw_dst=nine.nw_dst,
            nw_proto=nine.nw_proto,
            tp_src=nine.tp_src,
            tp_dst=nine.tp_dst,
        )

    def matches(self, frame: Ethernet, in_port: int) -> bool:
        """Whether a concrete frame arriving on ``in_port`` matches."""
        if self.in_port is not None and self.in_port != in_port:
            return False
        if self.dl_src is not None and self.dl_src != frame.src:
            return False
        if self.dl_dst is not None and self.dl_dst != frame.dst:
            return False
        if self.dl_type is not None and self.dl_type != frame.ethertype:
            return False
        if self.dl_vlan is not None and self.dl_vlan != frame.vlan:
            return False
        ip = frame.ip()
        if self.nw_src is not None and (ip is None or ip.src != self.nw_src):
            return False
        if self.nw_dst is not None and (ip is None or ip.dst != self.nw_dst):
            return False
        if self.nw_proto is not None and (ip is None or ip.proto != self.nw_proto):
            return False
        if self.nw_tos is not None and (ip is None or ip.tos != self.nw_tos):
            return False
        if self.tp_src is not None or self.tp_dst is not None:
            segment = ip.payload if ip is not None else None
            if not isinstance(segment, (Tcp, Udp)):
                return False
            if self.tp_src is not None and segment.sport != self.tp_src:
                return False
            if self.tp_dst is not None and segment.dport != self.tp_dst:
                return False
        return True

    def wildcard_count(self) -> int:
        """How many of the 12 fields are wildcarded (0 = exact match)."""
        return sum(1 for f in fields(self) if getattr(self, f.name) is None)

    def is_subset_of(self, other: "Match") -> bool:
        """True when every frame matching ``self`` also matches ``other``.

        Used for OpenFlow's non-strict delete semantics.
        """
        for f in fields(self):
            ours = getattr(self, f.name)
            theirs = getattr(other, f.name)
            if theirs is not None and ours != theirs:
                return False
        return True

    def overlaps(self, other: "Match") -> bool:
        """True when some frame could match both (field-wise algebra).

        Two matches are disjoint exactly when some field is pinned to
        different values on each side; everywhere else a frame carrying
        the more specific side's values satisfies both.  The policy
        compiler's conflict detector is built on this.
        """
        for f in fields(self):
            ours = getattr(self, f.name)
            theirs = getattr(other, f.name)
            if ours is not None and theirs is not None and ours != theirs:
                return False
        return True

    def intersection(self, other: "Match") -> Optional["Match"]:
        """The match space common to both, or None when disjoint.

        Field-wise: a pinned value wins over a wildcard; two pinned
        values must agree.  The result matches exactly the frames both
        inputs match, and is what conflict reports print as "the
        overlapping match space".
        """
        values = {}
        for f in fields(self):
            ours = getattr(self, f.name)
            theirs = getattr(other, f.name)
            if ours is None:
                values[f.name] = theirs
            elif theirs is None or theirs == ours:
                values[f.name] = ours
            else:
                return None
        return Match(**values)

    def exact_index_key(self) -> Optional[Tuple]:
        """The hash key of a fully-specified match, or None if wildcard.

        A match is *exact-indexable* when every frame it matches
        produces the same :func:`frame_index_key` -- i.e. each keyed
        field is either set, or forced to extract as None by the set
        fields (a non-IP ``dl_type`` forces the network/transport
        fields None; a non-TCP/UDP ``nw_proto`` forces the port fields
        None).  ``dl_vlan`` is deliberately *not* part of the key (a
        wildcarded VLAN would otherwise be unindexable for every
        untagged flow); candidates found under the key are re-verified
        with :meth:`matches`, which checks it.  ``dl_vlan_pcp`` and
        ``nw_tos`` are outside the 9-tuple and force the wildcard path
        when set.
        """
        if self.dl_vlan_pcp is not None or self.nw_tos is not None:
            return None
        if (
            self.in_port is None
            or self.dl_src is None
            or self.dl_dst is None
            or self.dl_type is None
        ):
            return None
        if self.dl_type == ETH_TYPE_IP:
            if self.nw_src is None or self.nw_dst is None \
                    or self.nw_proto is None:
                return None
            if self.nw_proto in (IP_PROTO_TCP, IP_PROTO_UDP):
                if self.tp_src is None or self.tp_dst is None:
                    return None
            elif self.tp_src is not None or self.tp_dst is not None:
                return None
        elif (
            self.nw_src is not None
            or self.nw_dst is not None
            or self.nw_proto is not None
            or self.tp_src is not None
            or self.tp_dst is not None
        ):
            return None
        return (
            self.in_port, self.dl_src, self.dl_dst, self.dl_type,
            self.nw_src, self.nw_dst, self.nw_proto,
            self.tp_src, self.tp_dst,
        )

    def __str__(self) -> str:
        set_fields = ", ".join(
            f"{f.name}={getattr(self, f.name)}"
            for f in fields(self)
            if getattr(self, f.name) is not None
        )
        return f"Match({set_fields or 'any'})"


def frame_index_key(frame: Ethernet, in_port: int) -> Tuple:
    """The exact-match hash key of a concrete frame arriving on a port.

    Mirrors :meth:`Match.exact_index_key`: in_port plus the 9-tuple,
    minus the VLAN tag, with transport ports normalized to None unless
    the IP protocol is TCP/UDP (matching the indexability rule).
    """
    ip = frame.ip()
    if ip is None:
        return (in_port, frame.src, frame.dst, frame.ethertype,
                None, None, None, None, None)
    tp_src = tp_dst = None
    if ip.proto == IP_PROTO_TCP or ip.proto == IP_PROTO_UDP:
        segment = ip.payload
        if isinstance(segment, (Tcp, Udp)):
            tp_src, tp_dst = segment.sport, segment.dport
    return (in_port, frame.src, frame.dst, frame.ethertype,
            ip.src, ip.dst, ip.proto, tp_src, tp_dst)
