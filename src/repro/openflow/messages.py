"""The OpenFlow controller/switch protocol messages.

Only the messages LiveSec uses are modelled; they are plain dataclasses
exchanged over :class:`repro.openflow.channel.SecureChannel` rather
than serialized wire bytes, but the fields mirror OpenFlow 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.net.packet import Ethernet
from repro.openflow.actions import Action
from repro.openflow.match import Match


class Message:
    """Marker base class for protocol messages."""


# ---------------------------------------------------------------------------
# Switch -> controller


@dataclass
class Hello(Message):
    """Version negotiation, sent on channel establishment."""

    version: int = 1


@dataclass
class FeaturesReply(Message):
    """The switch's datapath id and port inventory."""

    dpid: int
    ports: Tuple[int, ...] = ()


@dataclass
class PacketIn(Message):
    """A frame punted to the controller (table miss or explicit send).

    The switch keeps the original frame in its buffer under
    ``buffer_id``; a later PacketOut referencing the id releases it.
    """

    dpid: int
    in_port: int
    frame: Ethernet
    buffer_id: Optional[int] = None
    reason: str = "no_match"  # "no_match" | "action"


@dataclass
class FlowRemoved(Message):
    """Notification that a flow entry expired (idle/hard) or was deleted."""

    dpid: int
    match: Match
    priority: int
    cookie: int
    reason: str  # "idle" | "hard" | "delete"
    duration_s: float
    packets: int
    bytes: int


@dataclass
class PortStatsReply(Message):
    """Per-port counters, keyed by port number."""

    dpid: int
    stats: Dict[int, Dict[str, int]] = field(default_factory=dict)


@dataclass
class FlowStatsReply(Message):
    """Per-entry counters for entries covered by the requested match."""

    dpid: int
    entries: Tuple[dict, ...] = ()


@dataclass
class PathProofReport(Message):
    """The egress switch's forwarding-accountability report.

    Sent when a PopPathTag action strips a tagged frame: the session's
    path descriptor plus the mark chain the frame actually accumulated
    (:mod:`repro.openflow.pathproof`).  Vendor extension territory in
    real OpenFlow 1.0; modelled as a first-class message here.
    """

    dpid: int
    cookie: int
    descriptor: object  # pathproof.PathDescriptor
    marks: Tuple[int, ...] = ()


@dataclass
class EchoReply(Message):
    dpid: int
    payload: int = 0


@dataclass
class BarrierReply(Message):
    dpid: int
    xid: int = 0


# ---------------------------------------------------------------------------
# Controller -> switch


@dataclass
class FlowMod(Message):
    """Add/modify/delete flow entries."""

    command: str  # "add" | "modify" | "delete" | "delete_strict"
    match: Match
    actions: Tuple[Action, ...] = ()
    priority: int = 100
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    cookie: int = 0
    send_flow_removed: bool = False
    buffer_id: Optional[int] = None

    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"
    DELETE_STRICT = "delete_strict"


@dataclass
class PacketOut(Message):
    """Inject a frame (or release a buffered one) through actions."""

    actions: Tuple[Action, ...]
    frame: Optional[Ethernet] = None
    buffer_id: Optional[int] = None
    in_port: Optional[int] = None


@dataclass
class PortStatsRequest(Message):
    port: Optional[int] = None  # None = all ports


@dataclass
class FlowStatsRequest(Message):
    match: Match = field(default_factory=Match)


@dataclass
class EchoRequest(Message):
    payload: int = 0


@dataclass
class BarrierRequest(Message):
    xid: int = 0
