"""The secure channel between an OpenFlow switch and the controller.

Section III.C: "secure channels are established by AS switches to
connect to the control-plane".  The channel is out-of-band here (it
does not consume data-plane link capacity, as in the deployment where
the control network is separate) but has a configurable one-way latency
so the first-packet controller round trip is a measurable cost, and it
can be disconnected to exercise switch-leave handling.

For chaos runs (``repro.faults``) a :class:`ChannelFaults` impairment
can be attached: it drops, delays, or duplicates individual messages
in either direction, driven by a seeded RNG so a given fault plan
replays identically.  The controller's rule-install path is expected
to survive this (retry with backoff, barrier-acked installs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.openflow.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.simulator import Simulator
    from repro.openflow.controller_base import ControllerBase
    from repro.openflow.switch import OpenFlowSwitch

DEFAULT_CONTROL_LATENCY_S = 0.5e-3


@dataclass
class ChannelFaults:
    """Per-message impairment of a secure channel.

    ``drop_rate`` / ``duplicate_rate`` are probabilities per message,
    drawn from ``rng`` (seed it for reproducible chaos); ``extra_delay_s``
    is added to the channel latency of every delivered copy.
    ``directions`` limits the impairment (``"to_switch"``,
    ``"to_controller"``, or both).
    """

    rng: random.Random
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    extra_delay_s: float = 0.0
    directions: Tuple[str, ...] = ("to_switch", "to_controller")
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0

    def plan_delivery(self, direction: str) -> Tuple[int, float]:
        """(copies, extra_delay) for one message in ``direction``.

        0 copies means the message is dropped; 2 means duplicated.
        """
        if direction not in self.directions:
            return 1, 0.0
        if self.drop_rate > 0 and self.rng.random() < self.drop_rate:
            self.dropped += 1
            return 0, 0.0
        copies = 1
        if self.duplicate_rate > 0 and self.rng.random() < self.duplicate_rate:
            self.duplicated += 1
            copies = 2
        if self.extra_delay_s > 0:
            self.delayed += copies
        return copies, self.extra_delay_s


class SecureChannel:
    """Bidirectional, latency-modelled control channel."""

    def __init__(
        self,
        sim: "Simulator",
        switch: "OpenFlowSwitch",
        controller: "ControllerBase",
        latency_s: float = DEFAULT_CONTROL_LATENCY_S,
    ):
        self.sim = sim
        self.switch = switch
        self.controller = controller
        self.latency_s = latency_s
        self.connected = False
        self.to_controller_count = 0
        self.to_switch_count = 0
        self.faults: Optional[ChannelFaults] = None

    def connect(self) -> None:
        """Establish the channel: Hello + FeaturesReply handshake."""
        if self.connected:
            return
        self.connected = True
        self.switch.channel = self
        self.switch.on_channel_connected()
        self.sim.schedule(self.latency_s, self.controller._channel_up, self)

    def disconnect(self) -> None:
        """Tear the channel down; the controller sees a switch leave."""
        if not self.connected:
            return
        self.connected = False
        self.sim.schedule(self.latency_s, self.controller._channel_down, self)

    def inject_faults(self, faults: Optional[ChannelFaults]) -> None:
        """Attach (or with ``None`` clear) a message-level impairment."""
        self.faults = faults

    def _deliveries(self, direction: str) -> Tuple[int, float]:
        if self.faults is None:
            return 1, 0.0
        return self.faults.plan_delivery(direction)

    def to_controller(self, message: Message) -> None:
        """Deliver a switch-originated message after the channel latency."""
        if not self.connected:
            return
        self.to_controller_count += 1
        copies, extra = self._deliveries("to_controller")
        for _ in range(copies):
            self.sim.schedule(
                self.latency_s + extra,
                self.controller._handle_message, self.switch.dpid, message,
            )

    def to_switch(self, message: Message) -> None:
        """Deliver a controller-originated message after the latency."""
        if not self.connected:
            return
        self.to_switch_count += 1
        copies, extra = self._deliveries("to_switch")
        for _ in range(copies):
            self.sim.schedule(
                self.latency_s + extra, self.switch.handle_of_message, message
            )

    def __repr__(self) -> str:
        state = "up" if self.connected else "down"
        return f"<SecureChannel dpid={self.switch.dpid} {state}>"
