"""The secure channel between an OpenFlow switch and the controller.

Section III.C: "secure channels are established by AS switches to
connect to the control-plane".  The channel is out-of-band here (it
does not consume data-plane link capacity, as in the deployment where
the control network is separate) but has a configurable one-way latency
so the first-packet controller round trip is a measurable cost, and it
can be disconnected to exercise switch-leave handling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.openflow.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.simulator import Simulator
    from repro.openflow.controller_base import ControllerBase
    from repro.openflow.switch import OpenFlowSwitch

DEFAULT_CONTROL_LATENCY_S = 0.5e-3


class SecureChannel:
    """Bidirectional, latency-modelled control channel."""

    def __init__(
        self,
        sim: "Simulator",
        switch: "OpenFlowSwitch",
        controller: "ControllerBase",
        latency_s: float = DEFAULT_CONTROL_LATENCY_S,
    ):
        self.sim = sim
        self.switch = switch
        self.controller = controller
        self.latency_s = latency_s
        self.connected = False
        self.to_controller_count = 0
        self.to_switch_count = 0

    def connect(self) -> None:
        """Establish the channel: Hello + FeaturesReply handshake."""
        if self.connected:
            return
        self.connected = True
        self.switch.channel = self
        self.sim.schedule(self.latency_s, self.controller._channel_up, self)

    def disconnect(self) -> None:
        """Tear the channel down; the controller sees a switch leave."""
        if not self.connected:
            return
        self.connected = False
        self.sim.schedule(self.latency_s, self.controller._channel_down, self)

    def to_controller(self, message: Message) -> None:
        """Deliver a switch-originated message after the channel latency."""
        if not self.connected:
            return
        self.to_controller_count += 1
        self.sim.schedule(
            self.latency_s, self.controller._handle_message, self.switch.dpid, message
        )

    def to_switch(self, message: Message) -> None:
        """Deliver a controller-originated message after the latency."""
        if not self.connected:
            return
        self.to_switch_count += 1
        self.sim.schedule(self.latency_s, self.switch.handle_of_message, message)

    def __repr__(self) -> str:
        state = "up" if self.connected else "down"
        return f"<SecureChannel dpid={self.switch.dpid} {state}>"
