"""Reliable rule installation with per-datapath barrier batching.

The controller installs flow entries *reliably*: every FlowMod must be
acknowledged by the datapath before the controller considers it
placed, and unacknowledged installs are re-sent with exponential
backoff (the control channel may drop messages either way -- see the
chaos harness).  The acknowledgement vehicle is the OpenFlow barrier:
a BarrierReply confirms the datapath processed everything sent before
the matching BarrierRequest.

The naive shape -- one BarrierRequest chasing every single FlowMod --
doubles the control-channel message count of a session setup.  This
pipeline exploits the barrier's actual semantics instead: FlowMods
destined for the *same datapath within one simulation tick* are
coalesced under a single BarrierRequest.  FlowMods still go out
immediately (a buffered first packet is released by its FlowMod, so
deferring them would add setup latency); only the barrier is deferred
to a zero-delay flush event, which the simulator's FIFO tie-breaking
runs after every same-tick handler has enqueued its rules.  A session
setup that installs four entries across three datapaths thus costs
4 FlowMods + 3 Barriers instead of 4 + 4, and a switch resync pushing
N entries costs N + 1 instead of 2N.

Retry is per *batch*: a missing BarrierReply within the timeout
re-sends every FlowMod in the batch followed by a fresh barrier, with
the timeout doubled, up to the attempt cap.  Re-sending is idempotent
-- FlowMod ADD replaces an identical entry in place, and a retried
``buffer_id`` release pops nothing if the first copy already fired.

``batching=False`` degrades to the historical one-barrier-per-FlowMod
behavior (the flush happens synchronously per rule); the install
benchmark uses that as its baseline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.openflow import messages as ofmsg

DEFAULT_INSTALL_TIMEOUT_S = 0.05
DEFAULT_MAX_ATTEMPTS = 5


@dataclass
class _Batch:
    """FlowMods for one datapath awaiting one barrier acknowledgement."""

    dpid: int
    rules: List[object] = field(default_factory=list)
    buffer_ids: List[Optional[int]] = field(default_factory=list)
    attempt: int = 1
    timeout_s: float = DEFAULT_INSTALL_TIMEOUT_S
    timer: Optional[object] = None  # cancellable simulator handle


class InstallPipeline:
    """Batched, barrier-acked FlowMod installation for one controller.

    The pipeline borrows the controller's senders and switch table; it
    owns only the batching and retry state.  All methods are safe to
    call for datapaths that have meanwhile disconnected (the install
    is silently abandoned -- a reconnect resyncs from the session
    store, which stays authoritative).
    """

    def __init__(
        self,
        controller,
        timeout_s: float = DEFAULT_INSTALL_TIMEOUT_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        batching: bool = True,
        metrics=None,
    ):
        self._controller = controller
        self._sim = controller.sim
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        self.batching = batching
        # dpid -> batch still accumulating rules this tick.
        self._open: Dict[int, _Batch] = {}
        self._flush_handles: Dict[int, object] = {}
        # barrier xid -> batch in flight, awaiting its BarrierReply.
        self._pending: Dict[int, _Batch] = {}
        self._xids = itertools.count(1)
        self._setup_metrics(metrics)

    def _setup_metrics(self, registry) -> None:
        if registry is None:
            class _Null:
                value = 0

                def inc(self, amount: int = 1) -> None:
                    pass

                def observe(self, value: float) -> None:
                    pass

            null = _Null()
            self.flowmods_sent = null
            self.barriers_sent = null
            self.install_retries = null
            self.install_failures = null
            self.batch_size_hist = null
            return
        self.flowmods_sent = registry.counter(
            "controller.flowmods_sent",
            "FlowMod messages sent by the install pipeline",
        )
        self.barriers_sent = registry.counter(
            "controller.barriers_sent",
            "BarrierRequest messages sent by the install pipeline",
        )
        self.install_retries = registry.counter(
            "controller.install_retries",
            "Rule installs re-sent after a barrier-ack timeout",
        )
        self.install_failures = registry.counter(
            "controller.install_failures",
            "Rule installs abandoned after exhausting retries",
        )
        self.batch_size_hist = registry.histogram(
            "controller.install_batch_size",
            "FlowMods acknowledged per BarrierRequest",
        )
        registry.gauge(
            "controller.installs_pending",
            "Rule installs awaiting their barrier ack",
        ).set_function(self.pending_rules)

    # ------------------------------------------------------------------
    # Enqueue / flush

    def install(self, rule, buffer_id: Optional[int] = None) -> None:
        """Send ``rule``'s FlowMod now; arrange its barrier ack.

        With batching on, the barrier is shared with every other rule
        enqueued for the same datapath this tick.
        """
        if rule.dpid not in self._controller.switches:
            return
        self._send_flow_mod(rule, buffer_id)
        if not self.batching:
            batch = _Batch(dpid=rule.dpid, rules=[rule],
                           buffer_ids=[buffer_id],
                           timeout_s=self.timeout_s)
            self._dispatch_barrier(batch)
            return
        batch = self._open.get(rule.dpid)
        if batch is None:
            batch = _Batch(dpid=rule.dpid, timeout_s=self.timeout_s)
            self._open[rule.dpid] = batch
            self._flush_handles[rule.dpid] = self._sim.schedule(
                0.0, self._flush, rule.dpid
            )
        batch.rules.append(rule)
        batch.buffer_ids.append(buffer_id)

    def _flush(self, dpid: int) -> None:
        """End-of-tick: seal the datapath's open batch with a barrier."""
        self._flush_handles.pop(dpid, None)
        batch = self._open.pop(dpid, None)
        if batch is None or not batch.rules:
            return
        self._dispatch_barrier(batch)

    def _dispatch_barrier(self, batch: _Batch) -> None:
        handle = self._controller.switches.get(batch.dpid)
        if handle is None:
            return
        xid = next(self._xids)
        handle.channel.to_switch(ofmsg.BarrierRequest(xid=xid))
        self.barriers_sent.inc()
        self.batch_size_hist.observe(len(batch.rules))
        batch.timer = self._sim.schedule(
            batch.timeout_s, self._timed_out, xid
        )
        self._pending[xid] = batch

    def _send_flow_mod(self, rule, buffer_id: Optional[int]) -> None:
        self._controller.send_flow_mod(
            rule.dpid,
            command=ofmsg.FlowMod.ADD,
            match=rule.match,
            actions=rule.actions,
            priority=rule.priority,
            idle_timeout=rule.idle_timeout,
            hard_timeout=rule.hard_timeout,
            cookie=rule.cookie,
            send_flow_removed=rule.send_flow_removed,
            buffer_id=buffer_id,
        )
        self.flowmods_sent.inc()

    # ------------------------------------------------------------------
    # Acks, timeouts, aborts

    def on_barrier_reply(self, dpid: int, xid: int) -> None:
        """The datapath processed everything up to this barrier."""
        batch = self._pending.pop(xid, None)
        if batch is not None and batch.timer is not None:
            batch.timer.cancel()

    def _timed_out(self, xid: int) -> None:
        batch = self._pending.pop(xid, None)
        if batch is None:
            return
        if (
            batch.attempt >= self.max_attempts
            or batch.dpid not in self._controller.switches
        ):
            self.install_failures.inc(len(batch.rules))
            return
        self.install_retries.inc(len(batch.rules))
        batch.attempt += 1
        batch.timeout_s *= 2
        for rule, buffer_id in zip(batch.rules, batch.buffer_ids):
            self._send_flow_mod(rule, buffer_id)
        self._dispatch_barrier(batch)

    def abort_datapath(self, dpid: int) -> None:
        """Drop every open and in-flight batch for a dead datapath.

        Retrying against a disconnected channel is pointless; the
        reconnect path resyncs the full session state instead.
        """
        flush = self._flush_handles.pop(dpid, None)
        if flush is not None:
            flush.cancel()
        self._open.pop(dpid, None)
        stale = [
            xid for xid, batch in self._pending.items() if batch.dpid == dpid
        ]
        for xid in stale:
            batch = self._pending.pop(xid)
            if batch.timer is not None:
                batch.timer.cancel()

    # ------------------------------------------------------------------
    # Introspection

    def pending_rules(self) -> int:
        """Rules enqueued or sent but not yet barrier-acknowledged."""
        return (
            sum(len(b.rules) for b in self._open.values())
            + sum(len(b.rules) for b in self._pending.values())
        )

    def pending_batches(self) -> Tuple[int, int]:
        """(open, in-flight) batch counts, for tests and debugging."""
        return len(self._open), len(self._pending)
