"""A NOX-like controller framework.

The paper's LiveSec controller is "developed based on NOX"; this module
provides the NOX role: channel management (switch join/leave), message
dispatch to overridable handlers, convenience senders, and LLDP-based
link discovery (Section III.C.1: "Based on link layer discovery
protocol (LLDP), LiveSec controller can dynamically discover the
logical link between all switches").

The LiveSec application itself lives in :mod:`repro.core.controller`
and subclasses :class:`ControllerBase`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net import packet as pkt
from repro.net.packet import Ethernet, Lldp
from repro.openflow import messages as msg
from repro.openflow.actions import Action, Output
from repro.openflow.channel import SecureChannel
from repro.openflow.match import Match

LLDP_INTERVAL_S = 1.0
LINK_TIMEOUT_S = 3.5


@dataclass
class SwitchHandle:
    """The controller's view of one connected datapath."""

    dpid: int
    channel: SecureChannel
    ports: Tuple[int, ...]
    joined_at: float

    @property
    def name(self) -> str:
        return self.channel.switch.name


@dataclass(frozen=True)
class DiscoveredLink:
    """A unidirectional logical link learned from LLDP."""

    src_dpid: int
    src_port: int
    dst_dpid: int
    dst_port: int


class ControllerBase:
    """Event-driven OpenFlow controller skeleton.

    Subclasses override the ``on_*`` handlers.  Topology discovery is
    built in: the controller floods LLDP out of every switch port each
    ``LLDP_INTERVAL_S`` and learns unidirectional links from the
    PacketIns they trigger on peer switches; links not re-confirmed
    within ``LINK_TIMEOUT_S`` are expired.
    """

    def __init__(self, sim, lldp_enabled: bool = True):
        self.sim = sim
        self.switches: Dict[int, SwitchHandle] = {}
        # Keyed by the full (src_dpid, src_port, dst_dpid, dst_port):
        # dual-homed switches legitimately expose several port pairs
        # between the same two datapaths, and every one must be known
        # (periphery classification depends on the complete set).
        self.links: Dict[Tuple[int, int, int, int], Tuple[DiscoveredLink, float]] = {}
        self.lldp_enabled = lldp_enabled
        self.packet_in_count = 0
        if lldp_enabled:
            sim.every(LLDP_INTERVAL_S, self._lldp_round, start=sim.now + 0.01)
            sim.every(LLDP_INTERVAL_S, self._expire_links)

    # ------------------------------------------------------------------
    # Channel lifecycle (called by SecureChannel)

    def _channel_up(self, channel: SecureChannel) -> None:
        features = channel.switch.features()
        handle = SwitchHandle(
            dpid=features.dpid,
            channel=channel,
            ports=features.ports,
            joined_at=self.sim.now,
        )
        self.switches[features.dpid] = handle
        self.on_switch_join(handle)

    def _channel_down(self, channel: SecureChannel) -> None:
        dpid = channel.switch.dpid
        handle = self.switches.pop(dpid, None)
        stale = [key for key, (link, __) in self.links.items()
                 if link.src_dpid == dpid or link.dst_dpid == dpid]
        for key in stale:
            del self.links[key]
        if handle is not None:
            self.on_switch_leave(handle)

    # ------------------------------------------------------------------
    # Message dispatch (called by SecureChannel)

    def _handle_message(self, dpid: int, message: msg.Message) -> None:
        if isinstance(message, msg.PacketIn):
            self.packet_in_count += 1
            if message.frame.ethertype == pkt.ETH_TYPE_LLDP:
                self._handle_lldp_in(message)
                return
            self.on_packet_in(message)
        elif isinstance(message, msg.FlowRemoved):
            self.on_flow_removed(message)
        elif isinstance(message, msg.PortStatsReply):
            self.on_port_stats(message)
        elif isinstance(message, msg.FlowStatsReply):
            self.on_flow_stats(message)
        elif isinstance(message, msg.BarrierReply):
            self.on_barrier_reply(dpid, message.xid)
        elif isinstance(message, msg.PathProofReport):
            self.on_path_proof(message)
        elif isinstance(message, msg.EchoReply):
            pass
        else:
            raise TypeError(f"unhandled message from dpid {dpid}: {message!r}")

    # ------------------------------------------------------------------
    # Handlers for subclasses

    def on_switch_join(self, switch: SwitchHandle) -> None:
        """A datapath connected."""

    def on_switch_leave(self, switch: SwitchHandle) -> None:
        """A datapath disconnected."""

    def on_packet_in(self, event: msg.PacketIn) -> None:
        """A non-LLDP frame was punted to the controller."""

    def on_flow_removed(self, event: msg.FlowRemoved) -> None:
        """A flow entry expired or was deleted."""

    def on_port_stats(self, event: msg.PortStatsReply) -> None:
        """A port-stats reply arrived."""

    def on_flow_stats(self, event: msg.FlowStatsReply) -> None:
        """A flow-stats reply arrived."""

    def on_barrier_reply(self, dpid: int, xid: int) -> None:
        """A BarrierReply arrived: every message sent before the
        matching BarrierRequest has been processed by the datapath."""

    def on_path_proof(self, event: msg.PathProofReport) -> None:
        """An egress switch reported a forwarding-accountability proof."""

    def on_link_discovered(self, link: DiscoveredLink) -> None:
        """A new logical link was learned from LLDP."""

    def on_link_timeout(self, link: DiscoveredLink) -> None:
        """A previously known link stopped being confirmed."""

    # ------------------------------------------------------------------
    # Senders

    def send_flow_mod(
        self,
        dpid: int,
        command: str,
        match: Match,
        actions: Tuple[Action, ...] = (),
        priority: int = 100,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: int = 0,
        send_flow_removed: bool = False,
        buffer_id: Optional[int] = None,
    ) -> None:
        """Send a FlowMod to the given datapath."""
        handle = self.switches[dpid]
        handle.channel.to_switch(
            msg.FlowMod(
                command=command,
                match=match,
                actions=tuple(actions),
                priority=priority,
                idle_timeout=idle_timeout,
                hard_timeout=hard_timeout,
                cookie=cookie,
                send_flow_removed=send_flow_removed,
                buffer_id=buffer_id,
            )
        )

    def send_packet_out(
        self,
        dpid: int,
        actions: Tuple[Action, ...],
        frame: Optional[Ethernet] = None,
        buffer_id: Optional[int] = None,
        in_port: Optional[int] = None,
    ) -> None:
        """Send a PacketOut to the given datapath."""
        handle = self.switches[dpid]
        handle.channel.to_switch(
            msg.PacketOut(
                actions=tuple(actions),
                frame=frame,
                buffer_id=buffer_id,
                in_port=in_port,
            )
        )

    def request_port_stats(self, dpid: int, port: Optional[int] = None) -> None:
        self.switches[dpid].channel.to_switch(msg.PortStatsRequest(port=port))

    def request_flow_stats(self, dpid: int, match: Optional[Match] = None) -> None:
        self.switches[dpid].channel.to_switch(
            msg.FlowStatsRequest(match=match or Match())
        )

    # ------------------------------------------------------------------
    # LLDP topology discovery

    def _lldp_round(self) -> None:
        for dpid, handle in list(self.switches.items()):
            for port in handle.ports:
                frame = pkt.make_lldp(chassis_id=dpid, port_id=port)
                self.send_packet_out(dpid, actions=(Output(port),), frame=frame)

    def _handle_lldp_in(self, event: msg.PacketIn) -> None:
        lldp = event.frame.payload
        if not isinstance(lldp, Lldp):
            return
        if lldp.chassis_id == event.dpid:
            return  # our own advertisement reflected back
        link = DiscoveredLink(
            src_dpid=lldp.chassis_id,
            src_port=lldp.port_id,
            dst_dpid=event.dpid,
            dst_port=event.in_port,
        )
        key = (link.src_dpid, link.src_port, link.dst_dpid, link.dst_port)
        fresh = key not in self.links
        self.links[key] = (link, self.sim.now)
        if fresh:
            self.on_link_discovered(link)

    def _expire_links(self) -> None:
        now = self.sim.now
        stale = [
            key for key, (_, seen) in self.links.items()
            if now - seen > LINK_TIMEOUT_S
        ]
        for key in stale:
            link, _ = self.links.pop(key)
            self.on_link_timeout(link)

    def known_links(self) -> List[DiscoveredLink]:
        """All currently confirmed unidirectional links."""
        return [link for link, __ in self.links.values()]

    def link_between(self, src_dpid: int, dst_dpid: int) -> Optional[DiscoveredLink]:
        """The discovered link from one datapath to another, if known.

        Dual-homed pairs have several; the lowest port pair is
        returned for determinism.
        """
        matches = [
            link
            for link, __ in self.links.values()
            if link.src_dpid == src_dpid and link.dst_dpid == dst_dpid
        ]
        if not matches:
            return None
        return min(matches, key=lambda l: (l.src_port, l.dst_port))
