"""Flow tables: prioritized flow entries with timeouts and counters.

Semantics follow OpenFlow 1.0: the highest-priority matching entry
wins; an entry with an idle timeout expires when unused for that long;
a hard timeout bounds total lifetime; adding an entry with an identical
match and priority replaces the old one; non-strict delete/modify
affect every entry whose match is wildcarded-covered by the given
match; strict delete requires exact match *and* priority equality.

Lookup is two-tier.  Fully-specified matches (the paper's 9-tuple +
in_port, :meth:`Match.exact_index_key`) live in a hash index keyed by
the frame's extracted key -- the common case, since every steering
rule is derived from a concrete first packet.  Matches with genuine
wildcards (source blocks, table-miss catch-alls) live in a small list
ordered like the classic linear scan.  A lookup takes the best exact
candidate, scans the wildcard list only while it could still win, and
breaks priority ties by insertion sequence -- observably identical to
the linear reference scan, which is kept as :meth:`_lookup_linear` and
property-tested against the index.

Expiry is driven by a lazy min-heap of (deadline, entry): every lookup
first evicts the entries whose deadline has passed (so the table never
serves -- or counts -- dead entries), and the periodic sweep only pops
the heap instead of scanning the whole table.  Idle refreshes leave a
stale heap node behind; it is re-sorted on pop, never rescanned.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.packet import Ethernet
from repro.openflow.actions import Action
from repro.openflow.match import Match, frame_index_key

DEFAULT_PRIORITY = 100

# Observe the lookup-latency histogram every Nth lookup: the wall-clock
# clock reads would otherwise dominate the fast path they measure.
LATENCY_SAMPLE_STRIDE = 64


@dataclass
class FlowEntry:
    """One row of a flow table.

    An empty ``actions`` list means drop.  ``idle_timeout`` /
    ``hard_timeout`` of 0 mean "never expires" (OpenFlow convention).
    """

    match: Match
    actions: Tuple[Action, ...] = ()
    priority: int = DEFAULT_PRIORITY
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    cookie: int = 0
    send_flow_removed: bool = False
    created_at: float = 0.0
    last_used_at: float = 0.0
    packets: int = 0
    bytes: int = 0
    # Table-internal bookkeeping: insertion sequence (priority
    # tie-break) and residency (lazy heap nodes outlive evicted rows).
    seq: int = field(default=0, compare=False, repr=False)
    resident: bool = field(default=False, compare=False, repr=False)

    @property
    def is_drop(self) -> bool:
        return not self.actions

    def touch(self, now: float, size: int) -> None:
        """Record a packet hit."""
        self.last_used_at = now
        self.packets += 1
        self.bytes += size

    def expired(self, now: float) -> Optional[str]:
        """'idle', 'hard' or None."""
        if self.hard_timeout > 0 and now - self.created_at >= self.hard_timeout:
            return "hard"
        if self.idle_timeout > 0 and now - self.last_used_at >= self.idle_timeout:
            return "idle"
        return None

    def next_deadline(self) -> Optional[float]:
        """The earliest future time this entry could expire, or None."""
        deadline = None
        if self.hard_timeout > 0:
            deadline = self.created_at + self.hard_timeout
        if self.idle_timeout > 0:
            idle_deadline = self.last_used_at + self.idle_timeout
            if deadline is None or idle_deadline < deadline:
                deadline = idle_deadline
        return deadline

    def __str__(self) -> str:
        acts = ",".join(str(a) for a in self.actions) or "drop"
        return f"[prio={self.priority} {self.match} -> {acts}]"


@dataclass
class _RemovedEntry:
    """An entry evicted by timeout, with the reason, for FlowRemoved."""

    entry: FlowEntry
    reason: str


def _order_key(entry: FlowEntry) -> Tuple[int, int]:
    """Linear-scan position: descending priority, then insertion order."""
    return (-entry.priority, entry.seq)


class FlowTable:
    """A single OpenFlow 1.0-style flow table with an indexed fast path."""

    def __init__(self) -> None:
        # Master view, kept in linear-scan order for iteration, stats
        # and the control-plane operations (delete/modify are rare).
        self._entries: List[FlowEntry] = []
        # (match, priority) -> entry: O(1) add-replace and strict delete.
        self._by_key: Dict[Tuple[Match, int], FlowEntry] = {}
        # Exact-index buckets (distinct priorities share one bucket).
        self._exact: Dict[Tuple, List[FlowEntry]] = {}
        # Wildcard entries in linear-scan order.
        self._wild: List[FlowEntry] = []
        # Lazy expiry heap of (deadline, seq, entry); stale nodes are
        # dropped on pop via the entry's residency flag.
        self._heap: List[Tuple[float, int, FlowEntry]] = []
        self._seq = 0
        self._observed_removals: List[_RemovedEntry] = []
        self.lookups = 0
        self.matched = 0
        self.exact_hits = 0
        self.wildcard_hits = 0
        self.misses = 0
        self.evicted_on_lookup = 0
        self._latency_hist = None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def entries(self) -> Sequence[FlowEntry]:
        return tuple(self._entries)

    def wildcard_entries(self) -> Sequence[FlowEntry]:
        """The entries outside the exact index (tests/introspection)."""
        return tuple(self._wild)

    # ------------------------------------------------------------------
    # Observability

    def attach_metrics(self, registry, **labels) -> None:
        """Publish index effectiveness through an obs registry.

        Hit/miss counts are pull-mode gauges reading the live counters
        (nothing added to the per-frame fast path); the latency
        histogram samples every ``LATENCY_SAMPLE_STRIDE``-th lookup.
        """
        registry.gauge(
            "switch.lookup_exact_hits",
            "Lookups answered by the exact-match hash index", **labels,
        ).set_function(lambda: self.exact_hits)
        registry.gauge(
            "switch.lookup_wildcard_hits",
            "Lookups answered by the wildcard list", **labels,
        ).set_function(lambda: self.wildcard_hits)
        registry.gauge(
            "switch.lookup_misses", "Lookups with no live match", **labels,
        ).set_function(lambda: self.misses)
        registry.gauge(
            "switch.lookup_evictions",
            "Expired entries evicted during lookups", **labels,
        ).set_function(lambda: self.evicted_on_lookup)
        self._latency_hist = registry.histogram(
            "switch.lookup_latency_s",
            "Wall-clock flow-table lookup cost (sampled)", **labels,
        )

    # ------------------------------------------------------------------
    # Mutation

    def add(self, entry: FlowEntry, now: float) -> None:
        """Insert, replacing any entry with identical match+priority."""
        entry.created_at = now
        entry.last_used_at = now
        old = self._by_key.get((entry.match, entry.priority))
        if old is not None:
            self._discard(old)
        self._seq += 1
        entry.seq = self._seq
        entry.resident = True
        self._by_key[(entry.match, entry.priority)] = entry
        # Append + stable sort: the list is already sorted, so Timsort
        # is near-linear, and equal priorities keep insertion order.
        self._entries.append(entry)
        self._entries.sort(key=_order_key)
        key = entry.match.exact_index_key()
        if key is not None:
            self._exact.setdefault(key, []).append(entry)
        else:
            self._wild.append(entry)
            self._wild.sort(key=_order_key)
        deadline = entry.next_deadline()
        if deadline is not None:
            heapq.heappush(self._heap, (deadline, entry.seq, entry))

    def _discard(self, entry: FlowEntry) -> None:
        """Unlink an entry from every structure (not the heap: its node
        is skipped on pop via the residency flag)."""
        entry.resident = False
        for index, existing in enumerate(self._entries):
            if existing is entry:
                del self._entries[index]
                break
        if self._by_key.get((entry.match, entry.priority)) is entry:
            del self._by_key[(entry.match, entry.priority)]
        key = entry.match.exact_index_key()
        if key is not None:
            bucket = self._exact.get(key)
            if bucket is not None:
                for index, existing in enumerate(bucket):
                    if existing is entry:
                        del bucket[index]
                        break
                if not bucket:
                    del self._exact[key]
        else:
            for index, existing in enumerate(self._wild):
                if existing is entry:
                    del self._wild[index]
                    break

    def modify(self, match: Match, actions: Tuple[Action, ...], now: float,
               strict_priority: Optional[int] = None) -> int:
        """OpenFlow MODIFY: update actions of covered entries in place,
        preserving counters.  Returns the number modified.

        Mirrors non-strict delete's direction (OF 1.0): only entries
        whose match is wildcarded-covered by ``match`` are touched, a
        broader entry is never rewritten by a narrower MODIFY.
        """
        count = 0
        for entry in self._entries:
            if strict_priority is not None and entry.priority != strict_priority:
                continue
            if entry.match.is_subset_of(match):
                entry.actions = actions
                count += 1
        return count

    def delete(self, match: Match, strict: bool = False,
               priority: Optional[int] = None) -> List[FlowEntry]:
        """OpenFlow DELETE: remove matching entries and return them.

        Non-strict (default) removes every entry whose match is covered
        by ``match``; strict requires exact match equality *and* an
        explicit priority (OF 1.0 strict semantics -- a strict delete
        that spans priorities is a caller bug).
        """
        if strict:
            if priority is None:
                raise ValueError(
                    "strict delete requires an explicit priority (OF 1.0)"
                )
            entry = self._by_key.get((match, priority))
            if entry is None:
                return []
            self._discard(entry)
            return [entry]
        removed = [e for e in self._entries if e.match.is_subset_of(match)]
        for entry in removed:
            self._discard(entry)
        return removed

    # ------------------------------------------------------------------
    # Expiry

    def _evict_due(self, now: float) -> None:
        """Pop every entry whose deadline has passed; refreshed entries
        are re-pushed with their current deadline."""
        heap = self._heap
        while heap and heap[0][0] <= now:
            _, seq, entry = heapq.heappop(heap)
            if not entry.resident:
                continue
            reason = entry.expired(now)
            if reason is None:
                # Idle deadline moved by traffic since the push.
                deadline = entry.next_deadline()
                if deadline is not None:
                    if deadline <= now:
                        # expired() subtracts while the deadline adds;
                        # float rounding can disagree by one ulp.  The
                        # heap is only a wake-up schedule -- expired()
                        # stays the oracle -- but the re-push must land
                        # strictly after ``now`` or this loop never
                        # terminates.
                        deadline = math.nextafter(now, math.inf)
                    heapq.heappush(heap, (deadline, seq, entry))
                continue
            self._discard(entry)
            self._observed_removals.append(_RemovedEntry(entry, reason))

    def take_removed(self) -> Sequence[_RemovedEntry]:
        """Drain entries evicted since the last drain (lookup-observed
        expiries awaiting their FlowRemoved)."""
        if not self._observed_removals:
            return ()
        removed, self._observed_removals = self._observed_removals, []
        return removed

    def expire(self, now: float) -> List[_RemovedEntry]:
        """Evict expired entries, returning them with their reasons."""
        self._evict_due(now)
        return list(self.take_removed())

    # ------------------------------------------------------------------
    # Lookup

    def lookup(self, frame: Ethernet, in_port: int, now: float) -> Optional[FlowEntry]:
        """The highest-priority live entry matching the frame, touching
        its counters; None on table miss.

        Expired-but-unevicted entries are evicted first (drain them via
        :meth:`take_removed` for FlowRemoved), so the table's length
        always agrees with what the datapath honors.
        """
        self.lookups += 1
        if self._latency_hist is not None and \
                self.lookups % LATENCY_SAMPLE_STRIDE == 0:
            with self._latency_hist.time():
                return self._lookup_indexed(frame, in_port, now)
        return self._lookup_indexed(frame, in_port, now)

    def _lookup_indexed(
        self, frame: Ethernet, in_port: int, now: float
    ) -> Optional[FlowEntry]:
        self._evict_due(now)
        best: Optional[FlowEntry] = None
        bucket = self._exact.get(frame_index_key(frame, in_port))
        if bucket:
            for entry in bucket:
                if (best is None or _order_key(entry) < _order_key(best)) \
                        and entry.match.matches(frame, in_port):
                    best = entry
        exact = best is not None
        if self._wild:
            limit = _order_key(best) if best is not None else None
            for entry in self._wild:
                if limit is not None and _order_key(entry) > limit:
                    break
                if entry.match.matches(frame, in_port):
                    best = entry
                    exact = False
                    break
        if best is None:
            self.misses += 1
            return None
        best.touch(now, frame.size)
        self.matched += 1
        if exact:
            self.exact_hits += 1
        else:
            self.wildcard_hits += 1
        return best

    def peek(self, frame: Ethernet, in_port: int, now: float) -> Optional[FlowEntry]:
        """The entry :meth:`lookup` would return, with no side effects.

        No counters are touched, no expired entries evicted, and no
        stats recorded -- entries observed expired are simply skipped.
        The fluid fast-forward kernel uses this to walk a flow's
        forwarding path without perturbing datapath state.
        """
        best: Optional[FlowEntry] = None
        bucket = self._exact.get(frame_index_key(frame, in_port))
        if bucket:
            for entry in bucket:
                if entry.expired(now):
                    continue
                if (best is None or _order_key(entry) < _order_key(best)) \
                        and entry.match.matches(frame, in_port):
                    best = entry
        if self._wild:
            limit = _order_key(best) if best is not None else None
            for entry in self._wild:
                if limit is not None and _order_key(entry) > limit:
                    break
                if entry.expired(now):
                    continue
                if entry.match.matches(frame, in_port):
                    best = entry
                    break
        return best

    def record_fluid_hits(
        self, entry: FlowEntry, packets: int, total_bytes: int,
        last_seen: float, exact: Optional[bool] = None,
    ) -> None:
        """Fold analytically advanced traffic into an entry's counters.

        Mirrors what ``packets`` calls of :meth:`lookup` would have
        accumulated: per-entry packet/byte counts, the idle-timeout
        refresh, and the table's hit statistics.  ``last_seen`` is the
        arrival time of the final analytic packet at this table;
        ``exact`` lets the caller precompute the entry's index class
        once per suspension instead of per advance.
        """
        if packets <= 0:
            return
        entry.packets += packets
        entry.bytes += total_bytes
        if last_seen > entry.last_used_at:
            entry.last_used_at = last_seen
        self.lookups += packets
        self.matched += packets
        if exact is None:
            exact = entry.match.exact_index_key() is not None
        if exact:
            self.exact_hits += packets
        else:
            self.wildcard_hits += packets

    def _lookup_linear(
        self, frame: Ethernet, in_port: int, now: float
    ) -> Optional[FlowEntry]:
        """The pre-index reference scan, kept verbatim as the semantic
        oracle: the property suite asserts ``lookup`` is observably
        identical to this on every frame."""
        self.lookups += 1
        for entry in self._entries:
            if entry.expired(now):
                continue
            if entry.match.matches(frame, in_port):
                entry.touch(now, frame.size)
                self.matched += 1
                return entry
        return None

    def __repr__(self) -> str:
        return f"<FlowTable entries={len(self._entries)} lookups={self.lookups}>"
