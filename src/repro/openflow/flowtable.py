"""Flow tables: prioritized flow entries with timeouts and counters.

Semantics follow OpenFlow 1.0: the highest-priority matching entry
wins; an entry with an idle timeout expires when unused for that long;
a hard timeout bounds total lifetime; adding an entry with an identical
match and priority replaces the old one; non-strict delete removes
every entry whose match is wildcarded-covered by the given match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.net.packet import Ethernet
from repro.openflow.actions import Action
from repro.openflow.match import Match

DEFAULT_PRIORITY = 100


@dataclass
class FlowEntry:
    """One row of a flow table.

    An empty ``actions`` list means drop.  ``idle_timeout`` /
    ``hard_timeout`` of 0 mean "never expires" (OpenFlow convention).
    """

    match: Match
    actions: Tuple[Action, ...] = ()
    priority: int = DEFAULT_PRIORITY
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    cookie: int = 0
    send_flow_removed: bool = False
    created_at: float = 0.0
    last_used_at: float = 0.0
    packets: int = 0
    bytes: int = 0

    @property
    def is_drop(self) -> bool:
        return not self.actions

    def touch(self, now: float, size: int) -> None:
        """Record a packet hit."""
        self.last_used_at = now
        self.packets += 1
        self.bytes += size

    def expired(self, now: float) -> Optional[str]:
        """'idle', 'hard' or None."""
        if self.hard_timeout > 0 and now - self.created_at >= self.hard_timeout:
            return "hard"
        if self.idle_timeout > 0 and now - self.last_used_at >= self.idle_timeout:
            return "idle"
        return None

    def __str__(self) -> str:
        acts = ",".join(str(a) for a in self.actions) or "drop"
        return f"[prio={self.priority} {self.match} -> {acts}]"


@dataclass
class _RemovedEntry:
    """An entry evicted by timeout, with the reason, for FlowRemoved."""

    entry: FlowEntry
    reason: str


class FlowTable:
    """A single OpenFlow 1.0-style flow table."""

    def __init__(self) -> None:
        self._entries: List[FlowEntry] = []
        self.lookups = 0
        self.matched = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def entries(self) -> Sequence[FlowEntry]:
        return tuple(self._entries)

    def add(self, entry: FlowEntry, now: float) -> None:
        """Insert, replacing any entry with identical match+priority."""
        entry.created_at = now
        entry.last_used_at = now
        self._entries = [
            e
            for e in self._entries
            if not (e.match == entry.match and e.priority == entry.priority)
        ]
        self._entries.append(entry)
        # Keep sorted by descending priority, stable on insertion order,
        # so lookup can return the first hit.
        self._entries.sort(key=lambda e: -e.priority)

    def modify(self, match: Match, actions: Tuple[Action, ...], now: float,
               strict_priority: Optional[int] = None) -> int:
        """OpenFlow MODIFY: update actions of matching entries in place,
        preserving counters.  Returns the number modified."""
        count = 0
        for entry in self._entries:
            if strict_priority is not None and entry.priority != strict_priority:
                continue
            if entry.match == match or match.is_subset_of(entry.match) \
                    or entry.match.is_subset_of(match):
                entry.actions = actions
                count += 1
        return count

    def delete(self, match: Match, strict: bool = False,
               priority: Optional[int] = None) -> List[FlowEntry]:
        """OpenFlow DELETE: remove matching entries and return them.

        Non-strict (default) removes every entry whose match is covered
        by ``match``; strict requires exact match+priority equality.
        """
        removed: List[FlowEntry] = []
        kept: List[FlowEntry] = []
        for entry in self._entries:
            if strict:
                hit = entry.match == match and (
                    priority is None or entry.priority == priority
                )
            else:
                hit = entry.match.is_subset_of(match)
            (removed if hit else kept).append(entry)
        self._entries = kept
        return removed

    def lookup(self, frame: Ethernet, in_port: int, now: float) -> Optional[FlowEntry]:
        """The highest-priority live entry matching the frame, touching
        its counters; None on table miss."""
        self.lookups += 1
        for entry in self._entries:
            if entry.expired(now):
                continue
            if entry.match.matches(frame, in_port):
                entry.touch(now, frame.size)
                self.matched += 1
                return entry
        return None

    def expire(self, now: float) -> List[_RemovedEntry]:
        """Evict expired entries, returning them with their reasons."""
        removed: List[_RemovedEntry] = []
        kept: List[FlowEntry] = []
        for entry in self._entries:
            reason = entry.expired(now)
            if reason is None:
                kept.append(entry)
            else:
                removed.append(_RemovedEntry(entry, reason))
        self._entries = kept
        return removed

    def __repr__(self) -> str:
        return f"<FlowTable entries={len(self._entries)} lookups={self.lookups}>"
