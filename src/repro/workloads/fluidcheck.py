"""Oracle-equivalence harness for the fluid fast-forward kernel.

The packet-level simulator is the oracle; :func:`run_mix` builds one
deterministic deployment + randomized CBR mix and runs it either at
pure packet fidelity or with a :class:`~repro.net.fluid.FluidRegion`
attached.  :func:`compare_modes` runs both and diffs the observables
the kernel promises to preserve:

* per-flow delivered bytes and frames at the destination hosts,
* per-flow sent packets/bytes and final running state,
* the control-plane event-log digest (lifecycle events only --
  ``SAMPLE_KINDS`` load samples lead/lag by in-flight packets).

Two runs in one process share the global flow-id counters, so every
flow here pins its source port explicitly: the wire 9-tuples -- and
therefore the controller's session record -- are identical across
runs regardless of allocator state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.deployment import build_livesec_network
from repro.core.events import SAMPLE_KINDS, EventKind
from repro.workloads.flows import CbrUdpFlow

#: Drain margin after the last flow may stop: idle timeout (5 s
#: default) + expiry sweep (1 s) + controller/teardown slack, so every
#: session's FLOW_END lands inside the measured window in both modes.
DRAIN_S = 7.5

_PACKET_SIZES = (256, 512, 800, 1500)


@dataclass
class MixResult:
    """Everything equivalence assertions need from one run."""

    mode: str
    flows: List[Dict[str, object]] = field(default_factory=list)
    control_digest: str = ""
    lifecycle_digest: str = ""  # control digest minus flow-end stats
    flow_ends: List[tuple] = field(default_factory=list)
    full_digest: str = ""
    events_processed: int = 0
    fluid_stats: Optional[dict] = None

    def outcome_table(self) -> List[tuple]:
        """The comparable per-flow record (stable across runs)."""
        return [
            (
                row["index"], row["sent_packets"], row["sent_bytes"],
                row["delivered_frames"], row["delivered_bytes"],
                row["running"],
            )
            for row in self.flows
        ]


def run_mix(
    seed: int,
    fluid: bool,
    num_as: int = 3,
    hosts_per_as: int = 2,
    num_flows: int = 8,
    traffic_s: float = 4.0,
    max_rate_bps: float = 4e6,
    link_flap: bool = False,
    congestion: str = "refuse",
) -> MixResult:
    """One seeded CBR mix, at packet fidelity or with fluid attached.

    Flow parameters (endpoints, rates, sizes, start/stop times) are
    drawn from ``random.Random(seed)`` so a (seed, config) pair builds
    the identical wire workload in both modes.  ``link_flap`` downs a
    core-facing access link mid-run and restores it, exercising both
    the drop path and the fault materialization hook.
    """
    net = build_livesec_network(
        topology="linear",
        num_as=num_as,
        hosts_per_as=hosts_per_as,
        fluid=fluid,
        fluid_config={"congestion": congestion},
    )
    net.start()
    rng = random.Random(seed)
    hosts = [h for h in net.topology.hosts if h is not net.topology.gateway]

    flows = []
    dsts = []
    for index in range(num_flows):
        src, dst = rng.sample(hosts, 2)
        # Durations all end within the traffic window, so no session
        # outlives another's idle expiry by enough for a data-path
        # (rather than sweep) eviction -- see DESIGN.md on FlowRemoved
        # quantization.
        duration = rng.uniform(0.8, traffic_s - 0.5)
        flow = CbrUdpFlow(
            net.sim, src, dst.ip,
            rate_bps=rng.uniform(0.2e6, max_rate_bps),
            packet_size=rng.choice(_PACKET_SIZES),
            duration_s=duration,
            sport=30000 + index,  # pinned: wire tuples match across runs
            dport=9000 + index,
        )
        flow.start(delay_s=rng.uniform(0.0, 0.4))
        flows.append(flow)
        dsts.append(dst)

    if link_flap:
        # Flap one access switch's host-side link: every packet on it
        # drops while down, and the fluid region must materialize on
        # both transitions.  Timed identically in either mode.
        victim = hosts[0].ports[1].link
        down_at = net.sim.now + traffic_s * 0.4
        net.sim.schedule_at(down_at, victim.set_up, False)
        net.sim.schedule_at(down_at + 0.3, victim.set_up, True)

    net.run(traffic_s + DRAIN_S)

    result = MixResult(mode="fluid" if fluid else "packet")
    for index, (flow, dst) in enumerate(zip(flows, dsts)):
        result.flows.append({
            "index": index,
            "sent_packets": flow.packets_sent,
            "sent_bytes": flow.bytes_sent,
            "delivered_frames": dst.rx_frames_by_flow.get(flow.flow_id, 0),
            "delivered_bytes": flow.delivered_bytes(dst),
            "running": flow.running,
        })
    log = net.controller.log
    result.control_digest = log.control_digest()
    result.lifecycle_digest = log.digest(
        exclude_kinds=set(SAMPLE_KINDS) | {EventKind.FLOW_END}
    )
    result.flow_ends = [
        (event.time, event.data.get("session"), event.data.get("user_mac"),
         event.data.get("duration"), event.data.get("packets"),
         event.data.get("bytes"))
        for event in log.all() if event.kind == EventKind.FLOW_END
    ]
    result.full_digest = log.digest()
    result.events_processed = net.sim.events_processed
    if net.fluid is not None:
        result.fluid_stats = net.fluid.stats()
    return result


def compare_modes(
    seed: int, delivered_tolerance_frames: int = 0, **kwargs
) -> Dict[str, object]:
    """Run the same mix under both kernels and diff the observables.

    Sent packets/bytes and final flow state must always be identical.
    Delivered and forwarded counts are exact too, except across a
    fault boundary: delivery is credited at emission, so packets in
    flight when a link-admin fault lands are credited analytically
    while the oracle may drop them mid-path.  Fault scenarios
    therefore pass a small ``delivered_tolerance_frames`` (the
    bandwidth-delay product of the path, in packets -- typically 1-2).
    The same in-flight frames can reach the switches' per-entry
    counters, so with a nonzero tolerance the digest comparison
    excludes FLOW_END events and instead diffs them field-by-field,
    exact on timing/session/duration and tolerant only on the
    packet/byte stats.
    """
    packet = run_mix(seed, fluid=False, **kwargs)
    fluid = run_mix(seed, fluid=True, **kwargs)
    mismatches = []
    for row_p, row_f in zip(packet.outcome_table(), fluid.outcome_table()):
        if row_p == row_f:
            continue
        sent_p, sent_f = row_p[:3] + row_p[5:], row_f[:3] + row_f[5:]
        frames_delta = abs(row_p[3] - row_f[3])
        if sent_p == sent_f and frames_delta <= delivered_tolerance_frames:
            continue
        mismatches.append({"packet": row_p, "fluid": row_f})
    if delivered_tolerance_frames == 0:
        digests_equal = packet.control_digest == fluid.control_digest
    else:
        digests_equal = (
            packet.lifecycle_digest == fluid.lifecycle_digest
            and _flow_ends_match(
                packet.flow_ends, fluid.flow_ends,
                delivered_tolerance_frames,
            )
        )
    return {
        "seed": seed,
        "packet": packet,
        "fluid": fluid,
        "flow_mismatches": mismatches,
        "digests_equal": digests_equal,
        "equivalent": not mismatches and digests_equal,
    }


def _flow_ends_match(
    ends_p: List[tuple], ends_f: List[tuple], tolerance_frames: int
) -> bool:
    """FLOW_END events under fault tolerance: timing, session identity
    and duration must be exact; the packet/byte stats may differ by
    the in-flight frames (bytes bounded by a max-size frame each)."""
    if len(ends_p) != len(ends_f):
        return False
    for row_p, row_f in zip(ends_p, ends_f):
        if row_p[:4] != row_f[:4]:
            return False
        if abs(row_p[4] - row_f[4]) > tolerance_frames:
            return False
        if abs(row_p[5] - row_f[5]) > tolerance_frames * 1500:
            return False
    return True
