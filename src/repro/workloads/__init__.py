"""Synthetic workloads regenerating the deployment's traffic mix.

The paper evaluates with UDP flows, HTTP flows, and the live campus
mix of Figure 7/8 (web browsing, SSH, a BitTorrent surge, a malicious
web access).  :mod:`repro.workloads.flows` provides paced packet-level
flow generators for each application, with payloads that the l7 and
IDS elements genuinely classify; :mod:`repro.workloads.users` layers
user behaviour (join, browse, leave) and churn processes on top.
"""

from repro.workloads.flows import (
    AttackWebFlow,
    BitTorrentFlow,
    CbrUdpFlow,
    HttpFlow,
    PortScanFlow,
    SshFlow,
    TrafficFlow,
    VirusDownloadFlow,
    attach_udp_echo,
)
from repro.workloads.users import UserBehavior, UserChurn

__all__ = [
    "TrafficFlow",
    "CbrUdpFlow",
    "HttpFlow",
    "SshFlow",
    "BitTorrentFlow",
    "AttackWebFlow",
    "PortScanFlow",
    "VirusDownloadFlow",
    "UserBehavior",
    "UserChurn",
    "attach_udp_echo",
]
