"""TCP-backed workloads: transfers that react to loss and blocking.

Unlike the paced generators in :mod:`repro.workloads.flows`, these ride
the real transport of :mod:`repro.net.tcp`: they back off under loss,
recover exactly, and -- importantly for LiveSec -- *stall permanently*
when the controller blocks their flow at the ingress switch, just as a
real attacker's connection would.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.host import Host
from repro.net.tcp import TcpConnection, TcpListener


class TcpServer:
    """A byte-sink server; optionally responds with ``response_bytes``."""

    def __init__(self, host: Host, port: int = 80,
                 response_bytes: int = 0):
        self.host = host
        self.port = port
        self.response_bytes = response_bytes
        self.bytes_received = 0
        self.connections_seen = 0
        self.listener = TcpListener(
            host, port,
            on_connection=self._on_connection,
            on_receive=self._on_receive,
        )

    def _on_connection(self, conn: TcpConnection) -> None:
        self.connections_seen += 1

    def _on_receive(self, conn: TcpConnection, data: bytes) -> None:
        self.bytes_received += len(data)
        if self.response_bytes and conn.bytes_sent == 0:
            conn.send(b"R" * self.response_bytes)


class TcpTransfer:
    """One reliable upload of ``size_bytes`` from ``src`` to a server.

    The first payload bytes carry an HTTP-looking request line so the
    L7 classifier identifies the connection.
    """

    def __init__(
        self,
        src: Host,
        server_ip: str,
        port: int = 80,
        size_bytes: int = 1_000_000,
        on_complete: Optional[Callable[["TcpTransfer"], None]] = None,
        leading_payload: bytes = b"GET /object HTTP/1.1\r\n\r\n",
    ):
        self.src = src
        self.sim = src.sim
        self.server_ip = server_ip
        self.port = port
        self.size_bytes = size_bytes
        self.on_complete = on_complete
        self.leading_payload = leading_payload
        self.connection: Optional[TcpConnection] = None
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None

    def start(self, delay_s: float = 0.0) -> "TcpTransfer":
        self.sim.schedule(delay_s, self._begin)
        return self

    def _begin(self) -> None:
        self.started_at = self.sim.now
        body = self.leading_payload + b"D" * (
            self.size_bytes - len(self.leading_payload)
        )
        self.connection = TcpConnection.connect(
            self.src, self.server_ip, self.port,
            on_established=lambda conn: (conn.send(body), conn.close()),
            on_close=self._on_close,
        )

    def _on_close(self, conn: TcpConnection) -> None:
        self.completed_at = self.sim.now
        if self.on_complete is not None:
            self.on_complete(self)

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    @property
    def duration_s(self) -> Optional[float]:
        if self.started_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    def goodput_bps(self) -> Optional[float]:
        duration = self.duration_s
        if not duration:
            return None
        return self.size_bytes * 8.0 / duration
