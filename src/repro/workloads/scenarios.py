"""Canned multi-phase scenarios over a LiveSec deployment.

These reproduce, programmatically, the kind of day the deployment's
network actually has: users joining and leaving, a mix of web/SSH/
BitTorrent activity, and the occasional attack.  Scenarios power the
soak tests and give examples/CLI users a one-call way to generate
believable campus traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.deployment import LiveSecNetwork
from repro.workloads.flows import AttackWebFlow, PortScanFlow, VirusDownloadFlow
from repro.workloads.users import PROFILES, UserBehavior, UserChurn

ATTACK_KINDS = ("web", "portscan", "virus")


@dataclass
class ScenarioReport:
    """What a scenario did, for assertions and summaries."""

    duration_s: float = 0.0
    users: int = 0
    attacks_launched: int = 0
    attack_kinds: List[str] = field(default_factory=list)
    joins: int = 0
    leaves: int = 0


class CampusDayScenario:
    """User churn + mixed application traffic + periodic attacks.

    The scenario owns randomness through one seeded ``random.Random``,
    so a given (network, seed) pair replays identically.
    """

    def __init__(
        self,
        net: LiveSecNetwork,
        server_ip: str,
        seed: int = 7,
        mean_session_s: float = 20.0,
        mean_gap_s: float = 8.0,
        attack_interval_s: Optional[float] = 15.0,
        user_rate_bps: float = 1e6,
    ):
        self.net = net
        self.server_ip = server_ip
        self.rng = random.Random(seed)
        self.attack_interval_s = attack_interval_s
        self.report = ScenarioReport()
        hosts = [
            host for host in net.topology.hosts
            if host is not net.topology.gateway
        ]
        self.behaviors = [
            UserBehavior(
                net.sim, host, server_ip,
                profile=self.rng.choice(PROFILES),
                rng=random.Random(self.rng.random()),
                rate_bps=user_rate_bps,
            )
            for host in hosts
        ]
        self.report.users = len(self.behaviors)
        self.churn = UserChurn(
            net.sim, self.behaviors,
            mean_session_s=mean_session_s,
            mean_gap_s=mean_gap_s,
            seed=self.rng.randrange(1 << 30),
        )
        self._attack_timer = None

    # ------------------------------------------------------------------

    def run(self, duration_s: float) -> ScenarioReport:
        """Drive the scenario for ``duration_s`` simulated seconds."""
        self.churn.start()
        if self.attack_interval_s is not None:
            self._attack_timer = self.net.sim.every(
                self.attack_interval_s, self._launch_attack
            )
        self.net.run(duration_s)
        self.stop()
        self.report.duration_s += duration_s
        self.report.joins = self.churn.joins
        self.report.leaves = self.churn.leaves
        return self.report

    def stop(self) -> None:
        self.churn.stop()
        if self._attack_timer is not None:
            self._attack_timer.cancel()
            self._attack_timer = None

    # ------------------------------------------------------------------

    def _launch_attack(self) -> None:
        active = [b for b in self.behaviors if b.active]
        if not active:
            return
        attacker = self.rng.choice(active)
        kind = self.rng.choice(ATTACK_KINDS)
        if kind == "web":
            AttackWebFlow(
                self.net.sim, attacker.host, self.server_ip,
                rate_bps=1e6, duration_s=4.0,
            ).start()
        elif kind == "portscan":
            PortScanFlow(
                self.net.sim, attacker.host, self.server_ip, ports=30,
            ).start()
        else:
            VirusDownloadFlow(
                self.net.sim, attacker.host, self.server_ip,
                rate_bps=1e6, duration_s=4.0,
            ).start()
        self.report.attacks_launched += 1
        self.report.attack_kinds.append(kind)
