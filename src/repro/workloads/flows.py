"""Packet-level application flow generators.

A :class:`TrafficFlow` paces frames from a source host toward a
destination IP at a target bit rate.  Subclasses shape the payload so
the service elements see realistic bytes: the first packets carry the
application's greeting (classifiable by the l7 element), attack flows
embed IDS-triggering content, and so on.

Every flow gets a unique ``flow_id`` stamped on its frames; receiving
hosts account delivered bytes per flow id, which is how the benches
measure goodput without touching headers.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.net.host import Host
from repro.net.packet import IP_PROTO_TCP, IP_PROTO_UDP

_flow_ids = itertools.count(1)
_ephemeral_ports = itertools.count(20000)

DEFAULT_PACKET_SIZE = 1500


def next_flow_id() -> int:
    return next(_flow_ids)


def attach_udp_echo(host: Host, dport: int = 9000,
                    payload: bytes = b"ECHO") -> None:
    """Make ``host`` answer every UDP datagram to ``dport`` with a
    datagram back to the sender (ports swapped, same flow id).

    Workload flows are one-way; tests that need reply-direction
    traffic through the service chain -- e.g. the stateful firewall's
    ESTABLISHED promotion -- attach this to the destination host.
    """

    def _echo(receiver: Host, frame) -> None:
        ip = frame.ip()
        segment = ip.payload
        receiver.send_udp(
            ip.src, sport=segment.dport, dport=segment.sport,
            payload=payload, flow_id=frame.flow_id,
        )

    host.on_app(IP_PROTO_UDP, dport, _echo)


class TrafficFlow:
    """A paced, fixed-rate flow of frames from ``src`` to ``dst_ip``."""

    proto = IP_PROTO_UDP
    default_dport = 9000

    def __init__(
        self,
        sim,
        src: Host,
        dst_ip: str,
        rate_bps: float = 10e6,
        packet_size: int = DEFAULT_PACKET_SIZE,
        duration_s: Optional[float] = None,
        sport: Optional[int] = None,
        dport: Optional[int] = None,
        max_packets: Optional[int] = None,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive (got {rate_bps})")
        if packet_size <= 0:
            raise ValueError(f"packet size must be positive (got {packet_size})")
        self.sim = sim
        self.src = src
        self.dst_ip = dst_ip
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.duration_s = duration_s
        self.max_packets = max_packets
        self.sport = sport if sport is not None else next(_ephemeral_ports)
        self.dport = dport if dport is not None else self.default_dport
        self.flow_id = next_flow_id()
        self.packets_sent = 0
        self.bytes_sent = 0
        self.running = False
        self._started_at: Optional[float] = None
        self._stop_at: Optional[float] = None
        self._pending = None

    @property
    def interval_s(self) -> float:
        return self.packet_size * 8.0 / self.rate_bps

    def start(self, delay_s: float = 0.0) -> "TrafficFlow":
        """Begin emitting; returns self for chaining."""
        if self.running:
            raise RuntimeError("flow already running")
        self.running = True
        self._pending = self.sim.schedule(delay_s, self._begin)
        return self

    def _begin(self) -> None:
        self._started_at = self.sim.now
        if self.duration_s is not None:
            self._stop_at = self.sim.now + self.duration_s
        fluid = getattr(self.sim, "fluid", None)
        if fluid is not None:
            # A new flow's first packet must punt to the controller at
            # packet fidelity: resume everything, then register as a
            # fast-forward candidate.
            fluid.flow_started(self)
        self._emit()

    def stop(self) -> None:
        self.running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        fluid = getattr(self.sim, "fluid", None)
        if fluid is not None:
            fluid.flow_stopped(self)

    def paced_at(self, index: int) -> float:
        """The absolute emission time of the ``index``-th packet.

        Pacing is anchored to the flow's start: packet *k* goes out at
        ``_started_at + k * interval_s``.  Scheduling each packet
        relative to the previous one accumulated float error over long
        horizons (a 60 s flow drifted packets short); both the emit
        path and the fluid kernel's analytic advance evaluate this same
        expression, so they agree bit-for-bit.
        """
        return self._started_at + index * self.interval_s

    def _emit(self) -> None:
        if not self.running:
            return
        if self._stop_at is not None and self.sim.now >= self._stop_at:
            self.running = False
            return
        if self.max_packets is not None and self.packets_sent >= self.max_packets:
            self.running = False
            return
        payload = self.payload_for(self.packets_sent)
        if self.proto == IP_PROTO_TCP:
            self.src.send_tcp(
                self.dst_ip, self.sport, self.dport,
                payload=payload, flags=self.flags_for(self.packets_sent),
                size=self.packet_size, flow_id=self.flow_id,
            )
        else:
            self.src.send_udp(
                self.dst_ip, self.sport, self.dport,
                payload=payload, size=self.packet_size, flow_id=self.flow_id,
            )
        self.packets_sent += 1
        self.bytes_sent += self.packet_size
        self._pending = self.sim.schedule_at(
            max(self.sim.now, self.paced_at(self.packets_sent)), self._emit
        )

    # Subclass hooks -----------------------------------------------------

    def payload_for(self, index: int) -> bytes:
        """The application bytes of the ``index``-th packet."""
        return b"X" * 32

    def flags_for(self, index: int) -> str:
        """TCP flags of the ``index``-th packet (TCP flows only)."""
        return "S" if index == 0 else ""

    # Accounting ---------------------------------------------------------

    def delivered_bytes(self, dst: Host) -> int:
        return dst.rx_bytes_by_flow.get(self.flow_id, 0)

    def goodput_bps(self, dst: Host) -> float:
        """Delivered rate since the flow started."""
        if self._started_at is None:
            return 0.0
        elapsed = self.sim.now - self._started_at
        if elapsed <= 0:
            return 0.0
        return self.delivered_bytes(dst) * 8.0 / elapsed


class CbrUdpFlow(TrafficFlow):
    """Constant-bit-rate UDP (the paper's raw throughput tests)."""

    proto = IP_PROTO_UDP
    default_dport = 9000

    def payload_for(self, index: int) -> bytes:
        return b"CBRDATA" + bytes(str(index), "ascii")


class HttpFlow(TrafficFlow):
    """Web traffic: a GET then server-push-style data segments."""

    proto = IP_PROTO_TCP
    default_dport = 80

    def __init__(self, *args, url: str = "/index.html", **kwargs):
        super().__init__(*args, **kwargs)
        self.url = url

    def payload_for(self, index: int) -> bytes:
        if index == 0:
            return (
                f"GET {self.url} HTTP/1.1\r\nHost: server\r\n\r\n".encode()
            )
        return b"HTTP/1.1 200 OK payload segment " + bytes(str(index), "ascii")

    def flags_for(self, index: int) -> str:
        return "S" if index == 0 else ""


class SshFlow(TrafficFlow):
    """Interactive SSH: low rate, small packets, SSH banner first."""

    proto = IP_PROTO_TCP
    default_dport = 22

    def __init__(self, sim, src, dst_ip, rate_bps: float = 64e3,
                 packet_size: int = 128, **kwargs):
        super().__init__(sim, src, dst_ip, rate_bps=rate_bps,
                         packet_size=packet_size, **kwargs)

    def payload_for(self, index: int) -> bytes:
        if index == 0:
            return b"SSH-2.0-OpenSSH_5.8p1"
        return b"\x00\x00\x00\x1c encrypted"


class BitTorrentFlow(TrafficFlow):
    """A BitTorrent download: the protocol handshake then bulk pieces.

    Figure 8's traffic surge comes from one of these.
    """

    proto = IP_PROTO_TCP
    default_dport = 6881

    def payload_for(self, index: int) -> bytes:
        if index == 0:
            return b"\x13BitTorrent protocol" + b"\x00" * 8
        return b"piece-data" * 4


class AttackWebFlow(HttpFlow):
    """A web flow that requests malicious content after a few packets.

    The Figure 8 scenario: "another user is trying to access some
    malicious website, while this action is detected and reported by
    the service element immediately."
    """

    def __init__(self, *args, attack_after: int = 3, **kwargs):
        super().__init__(*args, **kwargs)
        self.attack_after = attack_after

    def payload_for(self, index: int) -> bytes:
        if index == self.attack_after:
            return b"GET /malware/dropper.exe HTTP/1.1\r\nHost: evil\r\n\r\n"
        return super().payload_for(index)


class PortScanFlow(TrafficFlow):
    """A SYN scan: one probe per destination port, sweeping upward."""

    proto = IP_PROTO_TCP
    default_dport = 1

    def __init__(self, sim, src, dst_ip, ports: int = 50,
                 rate_bps: float = 512e3, packet_size: int = 64, **kwargs):
        kwargs.setdefault("max_packets", ports)
        super().__init__(sim, src, dst_ip, rate_bps=rate_bps,
                         packet_size=packet_size, **kwargs)
        self.ports = ports

    def _emit(self) -> None:
        # A scan changes destination port per probe, so each probe is
        # its own 9-tuple: emit directly rather than through the paced
        # single-flow path.
        if not self.running or self.packets_sent >= self.ports:
            self.running = False
            return
        port = 1000 + self.packets_sent
        self.src.send_tcp(
            self.dst_ip, self.sport, port, payload=b"", flags="S",
            size=self.packet_size, flow_id=self.flow_id,
        )
        self.packets_sent += 1
        self.bytes_sent += self.packet_size
        self._pending = self.sim.schedule_at(
            max(self.sim.now, self.paced_at(self.packets_sent)), self._emit
        )


class VirusDownloadFlow(HttpFlow):
    """An HTTP download whose body contains a virus signature."""

    def __init__(self, *args, infected_packet: int = 5, **kwargs):
        super().__init__(*args, **kwargs)
        self.infected_packet = infected_packet

    def payload_for(self, index: int) -> bytes:
        if index == self.infected_packet:
            return b"X5O!P%@AP[4\\PZX54(P^)7CC)7}$EICAR"
        return super().payload_for(index)
