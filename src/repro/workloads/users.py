"""User behaviour and churn processes.

A :class:`UserBehavior` drives one host through an application
profile -- web browsing, SSH sessions, BitTorrent downloads -- with
seeded randomness so runs are reproducible.  :class:`UserChurn`
layers Poisson join/leave dynamics over a user population, which is
what exercises the controller's host discovery and expiry paths and
feeds the visualization scenarios.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional, Sequence

from repro.net.host import Host
from repro.workloads.flows import (
    BitTorrentFlow,
    HttpFlow,
    SshFlow,
    TrafficFlow,
)

PROFILES = ("web", "ssh", "bittorrent")


class UserBehavior:
    """One user's application activity against a server/gateway IP."""

    def __init__(
        self,
        sim,
        host: Host,
        server_ip: str,
        profile: str = "web",
        rng: Optional[random.Random] = None,
        rate_bps: float = 2e6,
    ):
        if profile not in PROFILES:
            raise ValueError(f"unknown profile {profile!r}; use one of {PROFILES}")
        self.sim = sim
        self.host = host
        self.server_ip = server_ip
        self.profile = profile
        self.rng = rng if rng is not None else random.Random(zlib.crc32(host.name.encode()))
        self.rate_bps = rate_bps
        self.flows: List[TrafficFlow] = []
        self.active = False

    def join(self) -> None:
        """Announce the host and start the profile's traffic."""
        self.active = True
        self.host.announce()
        self.sim.schedule(0.2 + self.rng.random() * 0.3, self._start_flow)

    def _start_flow(self) -> None:
        if not self.active:
            return
        flow = self._make_flow()
        flow.start()
        self.flows.append(flow)

    def _make_flow(self) -> TrafficFlow:
        if self.profile == "web":
            return HttpFlow(
                self.sim, self.host, self.server_ip, rate_bps=self.rate_bps
            )
        if self.profile == "ssh":
            return SshFlow(self.sim, self.host, self.server_ip)
        return BitTorrentFlow(
            self.sim, self.host, self.server_ip, rate_bps=self.rate_bps * 10
        )

    def switch_profile(self, profile: str) -> None:
        """Change application (e.g. the Figure 8 web->BitTorrent shift)."""
        if profile not in PROFILES:
            raise ValueError(f"unknown profile {profile!r}")
        for flow in self.flows:
            flow.stop()
        self.flows.clear()
        self.profile = profile
        if self.active:
            self._start_flow()

    def leave(self) -> None:
        """Stop all traffic; the controller ages the host out."""
        self.active = False
        for flow in self.flows:
            flow.stop()
        self.flows.clear()

    def total_sent_bytes(self) -> int:
        return sum(flow.bytes_sent for flow in self.flows)


class UserChurn:
    """Poisson join/leave churn over a population of behaviours."""

    def __init__(
        self,
        sim,
        behaviors: Sequence[UserBehavior],
        mean_session_s: float = 30.0,
        mean_gap_s: float = 10.0,
        seed: int = 42,
    ):
        self.sim = sim
        self.behaviors = list(behaviors)
        self.mean_session_s = mean_session_s
        self.mean_gap_s = mean_gap_s
        self.rng = random.Random(seed)
        self.joins = 0
        self.leaves = 0
        self._running = False

    def start(self) -> None:
        self._running = True
        for behavior in self.behaviors:
            self.sim.schedule(
                self.rng.expovariate(1.0 / self.mean_gap_s),
                self._join, behavior,
            )

    def stop(self) -> None:
        self._running = False
        for behavior in self.behaviors:
            if behavior.active:
                behavior.leave()

    def _join(self, behavior: UserBehavior) -> None:
        if not self._running:
            return
        behavior.join()
        self.joins += 1
        self.sim.schedule(
            self.rng.expovariate(1.0 / self.mean_session_s),
            self._leave, behavior,
        )

    def _leave(self, behavior: UserBehavior) -> None:
        if not self._running or not behavior.active:
            return
        behavior.leave()
        self.leaves += 1
        self.sim.schedule(
            self.rng.expovariate(1.0 / self.mean_gap_s),
            self._join, behavior,
        )
