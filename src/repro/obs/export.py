"""Snapshot exporters: JSON (lossless round-trip), Prometheus text
exposition, and the human-readable table the CLI prints.

JSON is the machine interchange format -- ``from_json(to_json(s)) ==
s`` exactly, including histogram reservoirs, so snapshots can be
archived per run and merged across runs.  The Prometheus format
renders counters/gauges natively and histograms as summaries with
``quantile`` labels, ready for a textfile collector or a scrape
endpoint.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.metrics import MetricKey, MetricSnapshot, MetricsSnapshot

__all__ = [
    "format_snapshot",
    "from_json",
    "to_json",
    "to_prometheus_text",
]


# ----------------------------------------------------------------------
# JSON

def to_json(snapshot: MetricsSnapshot, indent: Optional[int] = None) -> str:
    """Serialize a snapshot to JSON (lossless; see :func:`from_json`)."""
    payload = []
    for metric in snapshot:
        entry: Dict[str, object] = {
            "kind": metric.kind,
            "name": metric.name,
            "labels": {k: v for k, v in metric.labels},
            "help": metric.help,
        }
        if metric.kind == "histogram":
            entry.update(
                count=metric.count,
                sum=metric.sum,
                min=metric.min,
                max=metric.max,
                percentiles={str(p): v for p, v in metric.percentiles},
                samples=list(metric.samples),
            )
        else:
            entry["value"] = metric.value
        payload.append(entry)
    return json.dumps({"metrics": payload}, indent=indent)


def from_json(text: str) -> MetricsSnapshot:
    """Parse a snapshot serialized by :func:`to_json`."""
    payload = json.loads(text)
    metrics: Dict[MetricKey, MetricSnapshot] = {}
    for entry in payload["metrics"]:
        labels = tuple(sorted(
            (str(k), str(v)) for k, v in entry.get("labels", {}).items()
        ))
        if entry["kind"] == "histogram":
            metric = MetricSnapshot(
                kind="histogram",
                name=entry["name"],
                labels=labels,
                help=entry.get("help", ""),
                count=int(entry["count"]),
                sum=float(entry["sum"]),
                min=float(entry["min"]),
                max=float(entry["max"]),
                percentiles=tuple(
                    (float(p), float(v))
                    for p, v in sorted(
                        entry.get("percentiles", {}).items(),
                        key=lambda item: float(item[0]),
                    )
                ),
                samples=tuple(float(s) for s in entry.get("samples", ())),
            )
        else:
            metric = MetricSnapshot(
                kind=entry["kind"],
                name=entry["name"],
                labels=labels,
                help=entry.get("help", ""),
                value=float(entry["value"]),
            )
        metrics[metric.key] = metric
    return MetricsSnapshot(metrics)


# ----------------------------------------------------------------------
# Prometheus text exposition

def _prom_name(name: str, namespace: str) -> str:
    sanitized = name.replace(".", "_").replace("-", "_")
    return f"{namespace}_{sanitized}" if namespace else sanitized


def _prom_labels(labels, extra: Optional[Dict[str, str]] = None) -> str:
    pairs = list(labels) + sorted((extra or {}).items())
    if not pairs:
        return ""
    rendered = ",".join(f'{k}="{v}"' for k, v in pairs)
    return f"{{{rendered}}}"


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus_text(snapshot: MetricsSnapshot,
                       namespace: str = "livesec") -> str:
    """Render the snapshot in the Prometheus text exposition format.

    Histograms are exported as summaries (pre-computed quantiles),
    which matches what the registry actually stores.
    """
    lines: List[str] = []
    seen_headers = set()
    for metric in snapshot:
        base = _prom_name(metric.name, namespace)
        if metric.kind == "counter":
            name = f"{base}_total"
            if name not in seen_headers:
                seen_headers.add(name)
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} counter")
            lines.append(
                f"{name}{_prom_labels(metric.labels)}"
                f" {_prom_value(metric.value)}"
            )
        elif metric.kind == "gauge":
            if base not in seen_headers:
                seen_headers.add(base)
                if metric.help:
                    lines.append(f"# HELP {base} {metric.help}")
                lines.append(f"# TYPE {base} gauge")
            lines.append(
                f"{base}{_prom_labels(metric.labels)}"
                f" {_prom_value(metric.value)}"
            )
        else:  # histogram -> summary
            if base not in seen_headers:
                seen_headers.add(base)
                if metric.help:
                    lines.append(f"# HELP {base} {metric.help}")
                lines.append(f"# TYPE {base} summary")
            for p, value in metric.percentiles:
                quantile = _prom_value(p / 100.0)
                lines.append(
                    f"{base}{_prom_labels(metric.labels, {'quantile': quantile})}"
                    f" {_prom_value(value)}"
                )
            lines.append(
                f"{base}_sum{_prom_labels(metric.labels)}"
                f" {_prom_value(metric.sum)}"
            )
            lines.append(
                f"{base}_count{_prom_labels(metric.labels)}"
                f" {_prom_value(metric.count)}"
            )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Human-readable rendering (the CLI's `stats` output)

def format_snapshot(snapshot: MetricsSnapshot, title: str = "") -> str:
    """A terminal-friendly table of the snapshot, grouped by kind."""
    counters = [m for m in snapshot if m.kind == "counter"]
    gauges = [m for m in snapshot if m.kind == "gauge"]
    histograms = [m for m in snapshot if m.kind == "histogram"]
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    if counters:
        lines.append("counters:")
        width = max(len(str(m.key)) for m in counters)
        for metric in counters:
            lines.append(f"  {str(metric.key):<{width}}  "
                         f"{_prom_value(metric.value)}")
    if gauges:
        lines.append("gauges:")
        width = max(len(str(m.key)) for m in gauges)
        for metric in gauges:
            lines.append(f"  {str(metric.key):<{width}}  "
                         f"{_prom_value(metric.value)}")
    if histograms:
        width = max(len(str(m.key)) for m in histograms)
        width = max(width, len("histograms:") - 2)
        lines.append(f"  {'histograms:':<{width}} {'count':>7}"
                     f" {'mean':>11} {'p50':>11} {'p95':>11}"
                     f" {'p99':>11} {'max':>11}")
        for metric in histograms:
            mean = metric.sum / metric.count if metric.count else 0.0
            lines.append(
                f"  {str(metric.key):<{width}} {metric.count:>7}"
                f" {mean:>11.6g} {metric.quantile(50.0):>11.6g}"
                f" {metric.quantile(95.0):>11.6g}"
                f" {metric.quantile(99.0):>11.6g} {metric.max:>11.6g}"
            )
    return "\n".join(lines)
