"""Typed metrics primitives and the registry that owns them.

The controller, switches, simulator and baselines all publish their
operational state through one :class:`MetricsRegistry` -- the paper's
service-aware monitoring story (Section IV.C/IV.D) applied to the
control plane itself.  Three metric kinds cover everything the
reproduction measures:

* :class:`Counter`  -- monotonically increasing event counts
  (packet-ins, rule installs, blocked flows),
* :class:`Gauge`    -- point-in-time values, either pushed with
  ``set()`` or pulled lazily from a callback (flow-table occupancy,
  live sessions),
* :class:`Histogram` -- value distributions with p50/p95/p99
  (packet-in handling latency, flow-setup rule counts) and a
  ``time()`` context manager driven by a pluggable clock, so the same
  type times wall-clock hot paths and simulated-time spans alike.

Snapshots are immutable, mergeable (multi-run/multi-shard
aggregation), and feed the JSON and Prometheus exporters in
:mod:`repro.obs.export`.

Determinism note: histograms keep a bounded sample reservoir using
*stride* decimation (every k-th observation once full), never random
sampling -- identical observation sequences produce byte-identical
snapshots.  In practice that makes every sim-clock metric reproduce
exactly across runs of the deterministic simulator; wall-clock timers
(``perf_counter``) measure this process's real compute cost and
naturally vary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricKey",
    "MetricSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PERCENTILES",
]

PERCENTILES = (50.0, 95.0, 99.0)
DEFAULT_MAX_SAMPLES = 4096


def _labels_key(labels: Mapping[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class MetricKey:
    """Registry identity of one metric: name plus sorted label pairs."""

    name: str
    labels: Tuple[Tuple[str, str], ...] = ()

    def __str__(self) -> str:
        if not self.labels:
            return self.name
        rendered = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{rendered}}}"


def percentile(sorted_samples: Tuple[float, ...], p: float) -> float:
    """Nearest-rank percentile over an ascending-sorted sample tuple."""
    if not sorted_samples:
        return 0.0
    if p <= 0:
        return sorted_samples[0]
    rank = int(-(-(p / 100.0 * len(sorted_samples)) // 1))  # ceil
    index = min(len(sorted_samples), max(1, rank)) - 1
    return sorted_samples[index]


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("key", "help", "_value")

    def __init__(self, key: MetricKey, help: str = ""):
        self.key = key
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.key} cannot decrease (by {amount})")
        self._value += amount

    def snapshot(self) -> "MetricSnapshot":
        return MetricSnapshot(
            kind=self.kind, name=self.key.name, labels=self.key.labels,
            help=self.help, value=self._value,
        )


class Gauge:
    """A point-in-time value: pushed via ``set()`` or pulled lazily
    from a zero-argument callback installed with ``set_function()``."""

    kind = "gauge"
    __slots__ = ("key", "help", "_value", "_fn")

    def __init__(self, key: MetricKey, help: str = ""):
        self.key = key
        self.help = help
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def set(self, value: float) -> None:
        self._fn = None
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Make the gauge read ``fn()`` at snapshot time (pull mode)."""
        self._fn = fn

    def snapshot(self) -> "MetricSnapshot":
        return MetricSnapshot(
            kind=self.kind, name=self.key.name, labels=self.key.labels,
            help=self.help, value=self.value,
        )


class _Timer:
    """Context manager that observes its elapsed clock span."""

    __slots__ = ("_histogram", "_clock", "_start")

    def __init__(self, histogram: "Histogram", clock: Callable[[], float]):
        self._histogram = histogram
        self._clock = clock
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = self._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(self._clock() - self._start)


class Histogram:
    """A value distribution with exact count/sum/min/max and
    percentile estimates from a bounded, deterministic reservoir.

    Once the reservoir holds ``max_samples`` values it is decimated to
    every other sample and the recording stride doubles, so long runs
    stay bounded while the retained points remain spread uniformly
    over the observation sequence (no RNG -- snapshots reproduce).
    """

    kind = "histogram"
    __slots__ = (
        "key", "help", "max_samples", "_clock",
        "count", "sum", "min", "max",
        "_samples", "_stride", "_ticks",
    )

    def __init__(
        self,
        key: MetricKey,
        help: str = "",
        clock: Optional[Callable[[], float]] = None,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ):
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2 (got {max_samples})")
        self.key = key
        self.help = help
        self.max_samples = max_samples
        self._clock = clock if clock is not None else time.perf_counter
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list = []
        self._stride = 1
        self._ticks = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._ticks += 1
        if self._ticks % self._stride:
            return
        self._samples.append(value)
        if len(self._samples) >= self.max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2

    def time(self) -> _Timer:
        """``with histogram.time():`` observes the elapsed clock span."""
        return _Timer(self, self._clock)

    def percentile(self, p: float) -> float:
        return percentile(tuple(sorted(self._samples)), p)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> "MetricSnapshot":
        samples = tuple(sorted(self._samples))
        return MetricSnapshot(
            kind=self.kind, name=self.key.name, labels=self.key.labels,
            help=self.help,
            count=self.count, sum=self.sum,
            min=self.min if self.count else 0.0,
            max=self.max if self.count else 0.0,
            percentiles=tuple(
                (p, percentile(samples, p)) for p in PERCENTILES
            ),
            samples=samples,
        )


@dataclass(frozen=True)
class MetricSnapshot:
    """Immutable point-in-time state of a single metric.

    ``value`` is set for counters/gauges; the distribution fields for
    histograms.  ``samples`` carries the (bounded) reservoir so
    snapshots merge and round-trip through JSON exactly.
    """

    kind: str
    name: str
    labels: Tuple[Tuple[str, str], ...] = ()
    help: str = ""
    value: float = 0.0
    count: int = 0
    sum: float = 0.0
    min: float = 0.0
    max: float = 0.0
    percentiles: Tuple[Tuple[float, float], ...] = ()
    samples: Tuple[float, ...] = ()

    @property
    def key(self) -> MetricKey:
        return MetricKey(self.name, self.labels)

    def quantile(self, p: float) -> float:
        for point, value in self.percentiles:
            if point == p:
                return value
        return percentile(self.samples, p)

    def merge(self, other: "MetricSnapshot") -> "MetricSnapshot":
        """Combine two snapshots of the *same* metric.

        Counters add; gauges take ``other`` (the more recent shard);
        histograms pool their reservoirs and recompute percentiles.
        """
        if (self.kind, self.name, self.labels) != (
            other.kind, other.name, other.labels
        ):
            raise ValueError(
                f"cannot merge {self.kind} {self.key} with"
                f" {other.kind} {other.key}"
            )
        if self.kind == "counter":
            return MetricSnapshot(
                kind=self.kind, name=self.name, labels=self.labels,
                help=self.help or other.help, value=self.value + other.value,
            )
        if self.kind == "gauge":
            return MetricSnapshot(
                kind=self.kind, name=self.name, labels=self.labels,
                help=self.help or other.help, value=other.value,
            )
        samples = tuple(sorted(self.samples + other.samples))
        count = self.count + other.count
        return MetricSnapshot(
            kind=self.kind, name=self.name, labels=self.labels,
            help=self.help or other.help,
            count=count, sum=self.sum + other.sum,
            min=min(self.min, other.min) if count else 0.0,
            max=max(self.max, other.max) if count else 0.0,
            percentiles=tuple((p, percentile(samples, p)) for p in PERCENTILES),
            samples=samples,
        )


class MetricsSnapshot:
    """An ordered, mergeable collection of metric snapshots."""

    def __init__(self, metrics: Mapping[MetricKey, MetricSnapshot]):
        self._metrics: Dict[MetricKey, MetricSnapshot] = dict(metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[MetricSnapshot]:
        return iter(self._metrics.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return self._metrics == other._metrics

    def get(self, name: str, **labels) -> Optional[MetricSnapshot]:
        return self._metrics.get(MetricKey(name, _labels_key(labels)))

    def with_prefix(self, prefix: str) -> "MetricsSnapshot":
        """The sub-snapshot of metrics whose name starts with ``prefix``."""
        return MetricsSnapshot({
            key: metric for key, metric in self._metrics.items()
            if key.name.startswith(prefix)
        })

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Union of two snapshots, merging metrics present in both."""
        merged = dict(self._metrics)
        for key, metric in other._metrics.items():
            mine = merged.get(key)
            merged[key] = metric if mine is None else mine.merge(metric)
        return MetricsSnapshot(merged)

    def counters(self) -> Dict[str, float]:
        """Flat ``{str(key): value}`` view of the counter metrics."""
        return {
            str(key): metric.value
            for key, metric in self._metrics.items()
            if metric.kind == "counter"
        }


class MetricsRegistry:
    """Get-or-create factory and owner of the process's metrics.

    ``clock`` is the default timebase for histogram ``time()`` timers
    (wall-clock ``perf_counter`` unless given); individual histograms
    may override it, e.g. with ``lambda: sim.now`` for simulated-time
    spans.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock = clock if clock is not None else time.perf_counter
        self._metrics: Dict[MetricKey, object] = {}

    # ------------------------------------------------------------------
    # Factories

    def _get_or_create(self, cls, name: str, help: str, labels: dict,
                       **kwargs):
        key = MetricKey(name, _labels_key(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {key} already registered as"
                    f" {existing.kind}, not {cls.kind}"  # type: ignore[attr-defined]
                )
            return existing
        metric = cls(key, help, **kwargs)
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        clock: Optional[Callable[[], float]] = None,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        **labels,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels,
            clock=clock if clock is not None else self.clock,
            max_samples=max_samples,
        )

    # ------------------------------------------------------------------
    # Introspection

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def get(self, name: str, **labels):
        return self._metrics.get(MetricKey(name, _labels_key(labels)))

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot({
            key: metric.snapshot()  # type: ignore[attr-defined]
            for key, metric in sorted(
                self._metrics.items(), key=lambda item: (item[0].name,
                                                         item[0].labels)
            )
        })
