"""Unified observability layer: metrics registry + exporters.

One :class:`MetricsRegistry` is threaded through the controller, the
simulator, the switches, the load balancer and the baselines, so every
run -- LiveSec or baseline -- reports through the same typed metrics
and the same JSON/Prometheus exporters.  See ``README.md``
("Observability") for the metric catalogue and ``DESIGN.md`` for the
mapping back to the paper's sections.
"""

from repro.obs.export import (
    format_snapshot,
    from_json,
    to_json,
    to_prometheus_text,
)
from repro.obs.metrics import (
    PERCENTILES,
    Counter,
    Gauge,
    Histogram,
    MetricKey,
    MetricSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricKey",
    "MetricSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PERCENTILES",
    "format_snapshot",
    "from_json",
    "to_json",
    "to_prometheus_text",
]
