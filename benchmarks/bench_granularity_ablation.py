"""E12 (ablation: flow-grain vs user-grain load balance, Section IV.B).

Paper: "with few users but heavy network traffic, flow-grain load
balance is preferred, or flows are equally assigned to different
security service elements.  However, when there are a large number of
users, user-grain load balance is more effective in terms of both
speed and efficiency."

Regenerated rows, for two regimes x two granularities:

* few users / heavy traffic (2 users, many parallel heavy flows):
  flow grain spreads one user's flows over all elements; user grain
  pins each user to one element and strands capacity,
* many users (24 users, one light flow each): both balance, but user
  grain reaches each dispatch decision from a small pinned map --
  fewer balancer decisions ("speed and efficiency").
"""

import sys

from repro.analysis import format_table, mbps
from repro.core.loadbalance import load_deviation
from repro.core.policy import Granularity
from repro.workloads import HttpFlow

from common import (
    GATEWAY_IP,
    build_throughput_net,
    ids_chain_policies,
    run_once,
    senders_for,
)

MEASURE_S = 3.0


def _run(granularity: Granularity, users: int, flows_per_user: int,
         rate_bps: float):
    net = build_throughput_net(
        4, "ids", num_as=6, hosts_per_as=4,
        policies=ids_chain_policies(granularity=granularity),
    )
    senders = senders_for(net, users, avoid_element_switches=False)
    flows = []
    for host in senders:
        for index in range(flows_per_user):
            flow = HttpFlow(net.sim, host, GATEWAY_IP, rate_bps=rate_bps,
                            packet_size=1500)
            flow.start(delay_s=index * 0.05)
            flows.append(flow)
    net.run(1.0)
    before = [e.processed_bytes for e in net.elements]
    gw_before = net.gateway.rx_bytes
    net.run(MEASURE_S)
    after = [e.processed_bytes for e in net.elements]
    gw_after = net.gateway.rx_bytes
    for flow in flows:
        flow.stop()
    shares = [float(a - b) for b, a in zip(before, after)]
    return {
        "deviation": load_deviation(shares),
        "goodput": mbps((gw_after - gw_before) * 8, MEASURE_S),
        "busy_elements": sum(1 for share in shares if share > 0),
        "decisions": net.controller.balancer.assignments,
    }


def test_e12_granularity_ablation(benchmark):
    def experiment():
        heavy = {"users": 2, "flows_per_user": 8, "rate_bps": 100e6}
        many = {"users": 24, "flows_per_user": 1, "rate_bps": 4e6}
        return {
            ("few-heavy", "flow"): _run(Granularity.FLOW, **heavy),
            ("few-heavy", "user"): _run(Granularity.USER, **heavy),
            ("many-light", "flow"): _run(Granularity.FLOW, **many),
            ("many-light", "user"): _run(Granularity.USER, **many),
        }

    results = run_once(benchmark, experiment)
    print(file=sys.stderr)
    print(
        format_table(
            ["regime", "granularity", "busy elems", "deviation",
             "goodput (Mbps)"],
            [
                [regime, grain, r["busy_elements"],
                 f"{r['deviation'] * 100:.0f}%", round(r["goodput"], 1)]
                for (regime, grain), r in results.items()
            ],
            title="E12: flow-grain vs user-grain load balancing",
        ),
        file=sys.stderr,
    )
    few_flow = results[("few-heavy", "flow")]
    few_user = results[("few-heavy", "user")]
    many_flow = results[("many-light", "flow")]
    many_user = results[("many-light", "user")]
    # Few users, heavy traffic: flow grain uses the whole fleet and
    # delivers more; user grain pins 2 users to 2 elements.
    assert few_flow["busy_elements"] == 4
    assert few_user["busy_elements"] <= 2
    assert few_flow["goodput"] > 1.5 * few_user["goodput"]
    # Many users: user grain balances fine too.
    assert many_user["deviation"] <= 0.25
    assert many_user["busy_elements"] == 4
    assert abs(many_user["goodput"] - many_flow["goodput"]) < 0.15 * (
        many_flow["goodput"]
    )
