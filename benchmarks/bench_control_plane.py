"""E13 (ablation: control-plane cost of reactive flow setup).

The paper's design is deliberately reactive -- every first packet takes
a controller round trip (Section III.C.3), which is also where the
+10% steady-state latency of E5 comes from.  This ablation quantifies
the control plane itself:

* first-packet penalty: RTT of a flow's first exchange (punt +
  FlowMod) vs an established flow's,
* setup throughput: a burst of brand-new flows and the rate at which
  sessions come up,
* state cost: flow entries installed per session, plain vs steered.
"""

import sys

from repro.analysis import format_table
from repro.core.events import EventKind
from repro.workloads import CbrUdpFlow

from common import (
    GATEWAY_IP,
    build_throughput_net,
    collect_metrics,
    ids_chain_policies,
    run_once,
)


def _first_packet_penalty():
    net = build_throughput_net(0, num_as=4)
    host = net.host("h1_1")
    rtts = []
    for index in range(21):
        net.sim.schedule(index * 0.5, host.ping, GATEWAY_IP)
    net.run(12.0)
    rtts = host.ping_rtts
    first, rest = rtts[0], rtts[1:]
    steady = sum(rest) / len(rest)
    return first * 1e3, steady * 1e3


def _setup_burst(flows_count: int = 200):
    net = build_throughput_net(2, num_as=6)
    hosts = [h for h in net.topology.hosts if h is not net.topology.gateway]
    start = net.sim.now
    flows = []
    for index in range(flows_count):
        host = hosts[index % len(hosts)]
        flow = CbrUdpFlow(net.sim, host, GATEWAY_IP, rate_bps=1e6,
                          sport=30000 + index, max_packets=20)
        flow.start()
        flows.append(flow)
    net.run(5.0)
    starts = net.controller.log.query(kind=EventKind.FLOW_START,
                                      since=start)
    setup_rules = collect_metrics(net).get("controller.flow_setup_rules")
    if not starts:
        return 0.0, 0, setup_rules
    window = max(e.time for e in starts) - start
    rate = len(starts) / window if window > 0 else float("inf")
    return rate, len(starts), setup_rules


def _entries_per_session():
    plain_net = build_throughput_net(0, num_as=4)
    flow = CbrUdpFlow(plain_net.sim, plain_net.host("h1_1"), GATEWAY_IP,
                      rate_bps=1e6, duration_s=0.5)
    flow.start()
    plain_net.run(1.0)
    plain = next(iter(plain_net.controller.sessions)).rules

    steered_net = build_throughput_net(1, num_as=4,
                                       policies=ids_chain_policies())
    flow = CbrUdpFlow(steered_net.sim, steered_net.host("h3_1"), GATEWAY_IP,
                      rate_bps=1e6, duration_s=0.5)
    flow.start()
    steered_net.run(1.0)
    steered = next(iter(steered_net.controller.sessions)).rules
    return len(plain), len(steered)


def test_e13_control_plane_cost(benchmark):
    def experiment():
        first_ms, steady_ms = _first_packet_penalty()
        rate, installed, setup_rules = _setup_burst()
        plain_rules, steered_rules = _entries_per_session()
        return {
            "first_ms": first_ms,
            "steady_ms": steady_ms,
            "rate": rate,
            "installed": installed,
            "setup_rules": setup_rules,
            "plain_rules": plain_rules,
            "steered_rules": steered_rules,
        }

    result = run_once(benchmark, experiment)
    print(file=sys.stderr)
    print(
        format_table(
            ["quantity", "measured"],
            [
                ["first-packet RTT (ms)", round(result["first_ms"], 3)],
                ["established RTT (ms)", round(result["steady_ms"], 3)],
                ["setup penalty",
                 f"{result['first_ms'] / result['steady_ms']:.1f}x"],
                ["burst: sessions installed", result["installed"]],
                ["burst: setup rate (sessions/s)", round(result["rate"], 0)],
                ["burst: rules/setup p50/p99",
                 f"{result['setup_rules'].quantile(50.0):.0f}"
                 f"/{result['setup_rules'].quantile(99.0):.0f}"],
                ["entries per plain session", result["plain_rules"]],
                ["entries per steered session", result["steered_rules"]],
            ],
            title="E13: reactive control-plane cost",
        ),
        file=sys.stderr,
    )
    # Shape: the first packet pays a visible but bounded penalty; the
    # controller absorbs a 200-flow burst; steering adds exactly 4
    # entries (the Section IV.A chain) over the plain 2+2.
    assert result["first_ms"] > 1.2 * result["steady_ms"]
    assert result["first_ms"] < 20 * result["steady_ms"]
    assert result["installed"] == 200
    assert result["rate"] > 100
    # The registry saw every install the event log saw.
    assert result["setup_rules"].count == 200
    assert result["plain_rules"] == 4      # 2 forward + 2 reverse
    assert result["steered_rules"] == 8    # 4 + 4 with one waypoint
