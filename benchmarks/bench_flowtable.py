"""E15 (microbench: indexed vs linear flow-table lookup).

The datapath's hot path is one ``FlowTable.lookup`` per received
frame.  The table keeps the pre-index reference scan around as
``_lookup_linear`` (it is the semantic oracle for the equivalence
property test), which makes the ablation exact: identical tables,
identical probe frames, only the lookup strategy differs.

Runs standalone (``python benchmarks/bench_flowtable.py`` with
``PYTHONPATH=src``) for ``make bench-smoke``, writing
``BENCH_flowtable.json`` next to the repo root, or under
pytest-benchmark like every other bench file.
"""

import json
import sys
import time
from pathlib import Path

from repro.analysis import format_table
from repro.net import packet as pkt
from repro.openflow.actions import Output
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import Match

from common import run_once

TABLE_SIZES = (100, 1000)
WILDCARD_RULES = 8
MAX_PROBES = 200
SPEEDUP_FLOOR_AT_1000 = 5.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_flowtable.json"


def _ip(index):
    return f"10.{(index >> 16) & 255}.{(index >> 8) & 255}.{index & 255}"


def build_table(num_exact):
    """A table shaped like a busy AS switch: one exact entry per live
    session plus a handful of high-priority wildcard blocks."""
    table = FlowTable()
    probes = []
    for i in range(num_exact):
        in_port = 2 + i % 3
        frame = pkt.make_tcp(
            f"src{i}", f"dst{i}", _ip(i), _ip(i + 1), 1024 + i % 512, 80
        )
        table.add(
            FlowEntry(match=Match.from_frame(frame, in_port=in_port),
                      actions=(Output(1),)),
            now=0.0,
        )
        probes.append((frame, in_port))
    for j in range(WILDCARD_RULES):
        table.add(
            FlowEntry(match=Match(in_port=5, dl_src=f"blocked{j}"),
                      priority=210, actions=()),
            now=0.0,
        )
    step = max(1, len(probes) // MAX_PROBES)
    return table, probes[::step][:MAX_PROBES]


def time_lookups(lookup, probes, min_seconds=0.2):
    """Lookups per second, batching whole probe passes until the run
    is long enough to time reliably."""
    done = 0
    elapsed = 0.0
    start = time.perf_counter()
    while elapsed < min_seconds:
        for frame, in_port in probes:
            lookup(frame, in_port, 1.0)
        done += len(probes)
        elapsed = time.perf_counter() - start
    return done / elapsed


def run_experiment():
    results = []
    for size in TABLE_SIZES:
        table, probes = build_table(size)
        for frame, in_port in probes:  # warm and sanity-check both paths
            assert table.lookup(frame, in_port, 1.0) is not None
            assert table._lookup_linear(frame, in_port, 1.0) is not None
        linear = time_lookups(table._lookup_linear, probes)
        indexed = time_lookups(table.lookup, probes)
        results.append({
            "entries": size,
            "linear_per_s": round(linear),
            "indexed_per_s": round(indexed),
            "speedup": round(indexed / linear, 2),
        })
    return results


def report(results, out=sys.stderr):
    print(file=out)
    print(
        format_table(
            ["table entries", "linear (1/s)", "indexed (1/s)", "speedup"],
            [
                [r["entries"], r["linear_per_s"], r["indexed_per_s"],
                 f'{r["speedup"]}x']
                for r in results
            ],
            title="E15: flow-table lookup, linear vs indexed",
        ),
        file=out,
    )


def check(results):
    # Indexed lookup must never lose, and the win must grow with table
    # size: the exact-match path is O(1) while the scan is O(entries).
    for r in results:
        assert r["speedup"] >= 1.0, r
    by_size = {r["entries"]: r for r in results}
    assert by_size[1000]["speedup"] >= SPEEDUP_FLOOR_AT_1000, by_size[1000]
    assert by_size[1000]["speedup"] > by_size[100]["speedup"]


def test_e15_indexed_lookup(benchmark):
    results = run_once(benchmark, run_experiment)
    report(results)
    check(results)


if __name__ == "__main__":
    bench_results = run_experiment()
    report(bench_results, out=sys.stdout)
    RESULT_PATH.write_text(json.dumps(bench_results, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")
    check(bench_results)
