"""E4 (Section V.B.2, load balance).

Paper: "The load balance based on the selecting minimum-load method is
effective in the practical test.  The load is judged according to the
number of received and processed packets.  For the normal traffic, the
real-time load deviation among multiple service elements is no more
than 5%."

Regenerated rows: steady-state per-element processed-packet rates and
their max relative deviation, for 4 and 8 elements under minimum-load
dispatch with "normal" (many medium flows) traffic.
"""

import sys

from repro.analysis import format_table
from repro.core.loadbalance import load_deviation
from repro.workloads import HttpFlow

from common import GATEWAY_IP, build_throughput_net, run_once, senders_for

WARMUP_S = 3.0
MEASURE_S = 10.0


def _deviation_for(num_elements: int) -> float:
    net = build_throughput_net(num_elements, "ids", num_as=6)
    senders = senders_for(net, 8, avoid_element_switches=False)
    flows = []
    # Normal traffic: a dense population of moderate HTTP flows with
    # staggered starts (the deployment's live campus mix).
    for round_index in range(5):
        for host_index, host in enumerate(senders):
            flow = HttpFlow(net.sim, host, GATEWAY_IP, rate_bps=5e6,
                            packet_size=1500)
            flow.start(delay_s=round_index * 0.4 + host_index * 0.05)
            flows.append(flow)
    net.run(WARMUP_S)
    packets_before = [e.processed_packets for e in net.elements]
    net.run(MEASURE_S)
    packets_after = [e.processed_packets for e in net.elements]
    for flow in flows:
        flow.stop()
    rates = [
        (after - before) / MEASURE_S
        for before, after in zip(packets_before, packets_after)
    ]
    return load_deviation(rates)


def test_e4_load_balance_deviation(benchmark):
    def experiment():
        return {4: _deviation_for(4), 8: _deviation_for(8)}

    result = run_once(benchmark, experiment)
    print(file=sys.stderr)
    print(
        format_table(
            ["elements", "paper deviation", "measured deviation"],
            [
                [n, "<= 5%", f"{result[n] * 100:.1f}%"]
                for n in sorted(result)
            ],
            title="E4: min-load dispatch, real-time load deviation",
        ),
        file=sys.stderr,
    )
    for deviation in result.values():
        assert deviation <= 0.05, f"deviation {deviation:.3f} exceeds paper's 5%"
