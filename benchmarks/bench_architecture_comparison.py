"""E11 (ablation: architecture comparison, Sections I-II).

The paper argues, qualitatively, that the traditional gateway
middlebox is a "single point of performance bottleneck", and that
PLayer's per-pswitch middleboxes cannot pool capacity across work
zones, while LiveSec's global load balancing gives "linearly-
increasing performance".

Regenerated rows: the same *skewed* workload (all active users happen
to sit in one work zone, a normal enterprise pattern) offered to the
three architectures with identical total middlebox capacity:

* traditional: one inline middlebox with the full capacity,
* PLayer: capacity split across 4 pswitch-local middleboxes; the hot
  zone can only use its own,
* LiveSec: capacity split across 4 elements, dispatched globally.
"""

import sys

from repro.analysis import format_table, mbps
from repro.baselines import build_pswitch_network, build_traditional_network
from repro.workloads import CbrUdpFlow

from common import GATEWAY_IP, build_throughput_net, run_once

TOTAL_CAPACITY_BPS = 800e6  # split into 4 x 200 Mbps where distributed
OFFERED_PER_USER_BPS = 150e6
USERS = 4  # all in one work zone
MEASURE_S = 1.2
WARMUP_S = 0.6


def _measure(gateway, flows, net_run) -> float:
    net_run(WARMUP_S)
    before = gateway.rx_bytes
    net_run(MEASURE_S)
    after = gateway.rx_bytes
    for flow in flows:
        flow.stop()
    return mbps((after - before) * 8, MEASURE_S)


def _traditional() -> float:
    net = build_traditional_network(
        num_access=4, hosts_per_access=1, host_bandwidth_bps=1e9,
        middlebox_capacity_bps=TOTAL_CAPACITY_BPS, with_ids_rules=False,
    )
    net.run(1.0)
    net.announce_all()
    net.run(0.5)
    flows = [
        CbrUdpFlow(net.sim, net.host(f"h{i + 1}"), net.gateway.ip,
                   rate_bps=OFFERED_PER_USER_BPS, packet_size=1500).start()
        for i in range(USERS)
    ]
    return _measure(net.gateway, flows, net.run)


def _pswitch_skewed() -> float:
    net = build_pswitch_network(
        num_pswitches=4, hosts_per_pswitch=4, host_bandwidth_bps=1e9,
        middlebox_capacity_bps=TOTAL_CAPACITY_BPS / 4,
    )
    net.run(1.0)
    net.announce_all()
    net.run(0.5)
    # Skew: the active users are h1..h4, all on pswitch 1.
    flows = [
        CbrUdpFlow(net.sim, net.host(f"h{i + 1}"), net.gateway.ip,
                   rate_bps=OFFERED_PER_USER_BPS, packet_size=1500).start()
        for i in range(USERS)
    ]
    return _measure(net.gateway, flows, net.run)


def _livesec_skewed() -> float:
    net = build_throughput_net(0, num_as=6)
    for index in range(4):
        net.add_element(
            "ids", net.topology.as_switches[index],
            capacity_bps=TOTAL_CAPACITY_BPS / 4, per_packet_cost_s=0.0,
        )
    # Re-announce the late-added elements, then let reports arrive.
    net.run(1.0)
    # Skew: all four active users on the same AS switch (h5_*, h6_*).
    sources = [net.host("h5_1"), net.host("h5_2"),
               net.host("h6_1"), net.host("h6_2")]
    flows = [
        CbrUdpFlow(net.sim, host, GATEWAY_IP,
                   rate_bps=OFFERED_PER_USER_BPS, packet_size=1500).start()
        for host in sources
    ]
    return _measure(net.gateway, flows, net.run)


def test_e11_architecture_comparison(benchmark):
    def experiment():
        return {
            "traditional": _traditional(),
            "pswitch": _pswitch_skewed(),
            "livesec": _livesec_skewed(),
        }

    result = run_once(benchmark, experiment)
    print(file=sys.stderr)
    print(
        format_table(
            ["architecture", "security capacity", "goodput (Mbps)"],
            [
                ["traditional (1 gateway middlebox)", "800 Mbps inline",
                 round(result["traditional"], 1)],
                ["PLayer/pswitch (4 x 200, zone-local)", "200 Mbps usable",
                 round(result["pswitch"], 1)],
                ["LiveSec (4 x 200, global LB)", "800 Mbps pooled",
                 round(result["livesec"], 1)],
            ],
            title="E11: skewed load (600 Mbps offered from one work zone)",
        ),
        file=sys.stderr,
    )
    # Shape: pswitch collapses to its single local middlebox (~200),
    # LiveSec pools the fleet and beats it by ~2.5-4x; the traditional
    # design needs one big box to match, the "single point" the paper
    # criticizes.
    assert result["pswitch"] < 280
    assert result["livesec"] > 2.0 * result["pswitch"]
    assert result["livesec"] > 0.65 * result["traditional"]
