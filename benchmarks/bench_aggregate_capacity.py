"""E3 (Section V.B.1, aggregate capacity at deployment scale).

Paper: "Normally, we have about 30 wireless users, 20 wired users, and
200 VM-based service elements ... The performance of the LiveSec unit
can achieve at least 8 Gbps for intrusion detection and 2 Gbps for
protocol identification.  In fact, the maximum capacity cannot be
practically tested because the real-life traffic is not heavy; the
traffic are primarily limited by the performance of the ingress OvS."

The authors state the aggregate (an 8 + 2 Gbps split of the fabric's
~10 x 1 Gbps ingress ceiling) rather than measuring it end to end; we
regenerate it the same way, but with the per-element rates *measured*:

1. measure a single IDS and a single L7 element's sustained
   processing rate under direct offered load,
2. multiply by the deployment's fleet (160 IDS + 40 L7 of the 200
   VMs, i.e. the 8:2 traffic split) and cap by the fabric ceiling,
3. validate linear aggregation end-to-end at a measurable slice
   (1 -> 4 elements, from E2's harness).
"""

import sys

from repro.elements import IntrusionDetectionElement, ProtocolIdentificationElement
from repro.net import packet as pkt
from repro.net.host import Host
from repro.net.node import connect
from repro.net.simulator import Simulator
from repro.analysis import format_table, mbps
from repro.workloads import HttpFlow

from common import GATEWAY_IP, build_throughput_net, run_once, senders_for

FABRIC_CEILING_GBPS = 10.0  # 10 OvS x 1 Gbps ingress
IDS_FLEET = 160
L7_FLEET = 40
MEASURE_S = 2.0


def _element_rate_mbps(factory) -> float:
    """Sustained processing rate of one element under saturation."""
    sim = Simulator()
    element = factory(sim, "elem", "00:00:00:00:00:02", "10.0.0.2")
    element.shutdown()  # no daemon needed: we read counters directly
    source = Host(sim, "src", "00:00:00:00:00:01", "10.0.0.1")
    connect(sim, source, element, bandwidth_bps=10e9, delay_s=1e-6)
    # Saturating offered load, 1500B frames addressed to the element.
    interval = 1500 * 8 / 2e9

    def emit():
        frame = pkt.make_udp(source.mac, element.mac, source.ip, element.ip,
                             1000, 9000, payload=b"GET /index HTTP/1.1",
                             size=1500)
        source.send(frame, 1)

    sim.every(interval, emit)
    sim.run(until=0.5)
    before = element.processed_bytes
    sim.run(until=0.5 + MEASURE_S)
    after = element.processed_bytes
    return mbps((after - before) * 8, MEASURE_S)


def _slice_aggregate_mbps(num_elements: int) -> float:
    net = build_throughput_net(num_elements, "ids", num_as=6)
    senders = senders_for(net, 2 * num_elements)
    flows = [
        HttpFlow(net.sim, host, GATEWAY_IP, rate_bps=250e6,
                 packet_size=1500).start()
        for host in senders
    ]
    net.run(0.5)
    before = net.gateway.rx_bytes
    net.run(1.5)
    after = net.gateway.rx_bytes
    for flow in flows:
        flow.stop()
    return mbps((after - before) * 8, 1.5)


def test_e3_aggregate_capacity(benchmark):
    def experiment():
        return {
            "ids_rate": _element_rate_mbps(IntrusionDetectionElement),
            "l7_rate": _element_rate_mbps(ProtocolIdentificationElement),
            "slice1": _slice_aggregate_mbps(1),
            "slice4": _slice_aggregate_mbps(4),
        }

    result = run_once(benchmark, experiment)
    ids_fleet_gbps = result["ids_rate"] * IDS_FLEET / 1e3
    l7_fleet_gbps = result["l7_rate"] * L7_FLEET / 1e3
    ids_capacity = min(ids_fleet_gbps, FABRIC_CEILING_GBPS * 0.8)
    l7_capacity = min(l7_fleet_gbps, FABRIC_CEILING_GBPS * 0.2)
    print(file=sys.stderr)
    print(
        format_table(
            ["quantity", "paper", "measured/derived"],
            [
                ["single IDS element (Mbps)", "~421-500",
                 round(result["ids_rate"], 0)],
                ["single L7 element (Mbps)", "(lower than IDS)",
                 round(result["l7_rate"], 0)],
                ["160-IDS fleet, VM-side (Gbps)", "-",
                 round(ids_fleet_gbps, 1)],
                ["40-L7 fleet, VM-side (Gbps)", "-",
                 round(l7_fleet_gbps, 1)],
                ["IDS capacity, fabric-capped (Gbps)", ">= 8",
                 round(ids_capacity, 1)],
                ["L7 capacity, fabric-capped (Gbps)", ">= 2",
                 round(l7_capacity, 1)],
                ["slice: 1 element e2e (Mbps)", "-",
                 round(result["slice1"], 0)],
                ["slice: 4 elements e2e (Mbps)", "(4x linear)",
                 round(result["slice4"], 0)],
            ],
            title="E3: aggregate capacity, 200-element deployment",
        ),
        file=sys.stderr,
    )
    assert ids_capacity >= 8.0
    assert l7_capacity >= 2.0
    # The linearity the estimate rests on is measured on the slice.
    assert 3.4 <= result["slice4"] / result["slice1"] <= 4.2
