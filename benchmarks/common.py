"""Shared helpers for the benchmark harness.

Every bench file regenerates one experiment from DESIGN.md's index
(E1..E12), prints the same rows the paper reports, and asserts the
*shape* of the result (who wins, by roughly what factor) rather than
absolute numbers -- the substrate is a simulator, not the authors'
testbed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro import Policy, PolicyTable, build_livesec_network
from repro.core.deployment import LiveSecNetwork
from repro.core.policy import FlowSelector, Granularity, PolicyAction

GATEWAY_IP = "10.255.255.254"


def ids_chain_policies(
    granularity: Granularity = Granularity.FLOW,
    chain: Tuple[str, ...] = ("ids",),
) -> PolicyTable:
    """The canonical 'Internet traffic traverses security' policy."""
    table = PolicyTable()
    table.add(
        Policy(
            name="inspect-internet",
            selector=FlowSelector(dst_ip=GATEWAY_IP),
            action=PolicyAction.CHAIN,
            service_chain=chain,
            granularity=granularity,
        )
    )
    return table


def build_throughput_net(
    num_elements: int,
    element_type: str = "ids",
    num_as: int = 6,
    policies: Optional[PolicyTable] = None,
    dispatcher: str = "minload",
    bypass: bool = False,
    hosts_per_as: int = 2,
) -> LiveSecNetwork:
    """A linear deployment tuned for throughput runs: gigabit hosts,
    elements spread over the first switches, senders on the rest."""
    net = build_livesec_network(
        topology="linear",
        policies=policies if policies is not None else ids_chain_policies(),
        dispatcher=dispatcher,
        num_as=num_as,
        hosts_per_as=hosts_per_as,
        access_bandwidth_bps=1e9,
        # The quantity under test is element capacity: a 10G fabric and
        # gateway keep the substrate out of the way (the deployment's
        # per-OvS Gigabit ceiling is modelled separately in E3).
        core_bandwidth_bps=10e9,
        gateway_bandwidth_bps=10e9,
    )
    for index in range(num_elements):
        switch = net.topology.as_switches[index % max(1, num_as - 2)]
        net.add_element(element_type, switch, bypass=bypass)
    net.start()
    return net


def senders_for(net: LiveSecNetwork, count: int,
                avoid_element_switches: bool = True) -> List:
    """Pick sender hosts, preferring switches without elements."""
    element_dpids = set()
    if avoid_element_switches:
        for element in net.elements:
            record = net.controller.nib.host_by_mac(element.mac)
            if record is not None:
                element_dpids.add(record.dpid)
    preferred, fallback = [], []
    for host in net.topology.hosts:
        if host is net.topology.gateway:
            continue
        attachment = net.topology.attachments[host.name]
        dpid = getattr(attachment.switch, "dpid", None)
        (fallback if dpid in element_dpids else preferred).append(host)
    chosen = (preferred + fallback)[:count]
    if len(chosen) < count:
        raise ValueError(f"only {len(chosen)} hosts available, need {count}")
    return chosen


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def collect_metrics(net):
    """The observability snapshot of any built network, LiveSec or
    baseline, so every bench can report through identical machinery.

    A :class:`LiveSecNetwork` already carries a registry; the
    traditional and pswitch baselines get one attached on first use.
    """
    from repro.obs import MetricsRegistry

    if isinstance(net, LiveSecNetwork):
        return net.metrics_snapshot()
    if getattr(net, "metrics", None) is None:
        net.attach_metrics(MetricsRegistry())
    return net.metrics.snapshot()
