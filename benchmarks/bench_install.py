"""E14 (ablation: batched vs per-rule flow installation).

Session setup installs several flow entries per datapath (forward +
reverse, more when steered through a chain).  The install pipeline
coalesces all FlowMods bound for one datapath in one scheduler tick
under a single BarrierRequest; the ablation runs the same campus-style
flow burst with batching on and off and counts the control-channel
messages each mode costs, plus the setup wall time the hot path
observes either way.
"""

import sys

from repro.analysis import format_table
from repro.workloads import CbrUdpFlow

from common import (
    GATEWAY_IP,
    build_throughput_net,
    collect_metrics,
    run_once,
    senders_for,
)

FLOWS = 120


def _run_burst(install_batching: bool):
    net = build_throughput_net(2, num_as=6)
    net.controller.install_pipeline.batching = install_batching
    hosts = senders_for(net, 8)
    for index in range(FLOWS):
        host = hosts[index % len(hosts)]
        CbrUdpFlow(net.sim, host, GATEWAY_IP, rate_bps=1e6,
                   sport=30000 + index, max_packets=20).start()
    net.run(5.0)
    pipeline = net.controller.install_pipeline
    snapshot = collect_metrics(net)
    return {
        "flowmods": int(pipeline.flowmods_sent.value),
        "barriers": int(pipeline.barriers_sent.value),
        "retries": int(pipeline.install_retries.value),
        "failures": int(pipeline.install_failures.value),
        "installed": net.controller.counters["flows_installed"],
        "setup_wall": snapshot.get("controller.flow_setup_wall_s"),
    }


def test_e14_batched_install_pipeline(benchmark):
    def experiment():
        return {
            "batched": _run_burst(install_batching=True),
            "per_rule": _run_burst(install_batching=False),
        }

    result = run_once(benchmark, experiment)
    batched, per_rule = result["batched"], result["per_rule"]

    def row(label, key, fmt=lambda v: v):
        return [label, fmt(batched[key]), fmt(per_rule[key])]

    print(file=sys.stderr)
    print(
        format_table(
            ["quantity", "batched", "per-rule"],
            [
                row("sessions installed", "installed"),
                row("FlowMods sent", "flowmods"),
                row("BarrierRequests sent", "barriers"),
                ["control messages (total)",
                 batched["flowmods"] + batched["barriers"],
                 per_rule["flowmods"] + per_rule["barriers"]],
                row("install retries", "retries"),
                row("install failures", "failures"),
                row("setup wall p95 (ms)", "setup_wall",
                    lambda h: round(h.quantile(95.0) * 1e3, 3)),
            ],
            title="E14: batched vs per-rule installation",
        ),
        file=sys.stderr,
    )
    # Both modes do the same data-plane work...
    assert batched["installed"] == per_rule["installed"] == FLOWS
    assert batched["flowmods"] == per_rule["flowmods"]
    assert batched["failures"] == per_rule["failures"] == 0
    # ...but per-rule pays one barrier per FlowMod, while batching
    # coalesces each datapath's tick into a single barrier.
    assert per_rule["barriers"] == per_rule["flowmods"]
    assert batched["barriers"] < per_rule["barriers"]
    total_batched = batched["flowmods"] + batched["barriers"]
    total_per_rule = per_rule["flowmods"] + per_rule["barriers"]
    assert total_batched < total_per_rule
    # Setup latency is a wash: batching trims messages, not the
    # reactive round trip itself.
    assert batched["setup_wall"].count == FLOWS
