"""E9 (Section V.A, deployment scale).

Paper: "We implement two switching and wiring closets with
OpenFlow-enabled switches ... All 10 OpenFlow-enabled switches are
both connected to the Gigabit backbone ... by two 24-port Gigabit
Ethernet switches ... twenty OF Wi-Fi APs ... 200 VM-based service
elements ... 30 wireless users, 20 wired users ... the bandwidth
provided for every user will be no less than 100 Mbps."

Regenerated rows: the full paper-scale deployment is built and
started; we report discovery convergence (full-mesh logical topology
over 30 datapaths), registry population (200 elements online), user
discovery (50 users + gateway), and a wired user's achievable
bandwidth at scale.
"""

import sys

from repro import build_livesec_network
from repro.analysis import format_table, mbps
from repro.workloads import CbrUdpFlow

from common import GATEWAY_IP, ids_chain_policies, run_once


def _run():
    net = build_livesec_network(
        topology="fit",
        policies=ids_chain_policies(),
        num_ovs=10,
        num_aps=20,
        wired_users=20,
        wireless_users=30,
        elements=[("ids", 160), ("l7", 40)],
    )
    net.start(warmup_s=3.0)
    nib = net.controller.nib.summary()
    registry = net.controller.registry.summary()

    # Per-user bandwidth check at scale: one wired user pushes UDP.
    src = net.host("wired1")
    flow = CbrUdpFlow(net.sim, src, GATEWAY_IP, rate_bps=150e6,
                      packet_size=1500)
    flow.start()
    net.run(0.5)
    before = flow.delivered_bytes(net.gateway)
    net.run(1.0)
    after = flow.delivered_bytes(net.gateway)
    flow.stop()
    user_mbps = mbps((after - before) * 8, 1.0)
    return nib, registry, user_mbps


def test_e9_deployment_scale(benchmark):
    nib, registry, user_mbps = run_once(benchmark, _run)
    print(file=sys.stderr)
    print(
        format_table(
            ["property", "paper", "measured"],
            [
                ["OpenFlow datapaths (OvS + APs)", "10 + 20",
                 nib["switches"]],
                ["logical full mesh discovered", "yes",
                 "yes" if nib["full_mesh"] else "NO"],
                ["service elements online", 200, registry["online"]],
                ["elements by type", "ids+l7",
                 str(registry["by_type"])],
                ["users + gateway discovered", 51,
                 nib["hosts"] - nib["elements"]],
                ["per-user bandwidth (Mbps)", ">= 100",
                 round(user_mbps, 1)],
            ],
            title="E9: FIT-building deployment at paper scale",
        ),
        file=sys.stderr,
    )
    assert nib["switches"] == 30
    assert nib["full_mesh"]
    assert registry["online"] == 200
    assert nib["hosts"] - nib["elements"] == 51
    assert user_mbps >= 95.0
