"""E6/E7 (Section V.B.4, Figures 7 and 8: visualization).

Figure 7 shows the WebUI in the normal environment: 3 OvS and 1 OF
Wi-Fi deployed, 2 IDS + 2 protocol-identification elements online,
5 wireless users of whom 4 browse the web and 1 uses SSH, light
traffic, and a full-mesh logical topology.

Figure 8 shows the event view: one user has left; one web user is now
downloading by BitTorrent (link utilization spikes); another user
accessed a malicious website and was detected and reported
immediately (and blocked).

The bench drives both scenarios, checks every stated property of both
figures against the monitoring state, and verifies that *history
replay* of the Figure 7 moment from the event log matches what the
live view showed at the time.
"""

import sys

from repro import Policy, PolicyTable, build_livesec_network
from repro.analysis import format_table
from repro.core.policy import FlowSelector, PolicyAction
from repro.workloads import AttackWebFlow
from repro.workloads.users import UserBehavior

from common import GATEWAY_IP, run_once


def _run_scenario():
    policies = PolicyTable()
    policies.begin().add(
        Policy(
            name="identify-apps",
            selector=FlowSelector(dst_ip=GATEWAY_IP),
            action=PolicyAction.CHAIN,
            service_chain=("l7", "ids"),
        )
    ).commit()
    net = build_livesec_network(
        topology="fit", policies=policies,
        num_ovs=3, num_aps=1, wired_users=0, wireless_users=5,
        host_timeout_s=8.0,
    )
    for element_type, switch_index in (("ids", 0), ("ids", 1), ("l7", 0), ("l7", 1)):
        net.add_element(element_type, net.topology.as_switches[switch_index])
    net.start()

    users = [
        UserBehavior(net.sim, net.host(f"wifi{i + 1}"), GATEWAY_IP,
                     profile="web" if i < 4 else "ssh", rate_bps=400e3)
        for i in range(5)
    ]
    for user in users:
        user.join()
    net.run(6.0)
    figure7_time = net.sim.now
    figure7 = net.monitoring.snapshot()

    users[3].leave()
    users[0].rate_bps = 2e6  # a real download: 20 Mbps of BitTorrent
    users[0].switch_profile("bittorrent")
    AttackWebFlow(net.sim, users[2].host, GATEWAY_IP, rate_bps=1e6,
                  duration_s=5.0).start()
    net.run(16.0)
    figure8 = net.monitoring.snapshot()
    replayed7 = net.monitoring.replay(until=figure7_time)
    return net, users, figure7, figure8, replayed7


def test_e6_e7_visualization_scenarios(benchmark):
    net, users, fig7, fig8, replay7 = run_once(benchmark, _run_scenario)
    wifi_macs = [u.host.mac for u in users]

    # ---- Figure 7 assertions (normal environment) --------------------
    assert sorted(fig7.switches) == [1, 2, 3, 101]
    assert fig7.full_mesh(), "logical topology must be full mesh"
    online = {u.mac for u in fig7.online_users()}
    assert set(wifi_macs) <= online
    apps7 = {u.mac: u.applications for u in fig7.users.values()}
    web_users = [m for m in wifi_macs if "http" in apps7.get(m, [])]
    ssh_users = [m for m in wifi_macs if "ssh" in apps7.get(m, [])]
    assert len(web_users) == 4, f"expected 4 web users, saw {len(web_users)}"
    assert len(ssh_users) == 1, f"expected 1 ssh user, saw {len(ssh_users)}"
    elements7 = [e for e in fig7.elements.values() if e.online]
    assert sorted(e.service_type for e in elements7) == [
        "ids", "ids", "l7", "l7",
    ]
    assert not fig7.active_attacks

    # ---- Figure 8 assertions (events) --------------------------------
    left_user = fig8.users[wifi_macs[3]]
    assert not left_user.online, "departed user must show as left"
    bt_user = fig8.users[wifi_macs[0]]
    assert "bittorrent" in bt_user.applications
    attacker = fig8.users[wifi_macs[2]]
    assert attacker.attacks >= 1 and attacker.blocked
    assert fig8.active_attacks
    # BitTorrent surge: some link is hotter than anything in Figure 7.
    peak7 = max(fig7.link_loads.values(), default=0.0)
    peak8 = max(fig8.link_loads.values(), default=0.0)
    assert peak8 > max(3 * peak7, 0.10), (
        f"expected a utilization spike (fig7 {peak7:.3f} -> fig8 {peak8:.3f})"
    )

    # ---- History replay reproduces the Figure 7 moment ----------------
    assert {m for m, u in replay7.users.items() if u.online} == \
        {m for m, u in fig7.users.items() if u.online}
    assert {m: u.applications for m, u in replay7.users.items()} == apps7
    assert sorted(replay7.switches) == sorted(fig7.switches)

    print(file=sys.stderr)
    print(
        format_table(
            ["property", "Figure 7", "Figure 8"],
            [
                ["users online", len(fig7.online_users()),
                 len(fig8.online_users())],
                ["web / ssh users", f"{len(web_users)} / {len(ssh_users)}", "-"],
                ["bittorrent user", "no", "yes"],
                ["peak link load", f"{peak7 * 100:.1f}%", f"{peak8 * 100:.1f}%"],
                ["attacks shown", 0, len(fig8.active_attacks)],
                ["user blocked", "no", "yes"],
                ["full mesh", fig7.full_mesh(), fig8.full_mesh()],
            ],
            title="E6/E7: WebUI scenarios (paper Figures 7 and 8)",
        ),
        file=sys.stderr,
    )
