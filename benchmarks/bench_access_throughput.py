"""E1 (Section V.B.1, access throughput).

Paper: "In the situation of UDP flows, single OvS can get up to
100 Mbps access performance for wired users, and single Pantou can
reach 43 Mbps for wireless users."

Regenerated rows: UDP goodput of a wired user through one OvS and of
a wireless user through one OF Wi-Fi AP.
"""

import sys

from repro import build_livesec_network
from repro.analysis import format_table, mbps
from repro.workloads import CbrUdpFlow

from common import GATEWAY_IP, run_once

MEASURE_S = 2.0


def _wired_goodput_mbps() -> float:
    net = build_livesec_network(
        topology="linear", num_as=2, hosts_per_as=1,
        access_bandwidth_bps=100e6,
    )
    net.start()
    src = net.host("h1_1")
    flow = CbrUdpFlow(net.sim, src, GATEWAY_IP, rate_bps=200e6,
                      packet_size=1500)
    flow.start()
    net.run(0.5)  # let the session install and the pipe fill
    before = flow.delivered_bytes(net.gateway)
    net.run(MEASURE_S)
    after = flow.delivered_bytes(net.gateway)
    flow.stop()
    return mbps((after - before) * 8, MEASURE_S)


def _wireless_goodput_mbps() -> float:
    net = build_livesec_network(
        topology="fit", num_ovs=2, num_aps=1,
        wired_users=0, wireless_users=1,
    )
    net.start()
    src = net.host("wifi1")
    flow = CbrUdpFlow(net.sim, src, GATEWAY_IP, rate_bps=100e6,
                      packet_size=1500)
    flow.start()
    net.run(0.5)
    before = flow.delivered_bytes(net.gateway)
    net.run(MEASURE_S)
    after = flow.delivered_bytes(net.gateway)
    flow.stop()
    return mbps((after - before) * 8, MEASURE_S)


def test_e1_access_throughput(benchmark):
    def experiment():
        return _wired_goodput_mbps(), _wireless_goodput_mbps()

    wired, wireless = run_once(benchmark, experiment)
    print(file=sys.stderr)
    print(
        format_table(
            ["access type", "paper (Mbps)", "measured (Mbps)"],
            [
                ["wired via single OvS", 100, round(wired, 1)],
                ["wireless via single Pantou AP", 43, round(wireless, 1)],
            ],
            title="E1: access throughput (UDP)",
        ),
        file=sys.stderr,
    )
    # Shape: wired saturates near 100 Mbps, wireless near the 43 Mbps
    # air rate; wired is ~2-3x wireless.
    assert 85 <= wired <= 101
    assert 34 <= wireless <= 44
    assert wired > 1.8 * wireless
