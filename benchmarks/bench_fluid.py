"""E19 (fluid fast-forward: wall-clock at deployment scale).

One thousand steady CBR flows over the linear deployment topology,
run once at pure packet fidelity and once with the fluid region
attached.  Once every flow is warm (first-packet punt done, rules
installed), the fluid kernel suspends the whole population and the
event queue collapses to the control-plane barriers -- the wall-clock
win is the point of the tentpole, and the gate is >= 10x.

``idle_timeout_s`` is raised above the traffic window: a one-way CBR
session's idle *reverse* rule would otherwise tear the session down
mid-run (normal deployment behavior, exercised by the property tests),
and E19 measures the steady phase, not session churn.

Runs standalone (``python benchmarks/bench_fluid.py`` with
``PYTHONPATH=src``) for ``make bench-smoke``, writing
``BENCH_fluid.json``, or under pytest-benchmark.
"""

import json
import random
import sys
import time
from pathlib import Path

from repro.analysis import format_table
from repro.core.deployment import build_livesec_network
from repro.workloads.flows import CbrUdpFlow

from common import run_once

NUM_AS = 8
HOSTS_PER_AS = 16
NUM_FLOWS = 1000
TRAFFIC_S = 16.0
FLOW_RATE_BPS = 100e3
PACKET_SIZE = 250
SPEEDUP_FLOOR = 10.0
#: Fault-boundary tolerance does not apply here (no faults): delivered
#: totals must agree to within the packets in flight at the final cut.
DELIVERED_TOLERANCE_FRAMES_PER_FLOW = 2
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fluid.json"


def run_mode(fluid: bool) -> dict:
    net = build_livesec_network(
        topology="linear",
        num_as=NUM_AS,
        hosts_per_as=HOSTS_PER_AS,
        idle_timeout_s=60.0,
        fluid=fluid,
    )
    net.start()
    rng = random.Random(19)
    hosts = [h for h in net.topology.hosts if h is not net.topology.gateway]
    flows = []
    dsts = []
    for index in range(NUM_FLOWS):
        src, dst = rng.sample(hosts, 2)
        flow = CbrUdpFlow(
            net.sim, src, dst.ip,
            rate_bps=FLOW_RATE_BPS,
            packet_size=PACKET_SIZE,
            duration_s=TRAFFIC_S - 1.0,
            sport=30000 + index,
            dport=9000 + (index % 500),
        )
        # A tight start window: all-or-nothing suspension means every
        # flow stays at packet fidelity until the *last* one is warm,
        # and E19 measures the steady phase, not the ramp.
        flow.start(delay_s=rng.uniform(0.0, 0.1))
        flows.append(flow)
        dsts.append(dst)
    start = time.perf_counter()
    net.run(TRAFFIC_S)
    wall = time.perf_counter() - start
    delivered = [f.delivered_bytes(d) for f, d in zip(flows, dsts)]
    sent = [f.bytes_sent for f in flows]
    return {
        "mode": "fluid" if fluid else "packet",
        "wall_s": round(wall, 3),
        "events": net.sim.events_processed,
        "sent_bytes": sent,
        "delivered_bytes": delivered,
        "fluid_stats": net.fluid.stats() if net.fluid is not None else None,
    }


def run_experiment():
    packet = run_mode(fluid=False)
    fluid = run_mode(fluid=True)
    per_flow_delta = [
        abs(p - f)
        for p, f in zip(packet["delivered_bytes"], fluid["delivered_bytes"])
    ]
    return {
        "num_flows": NUM_FLOWS,
        "traffic_s": TRAFFIC_S,
        "packet_wall_s": packet["wall_s"],
        "fluid_wall_s": fluid["wall_s"],
        "speedup": round(packet["wall_s"] / fluid["wall_s"], 2),
        "packet_events": packet["events"],
        "fluid_events": fluid["events"],
        "sent_equal": packet["sent_bytes"] == fluid["sent_bytes"],
        "max_delivered_delta_bytes": max(per_flow_delta),
        "fluid_stats": fluid["fluid_stats"],
    }


def report(results, out=sys.stderr):
    print(file=out)
    stats = results["fluid_stats"]
    print(
        format_table(
            ["mode", "wall (s)", "events", "packets synthesized"],
            [
                ["packet", results["packet_wall_s"],
                 results["packet_events"], "-"],
                ["fluid", results["fluid_wall_s"], results["fluid_events"],
                 stats["packets_synthesized"]],
                ["speedup", f'{results["speedup"]}x',
                 round(results["packet_events"]
                       / max(1, results["fluid_events"]), 1), "-"],
            ],
            title=f"E19: fluid fast-forward, {results['num_flows']} flows",
        ),
        file=out,
    )


def check(results):
    assert results["sent_equal"], "emission schedules diverged"
    assert results["max_delivered_delta_bytes"] <= (
        DELIVERED_TOLERANCE_FRAMES_PER_FLOW * PACKET_SIZE
    ), results["max_delivered_delta_bytes"]
    assert results["speedup"] >= SPEEDUP_FLOOR, (
        f"fluid speedup {results['speedup']}x below {SPEEDUP_FLOOR}x gate"
    )
    stats = results["fluid_stats"]
    assert stats["packets_synthesized"] > 0
    assert stats["time_saved_s"] > 0.5 * TRAFFIC_S


def test_e19_fluid_fastforward(benchmark):
    results = run_once(benchmark, run_experiment)
    report(results)
    check(results)


if __name__ == "__main__":
    bench_results = run_experiment()
    report(bench_results, out=sys.stdout)
    RESULT_PATH.write_text(json.dumps(bench_results, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")
    check(bench_results)
