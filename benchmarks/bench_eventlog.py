"""E16 (microbench: segmented event store & checkpointed replay).

The monitoring pillar's scaling claim: at paper scale the event log
sees per-tick ELEMENT_LOAD/LINK_LOAD churn, so the WebUI's replay and
query paths cannot afford O(whole-history) work per frame.  Both new
paths keep their pre-change implementations as oracles --
``EventLog._query_linear`` and ``MonitoringComponent._replay_linear``
-- which makes the ablation exact: identical event streams, identical
probes, only the strategy differs.

Runs standalone (``python benchmarks/bench_eventlog.py`` with
``PYTHONPATH=src``) for ``make bench-smoke``, writing
``BENCH_eventlog.json`` next to the repo root, or under
pytest-benchmark like every other bench file.
"""

import json
import random
import sys
import time
from pathlib import Path

from repro.analysis import format_table
from repro.core.events import EventKind, EventLog
from repro.core.visualization import MonitoringComponent

from common import run_once

STREAM_SIZES = (10_000, 100_000)
SEGMENT_SIZE = 512
CHECKPOINT_INTERVAL = 512
RETENTION_SEGMENTS = 4
REPLAY_PROBES = 12
SPEEDUP_FLOOR_AT_100K = 5.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_eventlog.json"


def build_stream(num_events, seed=7):
    """A monitoring-shaped stream: ~90% load samples over a small key
    space, sparse lifecycle events, attacks only in the opening 2%."""
    rng = random.Random(seed)
    now = 0.0
    stream = []
    for index in range(num_events):
        now += 0.001
        roll = rng.random()
        if index < num_events // 50 and roll < 0.02:
            stream.append((now, EventKind.ATTACK_DETECTED,
                           {"user_mac": f"m{rng.randint(0, 9)}",
                            "attack": "synflood"}))
        elif roll < 0.45:
            stream.append((now, EventKind.LINK_LOAD,
                           {"dpid": rng.randint(1, 8),
                            "port": rng.randint(1, 3),
                            "utilization": round(rng.random(), 3)}))
        elif roll < 0.9:
            stream.append((now, EventKind.ELEMENT_LOAD,
                           {"mac": f"e{rng.randint(0, 15)}",
                            "cpu": round(rng.random(), 3),
                            "pps": float(rng.randint(0, 1000))}))
        elif roll < 0.97:
            stream.append((now, EventKind.HOST_JOIN
                           if rng.random() < 0.5 else EventKind.HOST_LEAVE,
                           {"mac": f"m{rng.randint(0, 9)}",
                            "ip": None, "dpid": rng.randint(1, 8)}))
        else:
            stream.append((now, EventKind.PROTOCOL_IDENTIFIED,
                           {"user_mac": f"m{rng.randint(0, 9)}",
                            "application": "http"}))
    return stream


def fill(log, stream):
    for when, kind, data in stream:
        log.emit(when, kind, **data)
    return log


def time_ops(fn, probes, min_seconds=0.2):
    """Operations per second, batching whole probe passes until the
    run is long enough to time reliably."""
    done = 0
    elapsed = 0.0
    start = time.perf_counter()
    while elapsed < min_seconds:
        for probe in probes:
            fn(probe)
        done += len(probes)
        elapsed = time.perf_counter() - start
    return done / elapsed


def run_experiment():
    results = []
    for size in STREAM_SIZES:
        stream = build_stream(size)
        log = EventLog(segment_size=SEGMENT_SIZE)
        monitoring = MonitoringComponent(
            log, checkpoint_interval=CHECKPOINT_INTERVAL
        )
        fill(log, stream)
        assert not hasattr(monitoring, "database")  # stored exactly once
        horizon = stream[-1][0]

        # --- queries: a sparse kind + a narrow recent time window ----
        rng = random.Random(13)
        query_probes = [
            {"kind": EventKind.ATTACK_DETECTED},
            {"kind": EventKind.HOST_JOIN,
             "since": horizon * 0.9, "until": horizon},
            {"since": horizon * 0.98},
        ] * 2
        for probe in query_probes:  # semantic sanity before timing
            assert log.query(**probe) == log._query_linear(**probe)
        query_linear = time_ops(lambda p: log._query_linear(**p),
                                query_probes)
        query_segmented = time_ops(lambda p: log.query(**p), query_probes)

        # --- replay: random past moments ----------------------------
        replay_probes = [rng.uniform(0.0, horizon)
                         for __ in range(REPLAY_PROBES)]
        for probe in replay_probes[:3]:
            assert monitoring.replay(probe) == \
                monitoring._replay_linear(probe)
        replay_linear = time_ops(monitoring._replay_linear, replay_probes,
                                 min_seconds=0.5)
        replay_ckpt = time_ops(monitoring.replay, replay_probes,
                               min_seconds=0.5)

        # --- retention: the bounded-memory knob ---------------------
        compacted = fill(
            EventLog(segment_size=SEGMENT_SIZE,
                     retention=RETENTION_SEGMENTS),
            stream,
        )

        results.append({
            "events": size,
            "query_linear_per_s": round(query_linear, 1),
            "query_segmented_per_s": round(query_segmented, 1),
            "query_speedup": round(query_segmented / query_linear, 2),
            "replay_linear_per_s": round(replay_linear, 2),
            "replay_checkpointed_per_s": round(replay_ckpt, 2),
            "replay_speedup": round(replay_ckpt / replay_linear, 2),
            "retained_lossless": len(log),
            "retained_compacted": len(compacted),
        })
    return results


def report(results, out=sys.stderr):
    print(file=out)
    print(
        format_table(
            ["events", "query lin (1/s)", "query seg (1/s)", "speedup",
             "replay lin (1/s)", "replay ckpt (1/s)", "speedup",
             "retained w/ retention"],
            [
                [r["events"], r["query_linear_per_s"],
                 r["query_segmented_per_s"], f'{r["query_speedup"]}x',
                 r["replay_linear_per_s"], r["replay_checkpointed_per_s"],
                 f'{r["replay_speedup"]}x', r["retained_compacted"]]
                for r in results
            ],
            title="E16: event store, flat-scan vs segmented/checkpointed",
        ),
        file=out,
    )


def check(results):
    # Both new paths must never lose, and the win must be decisive at
    # scale: checkpointed replay folds O(delta), the linear oracle
    # folds the whole history.
    for r in results:
        assert r["query_speedup"] >= 1.0, r
        assert r["replay_speedup"] >= 1.0, r
        assert r["retained_compacted"] < r["retained_lossless"], r
        assert r["retained_lossless"] == r["events"], r
    by_size = {r["events"]: r for r in results}
    assert by_size[100_000]["replay_speedup"] >= SPEEDUP_FLOOR_AT_100K, \
        by_size[100_000]
    assert by_size[100_000]["query_speedup"] >= SPEEDUP_FLOOR_AT_100K, \
        by_size[100_000]


def test_e16_event_store(benchmark):
    results = run_once(benchmark, run_experiment)
    report(results)
    check(results)


if __name__ == "__main__":
    bench_results = run_experiment()
    report(bench_results, out=sys.stdout)
    RESULT_PATH.write_text(json.dumps(bench_results, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")
    check(bench_results)
