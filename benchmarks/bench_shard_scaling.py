"""E18 (shard fabric: control-plane scaling at the 100k-user point).

The sharding refactor's reason to exist: one LiveSec controller owns
the whole dpid space, so every punt, every liveness scan, and every
NIB digest runs on one core.  Partitioning the fabric into N shards
puts 1/N of the switches -- and, in a balanced campus, 1/N of the
users -- behind each controller process.

The deployment is a 16-switch linear fabric carrying 100k+ simulated
users (synthetic NIB residents, spread evenly over the edge), with a
burst of brand-new flows punting through the usual steering pipeline.
Because the simulator is single-threaded, the aggregate rate uses the
critical-path model of a sharded control plane: each shard is its own
process, so the fabric's session-setup throughput is the total number
of sessions divided by the *busiest* shard's control-plane time --
wall-clock PacketIn handling (the controller's own latency histograms)
plus its share of the periodic NIB-digest hellos, whose cost is what
the 100k residents actually load.

Runs standalone (``python benchmarks/bench_shard_scaling.py`` with
``PYTHONPATH=src``) for ``make bench-smoke``, writing
``BENCH_shard_scaling.json`` at the repo root, or under
pytest-benchmark like every other bench file.
"""

import json
import sys
import time
from pathlib import Path

from repro.core.deployment import build_sharded_network
from repro.analysis import format_table
from repro.workloads import CbrUdpFlow

from common import GATEWAY_IP, ids_chain_policies, run_once

SHARD_COUNTS = (1, 2, 4, 8)
NUM_SWITCHES = 16
USERS = 100_000
FLOWS = 1_200
FLOW_SPACING_S = 0.003
SPEEDUP_FLOOR_AT_8 = 3.0
RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_shard_scaling.json"
)

PACKET_KINDS = ("arp", "dhcp", "service", "data")


def _populate_users(net) -> None:
    """Adopt USERS synthetic residents into the owning shards' NIBs,
    round-robin over the edge -- the 100k-user scale point."""
    for index in range(USERS):
        dpid = (index % NUM_SWITCHES) + 1
        member = net.member_of(dpid)
        member.adopt_host(
            "02:fe:{:02x}:{:02x}:{:02x}:{:02x}".format(
                (index >> 24) & 0xFF, (index >> 16) & 0xFF,
                (index >> 8) & 0xFF, index & 0xFF,
            ),
            "172.{}.{}.{}".format(
                16 + (index >> 16), (index >> 8) & 0xFF, index & 0xFF
            ),
            dpid,
            2000 + index,
        )


def _shard_busy_seconds(net, member, hello_rounds: float) -> float:
    """One shard's control-plane seconds: measured PacketIn handling
    plus its hellos (digest of the shard's slice, once per sync
    round), each timed at the post-run state size."""
    snapshot = member.controller.metrics.snapshot()
    busy = 0.0
    for kind in PACKET_KINDS:
        metric = snapshot.get("controller.packet_in_latency_s", kind=kind)
        if metric is not None:
            busy += metric.sum
    started = time.perf_counter()
    member.hello(net.sim.now)
    hello_cost = time.perf_counter() - started
    return busy + hello_cost * hello_rounds


def run_config(num_shards: int) -> dict:
    net = build_sharded_network(
        num_shards=num_shards,
        topology="linear",
        policies=ids_chain_policies,
        elements=[("ids", NUM_SWITCHES)],
        num_as=NUM_SWITCHES,
        hosts_per_as=1,
    )
    net.start()
    _populate_users(net)
    hosts = [h for h in net.topology.hosts if h is not net.topology.gateway]
    before = net.total_sessions_created()
    flows = []
    for index in range(FLOWS):
        host = hosts[index % len(hosts)]
        flow = CbrUdpFlow(
            net.sim, host, GATEWAY_IP, rate_bps=1e6,
            sport=30000 + index, max_packets=4,
        )
        flow.start(delay_s=index * FLOW_SPACING_S)
        flows.append(flow)
    net.run(FLOWS * FLOW_SPACING_S + 3.0)

    sessions = net.total_sessions_created() - before
    counters = net.metrics.snapshot().counters()
    hello_rounds = counters.get("sharding.hellos", 0.0) / num_shards
    busiest = max(
        _shard_busy_seconds(net, member, hello_rounds)
        for member in net.members
    )
    hosts_known = sum(len(c.nib.hosts) for c in net.controllers)
    return {
        "shards": num_shards,
        "hosts": hosts_known,
        "sessions": sessions,
        "busiest_shard_s": round(busiest, 4),
        "sessions_per_s": round(sessions / busiest, 1),
        "remote_rule_ops": int(counters.get("sharding.remote_rule_ops", 0)),
    }


def run_experiment():
    results = [run_config(num_shards) for num_shards in SHARD_COUNTS]
    base = results[0]["sessions_per_s"]
    for row in results:
        row["speedup"] = round(row["sessions_per_s"] / base, 2)
    return results


def report(results, out=sys.stderr):
    print(file=out)
    print(
        format_table(
            ["shards", "users", "sessions", "busiest shard (s)",
             "agg sessions/s", "speedup", "remote rule ops"],
            [
                [r["shards"], r["hosts"], r["sessions"],
                 r["busiest_shard_s"], r["sessions_per_s"],
                 f'{r["speedup"]}x', r["remote_rule_ops"]]
                for r in results
            ],
            title="E18: session-setup throughput vs shard count"
                  " (critical-path model)",
        ),
        file=out,
    )


def check(results):
    by_shards = {r["shards"]: r for r in results}
    for r in results:
        # The scale point is real: >= 100k users resident in the NIBs,
        # and every run sets up the full flow burst.
        assert r["hosts"] >= USERS, r
        assert r["sessions"] >= FLOWS, r
    # Each doubling must help, and the fabric must clear the 3x floor
    # at 8 shards -- near-linear scaling, net of handoff/remote-rule
    # overhead and shard imbalance.
    previous = 0.0
    for num_shards in SHARD_COUNTS:
        rate = by_shards[num_shards]["sessions_per_s"]
        assert rate > previous, by_shards[num_shards]
        previous = rate
    assert by_shards[8]["sessions_per_s"] >= (
        SPEEDUP_FLOOR_AT_8 * by_shards[1]["sessions_per_s"]
    ), (by_shards[1], by_shards[8])


def test_e18_shard_scaling(benchmark):
    results = run_once(benchmark, run_experiment)
    report(results)
    check(results)


if __name__ == "__main__":
    bench_results = run_experiment()
    report(bench_results, out=sys.stdout)
    RESULT_PATH.write_text(json.dumps(bench_results, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")
    check(bench_results)
