"""E2 (Section V.B.1, element throughput scaling).

Paper: "Under the bypass mode, single VM-based service element can
reach about 500 Mbps throughput ... According to the test with HTTP
flows, performance of single VM-based service element is 421 Mbps, and
twice VM-based service elements raise the whole performance to
827 Mbps.  Our result verified that the performance can be linearly
increased with the number of VM-based service elements."

Regenerated rows: bypass throughput of one element; HTTP-mix goodput
through 1, 2 and 4 IDS elements under minimum-load dispatch.
"""

import sys

from repro.analysis import format_table, mbps
from repro.workloads import HttpFlow

from common import GATEWAY_IP, build_throughput_net, run_once, senders_for

WARMUP_S = 0.5
MEASURE_S = 1.5


def _http_goodput_mbps(num_elements: int, bypass: bool = False) -> float:
    offered_per_flow = 250e6
    flows_count = max(2, 2 * num_elements)
    net = build_throughput_net(num_elements, "ids", num_as=6, bypass=bypass)
    senders = senders_for(net, flows_count)
    flows = [
        HttpFlow(net.sim, host, GATEWAY_IP, rate_bps=offered_per_flow,
                 packet_size=1500).start()
        for host in senders
    ]
    net.run(WARMUP_S)
    before = net.gateway.rx_bytes
    net.run(MEASURE_S)
    after = net.gateway.rx_bytes
    for flow in flows:
        flow.stop()
    return mbps((after - before) * 8, MEASURE_S)


def test_e2_element_scaling(benchmark):
    def experiment():
        return {
            "bypass1": _http_goodput_mbps(1, bypass=True),
            "http1": _http_goodput_mbps(1),
            "http2": _http_goodput_mbps(2),
            "http4": _http_goodput_mbps(4),
        }

    result = run_once(benchmark, experiment)
    print(file=sys.stderr)
    print(
        format_table(
            ["configuration", "paper (Mbps)", "measured (Mbps)"],
            [
                ["1 element, bypass mode", "~500", round(result["bypass1"], 0)],
                ["1 element, HTTP + IDS", 421, round(result["http1"], 0)],
                ["2 elements, HTTP + IDS", 827, round(result["http2"], 0)],
                ["4 elements, HTTP + IDS", "(linear)", round(result["http4"], 0)],
            ],
            title="E2: VM-based element throughput scaling",
        ),
        file=sys.stderr,
    )
    # Shape: bypass ~500, inspected HTTP ~420, two elements ~2x one
    # (paper factor 827/421 = 1.96), four elements keep scaling.
    assert 450 <= result["bypass1"] <= 510
    assert 380 <= result["http1"] <= 440
    assert 1.8 <= result["http2"] / result["http1"] <= 2.1
    assert 3.4 <= result["http4"] / result["http1"] <= 4.2
