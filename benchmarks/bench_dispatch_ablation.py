"""E10 (ablation: dispatching algorithms, Section IV.B).

Paper: "LiveSec controller can utilize different dispatching
algorithms such as polling, hash, queuing or minimum-load method."
The deployment uses minimum-load and reports <= 5% deviation
(Section V.B.2); the others are listed as options.

Regenerated rows: the same traffic dispatched by all four algorithms,
compared on processed-byte deviation across elements and on delivered
goodput.  The expected shape: polling / queuing / min-load balance a
uniform flow population well; hash is stateless and can skew badly.
"""

import sys

from repro.analysis import format_table, mbps
from repro.core.loadbalance import load_deviation
from repro.workloads import HttpFlow

from common import GATEWAY_IP, build_throughput_net, run_once, senders_for

MEASURE_S = 8.0


def _run_dispatcher(name: str):
    net = build_throughput_net(4, "ids", num_as=6, dispatcher=name)
    senders = senders_for(net, 8, avoid_element_switches=False)
    flows = []
    # The same dense, staggered "normal traffic" population as E4, so
    # the dispatchers are compared under the paper's conditions.
    for repeat in range(5):
        for host_index, host in enumerate(senders):
            flow = HttpFlow(net.sim, host, GATEWAY_IP, rate_bps=5e6,
                            packet_size=1500)
            flow.start(delay_s=repeat * 0.3 + host_index * 0.05)
            flows.append(flow)
    net.run(2.0)
    processed_before = [e.processed_bytes for e in net.elements]
    gateway_before = net.gateway.rx_bytes
    net.run(MEASURE_S)
    processed_after = [e.processed_bytes for e in net.elements]
    gateway_after = net.gateway.rx_bytes
    for flow in flows:
        flow.stop()
    shares = [
        float(after - before)
        for before, after in zip(processed_before, processed_after)
    ]
    return {
        "deviation": load_deviation(shares),
        "goodput": mbps((gateway_after - gateway_before) * 8, MEASURE_S),
    }


def test_e10_dispatch_algorithm_ablation(benchmark):
    def experiment():
        return {
            name: _run_dispatcher(name)
            for name in ("polling", "hash", "queuing", "minload")
        }

    results = run_once(benchmark, experiment)
    print(file=sys.stderr)
    print(
        format_table(
            ["dispatcher", "load deviation", "goodput (Mbps)"],
            [
                [name, f"{r['deviation'] * 100:.1f}%", round(r["goodput"], 1)]
                for name, r in results.items()
            ],
            title="E10: dispatching-algorithm ablation (4 IDS elements)",
        ),
        file=sys.stderr,
    )
    # Shape: the deployment's min-load choice meets the paper's 5%
    # bound; queuing and polling are also balanced on uniform flows;
    # stateless hash is the outlier.
    assert results["minload"]["deviation"] <= 0.05
    assert results["queuing"]["deviation"] <= 0.10
    assert results["polling"]["deviation"] <= 0.10
    assert results["hash"]["deviation"] >= results["minload"]["deviation"]
    # All dispatchers deliver the offered load here (no overload).
    for name, r in results.items():
        assert r["goodput"] > 100, f"{name} lost traffic: {r['goodput']}"
