"""E5 (Section V.B.3, latency).

Paper: "We test the network delay by pinging from the user to an
Internet server.  Compared with legacy switching network without
access the Internet through OpenFlow-enable equipment ... LiveSec only
increase the average latency by around 10%."

Regenerated rows: average ping RTT over the pure legacy path vs the
LiveSec path (user -> AS switch -> legacy -> AS switch -> gateway),
with the first ping excluded from the LiveSec average exactly as a
steady-state mean would be (the first packet pays the one-time
controller round trip; the paper reports average latency of an
established path).
"""

import sys

from repro import build_livesec_network
from repro.baselines import build_traditional_network
from repro.analysis import format_table

from common import GATEWAY_IP, run_once

# One-way WAN delay between the building gateway and the pinged
# Internet server, applied identically to both architectures.
WAN_DELAY_S = 0.8e-3
PINGS = 30
PING_GAP_S = 0.2


def _legacy_rtt_ms() -> float:
    net = build_traditional_network(num_access=2, hosts_per_access=1,
                                    with_middlebox=False)
    net.run(1.0)
    net.announce_all()
    net.run(0.5)
    host = net.host("h1")
    for index in range(PINGS):
        net.sim.schedule(index * PING_GAP_S, host.ping, net.gateway.ip)
    net.run(PINGS * PING_GAP_S + 1.0)
    rtts = host.ping_rtts
    assert len(rtts) >= PINGS * 0.9
    return (sum(rtts) / len(rtts) + 2 * WAN_DELAY_S) * 1e3


def _livesec_rtt_ms() -> float:
    net = build_livesec_network(topology="linear", num_as=2, hosts_per_as=1)
    net.start()
    host = net.host("h1_1")
    for index in range(PINGS + 1):
        net.sim.schedule(index * PING_GAP_S, host.ping, GATEWAY_IP)
    net.run((PINGS + 1) * PING_GAP_S + 1.0)
    rtts = host.ping_rtts[1:]  # steady state: drop the setup ping
    assert len(rtts) >= PINGS * 0.9
    return (sum(rtts) / len(rtts) + 2 * WAN_DELAY_S) * 1e3


def test_e5_latency_overhead(benchmark):
    def experiment():
        return _legacy_rtt_ms(), _livesec_rtt_ms()

    legacy_ms, livesec_ms = run_once(benchmark, experiment)
    overhead = livesec_ms / legacy_ms - 1.0
    print(file=sys.stderr)
    print(
        format_table(
            ["path", "avg RTT (ms)"],
            [
                ["legacy switching (no OpenFlow)", round(legacy_ms, 3)],
                ["LiveSec Access-Switching layer", round(livesec_ms, 3)],
                ["overhead", f"{overhead * 100:.1f}%  (paper: ~10%)"],
            ],
            title="E5: ping latency, legacy vs LiveSec",
        ),
        file=sys.stderr,
    )
    # Shape: a modest single-digit-to-low-teens percentage increase.
    assert 0.0 < overhead < 0.25, f"overhead {overhead:.2%} out of shape"
