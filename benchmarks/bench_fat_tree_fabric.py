"""E14 (Section III.B objectives: the scalable Legacy-Switching fabric).

The paper requires the Legacy-Switching layer to provide "uniform
high-bandwidth networking: ... any end-to-end available capacity
should be uniform for the Access-Switching layer, no matter what the
network topology is and how heavy the network traffic is", naming
PortLand/VL2-class fabrics as the way to get it at scale.

Regenerated rows, on a k=4 fat tree of ECMP legacy switches carrying a
full LiveSec deployment:

* goodput of simultaneous same-pod vs cross-pod flows (uniformity),
* ping RTT same-pod vs cross-pod (one extra tier, microseconds apart),
* utilization spread across the parallel uplinks (ECMP effectiveness).
"""

import sys

from repro.analysis import format_table, mbps
from repro.core.controller import LiveSecController
from repro.core.deployment import LiveSecNetwork
from repro.core.visualization import MonitoringComponent
from repro.net.fattree import fat_tree_topology
from repro.net.simulator import Simulator
from repro.workloads import CbrUdpFlow

from common import run_once

ACCESS_BPS = 100e6
MEASURE_S = 1.5


def _deploy() -> LiveSecNetwork:
    sim = Simulator()
    topo = fat_tree_topology(sim, k=4, hosts_per_edge=2,
                             access_bandwidth_bps=ACCESS_BPS)
    controller = LiveSecController(sim)
    net = LiveSecNetwork(
        sim=sim, topology=topo, controller=controller,
        monitoring=MonitoringComponent(controller.log),
    )
    net._connect_channels(0.5e-3)
    net.start()
    return net


def _pairwise_goodputs(net: LiveSecNetwork, pairs) -> list:
    flows = []
    for src_name, dst_name in pairs:
        src = net.host(src_name)
        dst = net.host(dst_name)
        flows.append((
            CbrUdpFlow(net.sim, src, dst.ip, rate_bps=2 * ACCESS_BPS,
                       packet_size=1500).start(),
            dst,
        ))
    net.run(0.5)
    befores = [flow.delivered_bytes(dst) for flow, dst in flows]
    net.run(MEASURE_S)
    results = []
    for (flow, dst), before in zip(flows, befores):
        results.append(mbps((flow.delivered_bytes(dst) - before) * 8,
                            MEASURE_S))
        flow.stop()
    return results


def _run():
    # Same-pod pairs: edges 1&2 share pod 1; 3&4 share pod 2.
    net = _deploy()
    same_pod = _pairwise_goodputs(net, [
        ("h1_1", "h2_1"), ("h3_1", "h4_1"),
        ("h5_1", "h6_1"), ("h7_1", "h8_1"),
    ])
    # Cross-pod pairs, simultaneously loading the core.
    net2 = _deploy()
    cross_pod = _pairwise_goodputs(net2, [
        ("h1_1", "h3_1"), ("h2_1", "h5_1"),
        ("h4_1", "h7_1"), ("h6_1", "h8_1"),
    ])
    # Latency comparison.
    net3 = _deploy()
    near = net3.host("h1_2")
    far = net3.host("h8_2")
    probe = net3.host("h1_1")
    for index in range(11):
        net3.sim.schedule(index * 0.2, probe.ping, near.ip)
        net3.sim.schedule(index * 0.2 + 0.1, probe.ping, far.ip)
    net3.run(4.0)
    rtts = probe.ping_rtts[2:]  # drop the two setup pings
    near_ms = sum(rtts[0::2]) / len(rtts[0::2]) * 1e3
    far_ms = sum(rtts[1::2]) / len(rtts[1::2]) * 1e3
    return same_pod, cross_pod, near_ms, far_ms


def test_e14_fat_tree_uniform_bandwidth(benchmark):
    same_pod, cross_pod, near_ms, far_ms = run_once(benchmark, _run)
    print(file=sys.stderr)
    print(
        format_table(
            ["path class", "per-flow goodput (Mbps)", "avg RTT (ms)"],
            [
                ["same pod (4 concurrent flows)",
                 " ".join(f"{g:.0f}" for g in same_pod),
                 round(near_ms, 3)],
                ["cross pod (4 concurrent flows)",
                 " ".join(f"{g:.0f}" for g in cross_pod),
                 round(far_ms, 3)],
            ],
            title="E14: uniform capacity over the fat-tree fabric",
        ),
        file=sys.stderr,
    )
    # Uniformity: every flow -- same pod or across the core -- gets its
    # full access rate, and crossing the core costs only the extra
    # fabric hops' propagation (sub-millisecond in absolute terms).
    for goodput in same_pod + cross_pod:
        assert goodput >= ACCESS_BPS / 1e6 * 0.93
    assert far_ms - near_ms < 0.5
