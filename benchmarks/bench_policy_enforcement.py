"""E8 (Section IV.A, interactive policy enforcement).

Paper, on steering one connection through a service element: the
controller installs i) an ingress rewrite entry, ii) the element
switch's inbound entry, iii) the element switch's return entry, and
iv) the egress entry -- 4 flow entries, "calculated and enforced
simultaneously".  On an attack report it modifies the ingress entry to
drop, "to block this flow at the entrance", so "the inner switching
network will be completely protected from the outer terminal attacks".

Regenerated rows: flow entries installed for one steered connection;
packets reaching the gateway before vs after the block; packets
entering the legacy fabric from the attacker after the block.
"""

import sys

from repro.analysis import format_table
from repro.core.events import EventKind
from repro.workloads import AttackWebFlow

from common import GATEWAY_IP, build_throughput_net, run_once


def _run():
    net = build_throughput_net(1, "ids", num_as=4)
    attacker = net.host("h4_1")
    ingress_switch = net.topology.attachments[attacker.name].switch
    uplink_before = {
        port.number: port.tx_packets for port in ingress_switch.attached_ports()
    }

    flow = AttackWebFlow(net.sim, attacker, GATEWAY_IP, rate_bps=2e6,
                         attack_after=5)
    flow.start()
    net.run(1.0)

    session_rules = None
    for session_event in net.controller.log.query(kind=EventKind.FLOW_START):
        if session_event.data.get("user_mac") == attacker.mac:
            session_rules = session_event.data["rules"]
    blocked_events = net.controller.log.query(kind=EventKind.FLOW_BLOCKED)
    gateway_at_block = flow.delivered_bytes(net.gateway)

    # Keep attacking for a while after the block.
    net.run(2.0)
    flow.stop()
    gateway_after = flow.delivered_bytes(net.gateway)

    # Everything the attacker still sends must die at the ingress
    # switch: its uplink transmit counters stop moving for this flow.
    uplink = net.controller.nib.uplink_port(ingress_switch.dpid)
    return {
        "rules": session_rules,
        "blocked": len(blocked_events),
        "leak_bytes": gateway_after - gateway_at_block,
        "sent_after": flow.packets_sent,
        "ingress_drops": ingress_switch.packets_dropped,
    }


def test_e8_policy_enforcement(benchmark):
    result = run_once(benchmark, _run)
    print(file=sys.stderr)
    print(
        format_table(
            ["property", "paper", "measured"],
            [
                ["flow entries per steered connection (fwd+rev)",
                 "4 + 4", result["rules"]],
                ["attack blocked at ingress", "yes",
                 "yes" if result["blocked"] else "NO"],
                ["bytes leaked past gateway after block", 0,
                 result["leak_bytes"]],
                ["attacker frames dropped at ingress switch", ">0",
                 result["ingress_drops"]],
            ],
            title="E8: interactive policy enforcement",
        ),
        file=sys.stderr,
    )
    # The paper's 4 entries cover one direction; the session policy
    # (Section III.C.3) installs the reply direction too: 8 total.
    assert result["rules"] == 8
    assert result["blocked"] >= 1
    assert result["leak_bytes"] == 0, "malicious flow escaped after block"
    assert result["ingress_drops"] > 0, "drops must happen at the entrance"
